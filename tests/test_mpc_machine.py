"""Tests for the Machine abstraction (known-point discipline)."""

import numpy as np
import pytest

from repro.exceptions import UnknownPointError
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.machine import Machine


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(20, 2)))


@pytest.fixture
def machine(metric):
    return Machine(0, metric, np.arange(10), np.random.default_rng(0), strict=True)


class TestKnownPoints:
    def test_initially_knows_partition(self, machine):
        assert machine.knows(np.arange(10))
        assert not machine.knows([15])
        assert machine.known_count == 10

    def test_learn_extends(self, machine):
        machine.learn([15, 16])
        assert machine.knows([15, 16])
        assert machine.known_count == 12

    def test_known_words(self, machine, metric):
        assert machine.known_words() == 10 * metric.point_words()

    def test_require_known_raises(self, machine):
        with pytest.raises(UnknownPointError) as e:
            machine.require_known([3, 15])
        assert e.value.point_id == 15

    def test_negative_id_rejected(self, machine):
        with pytest.raises(UnknownPointError):
            machine.require_known([-1])

    def test_non_strict_allows_anything(self, metric):
        m = Machine(1, metric, np.arange(5), np.random.default_rng(0), strict=False)
        m.require_known([19])  # no raise
        m.pairwise([19], [18])  # no raise


class TestMetricHelpers:
    def test_pairwise_checks_both_sides(self, machine):
        with pytest.raises(UnknownPointError):
            machine.pairwise([0], [15])
        with pytest.raises(UnknownPointError):
            machine.pairwise([15], [0])

    def test_pairwise_values(self, machine, metric):
        assert np.allclose(
            machine.pairwise([0, 1], [2]), metric.pairwise([0, 1], [2])
        )

    def test_dist_to_set(self, machine, metric):
        assert np.allclose(
            machine.dist_to_set([0, 1], [5]), metric.dist_to_set([0, 1], [5])
        )

    def test_radius_and_diversity(self, machine, metric):
        ids = np.arange(10)
        assert machine.radius(ids, [0]) == pytest.approx(metric.radius(ids, [0]))
        assert machine.diversity(ids) == pytest.approx(metric.diversity(ids))

    def test_count_within_and_within(self, machine, metric):
        ids = np.arange(10)
        assert np.array_equal(
            machine.count_within(ids, ids, 1.0), metric.count_within(ids, ids, 1.0)
        )
        assert np.array_equal(
            machine.within(ids, ids, 1.0), metric.within(ids, ids, 1.0)
        )

    def test_empty_ids_ok(self, machine):
        machine.require_known([])
        assert machine.knows([])


class TestRngIsolation:
    def test_private_streams_differ(self, metric):
        a = Machine(0, metric, np.arange(5), np.random.default_rng(1))
        b = Machine(1, metric, np.arange(5), np.random.default_rng(2))
        assert a.rng.random() != b.rng.random()

    def test_store_is_private(self, machine):
        machine.store["x"] = 1
        assert machine.store == {"x": 1}
