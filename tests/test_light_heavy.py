"""Tests for the light/heavy machinery (sample degrees, Lemma 6 greedy)."""

import numpy as np
import pytest

from repro.core.light_heavy import greedy_bounded_independent_set, sample_degrees
from repro.metric.euclidean import EuclideanMetric


@pytest.fixture
def line_metric():
    return EuclideanMetric(np.arange(12, dtype=float).reshape(-1, 1))


class TestSampleDegrees:
    def test_counts_sample_neighbors(self, line_metric):
        # sample {0, 1, 2}; vertex 1 has sample-neighbors 0 and 2 at tau=1
        out = sample_degrees(line_metric, [1], [0, 1, 2], 1.0)
        assert out[0] == 2

    def test_self_excluded(self, line_metric):
        out = sample_degrees(line_metric, [5], [5], 1.0)
        assert out[0] == 0

    def test_query_not_in_sample(self, line_metric):
        out = sample_degrees(line_metric, [5], [4, 6], 1.0)
        assert out[0] == 2

    def test_empty_sample(self, line_metric):
        out = sample_degrees(line_metric, [0, 1], [], 1.0)
        assert np.array_equal(out, [0, 0])

    def test_empty_query(self, line_metric):
        assert sample_degrees(line_metric, [], [0], 1.0).size == 0

    def test_vectorized_consistency(self, line_metric):
        sample = np.array([0, 3, 6, 9])
        batch = sample_degrees(line_metric, np.arange(12), sample, 2.0)
        single = [
            sample_degrees(line_metric, [v], sample, 2.0)[0] for v in range(12)
        ]
        assert np.array_equal(batch, single)


class TestGreedyBoundedIS:
    def test_independent_output(self, line_metric):
        out = greedy_bounded_independent_set(line_metric, np.arange(12), 1.0, 10)
        D = line_metric.pairwise(out, out)
        np.fill_diagonal(D, np.inf)
        assert D.min() > 1.0

    def test_respects_k_bound(self, line_metric):
        out = greedy_bounded_independent_set(line_metric, np.arange(12), 0.5, 3)
        assert out.size == 3

    def test_stops_when_exhausted(self, line_metric):
        # tau=12 makes the graph complete: only one vertex fits
        out = greedy_bounded_independent_set(line_metric, np.arange(12), 12.0, 5)
        assert out.size == 1

    def test_path_graph_picks_alternating(self, line_metric):
        out = greedy_bounded_independent_set(line_metric, np.arange(12), 1.0, 100)
        assert np.array_equal(out, [0, 2, 4, 6, 8, 10])

    def test_empty_candidates(self, line_metric):
        assert greedy_bounded_independent_set(line_metric, [], 1.0, 3).size == 0

    def test_k_zero(self, line_metric):
        assert greedy_bounded_independent_set(line_metric, [0, 1], 1.0, 0).size == 0

    def test_lemma6_iteration_count(self, rng):
        """Lemma 6's engine: if every candidate has degree < Δ within the
        candidate set, greedy yields at least |P| / (Δ+1) points."""
        pts = rng.uniform(0, 100, size=(200, 2))
        m = EuclideanMetric(pts)
        tau = 2.0
        cand = np.arange(200)
        deg = m.count_within(cand, cand, tau) - 1
        max_deg = int(deg.max())
        out = greedy_bounded_independent_set(m, cand, tau, 10_000)
        assert out.size >= 200 // (max_deg + 1)
