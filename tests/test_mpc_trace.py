"""Tests for the message-trace debugger (now an observer)."""

import numpy as np
import pytest

from repro.core import mpc_k_bounded_mis
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch
from repro.mpc.trace import MessageTrace


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(100, 2)))


def _traced(metric, m, seed=0):
    cluster = MPCCluster(metric, m, seed=seed)
    trace = cluster.obs.add(MessageTrace())
    return cluster, trace


class TestTracing:
    def test_records_manual_messages(self, metric):
        cluster, trace = _traced(metric, 3)
        cluster.send(0, 1, 5.0, tag="hello")
        cluster.send(1, 2, np.zeros(4), tag="data")
        cluster.step()
        assert len(trace) == 2
        tags = {e.tag for e in trace.events}
        assert tags == {"hello", "data"}
        assert trace.total_words() == 5

    def test_words_match_cluster_stats(self, metric):
        cluster, trace = _traced(metric, 4)
        mpc_k_bounded_mis(cluster, 0.6, 8)
        assert trace.total_words() == cluster.stats.total_words

    def test_words_by_tag_covers_algorithm_phases(self, metric):
        cluster, trace = _traced(metric, 4)
        mpc_k_bounded_mis(cluster, 0.6, 8)
        by_tag = trace.words_by_tag()
        assert "degree/sample" in by_tag
        # descending order
        vals = list(by_tag.values())
        assert vals == sorted(vals, reverse=True)

    def test_words_by_round_sums_to_total(self, metric):
        cluster, trace = _traced(metric, 3)
        mpc_k_bounded_mis(cluster, 0.6, 5)
        assert sum(trace.words_by_round().values()) == trace.total_words()

    def test_messages_between(self, metric):
        cluster, trace = _traced(metric, 3)
        cluster.send(2, 0, 1.0, tag="a")
        cluster.send(0, 2, 2.0, tag="b")
        cluster.step()
        assert len(trace.messages_between(2, 0)) == 1
        assert trace.messages_between(2, 0)[0].tag == "a"

    def test_heaviest_events(self, metric):
        cluster, trace = _traced(metric, 3)
        cluster.send(0, 1, np.zeros(100), tag="big")
        cluster.send(0, 1, 1.0, tag="small")
        cluster.step()
        top = trace.heaviest_events(limit=1)
        assert top[0].tag == "big"

    def test_detach_restores(self, metric):
        cluster, trace = _traced(metric, 3)
        cluster.send(0, 1, 1.0)
        cluster.step()
        trace.detach()
        cluster.send(0, 1, 1.0)
        cluster.step()
        assert len(trace) == 1  # nothing recorded after detach

    def test_pointbatch_words_accounted(self, metric):
        cluster, trace = _traced(metric, 3)
        ids = cluster.machines[0].local_ids[:3]
        cluster.send(0, 1, PointBatch(ids), tag="pts")
        cluster.step()
        assert trace.events[0].words == 3 * (1 + metric.point_words())


class TestObserverLifecycle:
    def test_add_and_detach_via_hub(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        trace = cluster.obs.add(MessageTrace())
        assert trace in cluster.obs
        cluster.send(0, 1, 2.0, tag="legacy")
        cluster.step()
        assert trace.total_words() == 1
        trace.detach()
        assert trace not in cluster.obs

    def test_attach_shim_removed(self):
        # the pre-hub MessageTrace.attach() classmethod is gone; the
        # observer API is the only way to register a trace
        assert not hasattr(MessageTrace, "attach")
