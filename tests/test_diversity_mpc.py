"""Tests for Algorithm 2 — MPC (2+ε)-approximation k-diversity."""

import numpy as np
import pytest

from repro.analysis.validation import verify_diversity_solution
from repro.baselines.exact import exact_diversity
from repro.core.diversity import mpc_diversity, mpc_diversity_coreset
from repro.exceptions import InfeasibleInstanceError
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster


class TestCoreset:
    def test_four_approximation_vs_exact(self, rng):
        pts = rng.normal(size=(18, 2))
        metric = EuclideanMetric(pts)
        for k in (2, 3):
            _, opt = exact_diversity(metric, k)
            cluster = MPCCluster(metric, 3, seed=0)
            Q, r = mpc_diversity_coreset(cluster, k)
            assert Q.size == k
            assert opt / 4.0 - 1e-9 <= r <= opt + 1e-9

    def test_r_is_actual_diversity_of_q(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        Q, r = mpc_diversity_coreset(cluster, 8)
        assert r == pytest.approx(float(medium_metric.diversity(Q)))

    def test_beats_indyk_coreset(self, medium_metric):
        """The max-with-local-diversities refinement can only help."""
        from repro.baselines.indyk import indyk_diversity

        cluster_a = MPCCluster(medium_metric, 4, seed=0)
        _, r_ours = mpc_diversity_coreset(cluster_a, 8)
        cluster_b = MPCCluster(medium_metric, 4, seed=0)
        _, r_indyk = indyk_diversity(cluster_b, 8)
        assert r_ours >= r_indyk - 1e-9

    def test_k_validation(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        with pytest.raises(InfeasibleInstanceError):
            mpc_diversity_coreset(cluster, 1)
        with pytest.raises(InfeasibleInstanceError):
            mpc_diversity_coreset(cluster, medium_metric.n + 1)


class TestApproximationFactor:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_factor_vs_exact_small(self, rng, k):
        pts = rng.normal(size=(16, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_diversity(metric, k)
        cluster = MPCCluster(metric, 3, seed=1)
        eps = 0.1
        res = mpc_diversity(cluster, k, epsilon=eps)
        assert res.diversity >= opt / (2.0 * (1.0 + eps)) - 1e-9
        assert res.diversity <= opt + 1e-9  # cannot beat the optimum

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_factor_across_seeds(self, seed):
        pts = np.random.default_rng(seed).normal(size=(15, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_diversity(metric, 3)
        cluster = MPCCluster(metric, 4, seed=seed)
        res = mpc_diversity(cluster, 3, epsilon=0.2)
        assert res.diversity >= opt / 2.4 - 1e-9

    def test_exactly_k_points(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_diversity(cluster, 9, epsilon=0.2)
        assert res.size == 9
        verify_diversity_solution(medium_metric, res.ids, 9, res.diversity)

    def test_diversity_at_least_coreset_value(self, medium_metric):
        """The ladder only improves on the 4-approx starting value."""
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_diversity(cluster, 8, epsilon=0.2)
        assert res.diversity >= res.coreset_value - 1e-9

    def test_gmm_tight_instance_shows_where_the_factor_two_lives(self):
        """The classic GMM-tight instance: colinear −1, 0, 1 with GMM
        starting in the middle gives div(T) = 1 while the optimal
        2-subset {−1, +1} has diversity 2.

        Instructive subtlety: at τ₁ the *middle point alone* is a
        maximal independent set (it dominates both extremes), and
        Definition 1 allows the k-bounded MIS to return it — so the
        ladder may stop at j = 0 without recovering the optimum.  That
        is precisely the behaviour the 2(1+ε) factor prices in, and the
        guarantee div ≥ opt/(2(1+ε)) must still hold."""
        metric = EuclideanMetric([[0.0], [-1.0], [1.0]])  # id 0 is the middle
        opt = 2.0
        eps = 0.3
        cluster = MPCCluster(metric, 1, seed=0)
        res = mpc_diversity(cluster, 2, epsilon=eps)
        assert res.coreset_value == pytest.approx(1.0)
        assert res.diversity >= opt / (2 * (1 + eps)) - 1e-9
        assert res.diversity <= opt + 1e-9


class TestEdgeCases:
    def test_all_identical_points_diversity_zero(self):
        metric = EuclideanMetric(np.zeros((30, 2)))
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_diversity(cluster, 4, epsilon=0.1)
        assert res.diversity == 0.0
        assert res.size == 4

    def test_duplicates_dont_break(self, rng):
        base = rng.normal(size=(20, 2))
        pts = np.concatenate([base, base])  # every point duplicated
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_diversity(cluster, 5, epsilon=0.2)
        assert res.size == 5 and res.diversity > 0

    def test_k_equals_n(self, rng):
        pts = rng.normal(size=(10, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_diversity(metric, 10)
        cluster = MPCCluster(metric, 2, seed=0)
        res = mpc_diversity(cluster, 10, epsilon=0.2)
        assert res.diversity >= opt / 2.4 - 1e-9

    def test_invalid_epsilon(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        with pytest.raises(ValueError):
            mpc_diversity(cluster, 5, epsilon=-0.5)

    def test_single_machine(self, rng):
        pts = rng.normal(size=(40, 2))
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 1, seed=0)
        res = mpc_diversity(cluster, 4, epsilon=0.2)
        verify_diversity_solution(metric, res.ids, 4, res.diversity)

    def test_determinism(self, medium_metric):
        vals = []
        for _ in range(2):
            cluster = MPCCluster(medium_metric, 4, seed=17)
            vals.append(mpc_diversity(cluster, 8, epsilon=0.2).diversity)
        assert vals[0] == vals[1]
