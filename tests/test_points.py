"""Tests for repro.metric.points.PointSet."""

import numpy as np
import pytest

from repro.metric.points import PointSet


class TestConstruction:
    def test_basic_shape(self):
        ps = PointSet(np.zeros((5, 3)))
        assert ps.n == 5 and ps.dim == 3 and len(ps) == 5

    def test_1d_promoted_to_column(self):
        ps = PointSet([1.0, 2.0, 3.0])
        assert ps.n == 3 and ps.dim == 1

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            PointSet(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            PointSet(np.zeros((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            PointSet([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            PointSet([[float("inf"), 0.0]])

    def test_data_is_copied(self):
        src = np.ones((3, 2))
        ps = PointSet(src)
        src[0, 0] = 99.0
        assert ps.data[0, 0] == 1.0

    def test_data_is_readonly(self):
        ps = PointSet(np.ones((3, 2)))
        with pytest.raises(ValueError):
            ps.data[0, 0] = 5.0


class TestAccess:
    def test_ids(self):
        ps = PointSet(np.zeros((4, 2)))
        assert np.array_equal(ps.ids(), [0, 1, 2, 3])

    def test_take(self):
        ps = PointSet([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        out = ps.take([2, 0])
        assert np.array_equal(out, [[2.0, 2.0], [0.0, 0.0]])

    def test_take_out_of_range(self):
        ps = PointSet(np.zeros((3, 2)))
        with pytest.raises(IndexError):
            ps.take([5])
        with pytest.raises(IndexError):
            ps.take([-1])

    def test_point_words_is_dim(self):
        assert PointSet(np.zeros((2, 7))).point_words() == 7
