"""End-to-end tests for the HTTP/JSON API (the ISSUE acceptance bar).

A live threading server on an ephemeral port, driven through
:class:`~repro.service.client.ServiceClient`:

(a) an HTTP-submitted job returns centers/value bit-identical to the
    equivalent direct :func:`repro.api.solve_kcenter` call;
(b) resubmitting the same job is served from the result cache
    (``/stats`` hit counter) without re-running the solver;
(c) 8 concurrent submissions against ``queue_limit=4`` either complete
    or are rejected with HTTP 429 — no deadlock, no dropped jobs;
(d) ``GET /jobs/<id>/trace`` returns a non-empty obs trace.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import solve_kcenter
from repro.service import ServiceClient, ServiceError, serve
from repro.service.http import run_in_thread


@pytest.fixture
def server():
    srv = serve(port=0, workers=1, queue_limit=4, backend="serial")
    run_in_thread(srv)
    yield srv
    srv.shutdown_service()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


@pytest.fixture
def points():
    return np.random.default_rng(7).normal(scale=3.0, size=(200, 2))


class TestHealthAndStats:
    def test_healthz_reports_version(self, client):
        from repro import __version__

        health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["workers"] == 1 and health["queue_limit"] == 4

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["cache"]["hits_total"] == 0
        assert "jobs_by_algorithm" in stats

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404


class TestDatasets:
    def test_register_and_fetch(self, client, points):
        ds = client.register_points(points)
        assert ds["n"] == 200 and ds["id"].startswith("ds-")
        assert client.dataset(ds["id"])["fingerprint"] == ds["fingerprint"]
        assert any(d["id"] == ds["id"] for d in client.datasets())

    def test_register_workload(self, client):
        ds = client.register_workload("gaussian", 150, seed=1)
        assert ds["kind"] == "workload" and ds["n"] == 150

    def test_bad_dataset_bodies(self, client):
        for body, status in [
            ({}, 400),
            ({"workload": "gaussian"}, 400),          # missing n
            ({"workload": "bogus", "n": 10}, 400),    # unknown workload
            ({"points": [[0, 0]], "zap": 1}, 400),    # unknown field
        ]:
            with pytest.raises(ServiceError) as exc:
                client._request("POST", "/datasets", body)
            assert exc.value.status == status

    def test_same_points_different_metric_distinct_over_http(self, client, points):
        # regression: the fingerprint must cover the metric, or the
        # second registration silently reuses the first dataset and
        # every manhattan job runs (and cache-serves) euclidean
        eu = client.register_points(points, metric="euclidean")
        man = client.register_points(points, metric="manhattan")
        assert eu["id"] != man["id"]
        assert eu["fingerprint"] != man["fingerprint"]
        assert client.dataset(man["id"])["metric"] == "ManhattanMetric"

    def test_unknown_dataset_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.dataset("ds-missing")
        assert exc.value.status == 404


class TestJobsEndToEnd:
    def test_http_result_bit_identical_to_direct_call(self, client, points):
        """Acceptance (a)."""
        ds = client.register_points(points)
        job = client.submit(algorithm="kcenter", dataset=ds["id"], k=8,
                            eps=0.2, seed=11, machines=4)
        assert job["state"] in ("queued", "running", "done")
        done = client.wait(job["id"])
        assert done["state"] == "done"

        direct = solve_kcenter(points, k=8, eps=0.2, seed=11, machines=4)
        record = done["result"]["record"]
        assert record["radius"] == direct.radius
        assert record["centers"] == [int(c) for c in direct.centers]
        assert record["rounds"] == direct.rounds

    def test_resubmission_served_from_cache(self, client, points):
        """Acceptance (b)."""
        ds = client.register_points(points)
        spec = dict(algorithm="kcenter", dataset=ds["id"], k=5, eps=0.2, seed=1)
        first = client.wait(client.submit(**spec)["id"])
        hits_before = client.stats()["cache"]["hits_total"]

        second = client.submit(**spec)
        # a cache hit completes at submission time — no queue, no solver
        assert second["state"] == "done" and second["cached"] is True
        assert second["result"] == first["result"]
        assert client.stats()["cache"]["hits_total"] == hits_before + 1

    def test_concurrent_burst_respects_queue_limit(self, server, client, points):
        """Acceptance (c): 8 concurrent submissions, queue_limit=4 —
        every one either completes or gets a clean 429."""
        ds = client.register_points(points)
        manager = server.manager
        manager.pause()
        time.sleep(0.3)  # let the worker park so nothing drains mid-burst

        def submit(seed: int):
            try:
                return "ok", client.submit(algorithm="kcenter", dataset=ds["id"],
                                           k=4, eps=0.3, seed=seed)
            except ServiceError as exc:
                return "rejected", exc

        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(submit, range(8)))
        finally:
            manager.resume()

        accepted = [job for kind, job in outcomes if kind == "ok"]
        rejected = [exc for kind, exc in outcomes if kind == "rejected"]
        assert len(accepted) + len(rejected) == 8
        assert len(accepted) == 4, "queue_limit=4 with a parked worker"
        assert all(exc.status == 429 for exc in rejected)

        # no deadlock, no dropped jobs: every accepted job terminates
        for job in accepted:
            assert client.wait(job["id"], timeout=120)["state"] == "done"

    def test_trace_endpoint_nonempty(self, client, points):
        """Acceptance (d)."""
        ds = client.register_points(points)
        done = client.wait(
            client.submit(algorithm="kcenter", dataset=ds["id"], k=4)["id"]
        )
        trace = client.trace(done["id"])
        spans = [e for e in trace["traceEvents"] if e.get("cat") == "span"]
        assert spans, "a completed job must have a non-empty phase trace"
        assert trace["otherData"]["job"] == done["id"]

        jsonl = client.trace(done["id"], fmt="jsonl")
        lines = [json.loads(line) for line in jsonl.splitlines()]
        assert lines[0]["type"] == "meta"
        assert any(line["type"] == "span" for line in lines)

    def test_trace_before_completion_409(self, server, client, points):
        ds = client.register_points(points)
        server.manager.pause()
        time.sleep(0.2)
        try:
            job = client.submit(algorithm="kcenter", dataset=ds["id"], k=4,
                                seed=123)
            with pytest.raises(ServiceError) as exc:
                client.trace(job["id"])
            assert exc.value.status == 409
        finally:
            server.manager.resume()

    def test_cancel_queued_job_via_http(self, server, client, points):
        ds = client.register_points(points)
        server.manager.pause()
        time.sleep(0.2)
        try:
            job = client.submit(algorithm="kcenter", dataset=ds["id"], k=4,
                                seed=321)
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
        finally:
            server.manager.resume()
        assert client.job(job["id"])["state"] == "cancelled"

    def test_cancel_done_job_409(self, client, points):
        ds = client.register_points(points)
        done = client.wait(
            client.submit(algorithm="kcenter", dataset=ds["id"], k=3)["id"]
        )
        with pytest.raises(ServiceError) as exc:
            client.cancel(done["id"])
        assert exc.value.status == 409

    def test_job_listing_and_state_filter(self, client, points):
        ds = client.register_points(points)
        done = client.wait(
            client.submit(algorithm="diversity", dataset=ds["id"], k=4)["id"]
        )
        assert any(j["id"] == done["id"] for j in client.jobs())
        assert any(j["id"] == done["id"] for j in client.jobs(state="done"))
        with pytest.raises(ServiceError) as exc:
            client.jobs(state="bogus")
        assert exc.value.status == 400

    def test_invalid_job_bodies(self, client, points):
        ds = client.register_points(points)
        for body in [
            {},
            {"algorithm": "kcenter"},                             # no dataset
            {"algorithm": "warp", "dataset": ds["id"]},           # bad algo
            {"algorithm": "kcenter", "dataset": ds["id"], "k": 0},
            {"algorithm": "kcenter", "dataset": ds["id"], "k": 3, "zap": 1},
            {"algorithm": "kcenter", "dataset": ds["id"], "k": 10**6},
        ]:
            with pytest.raises(ServiceError) as exc:
                client._request("POST", "/jobs", body)
            assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.submit(algorithm="kcenter", dataset="ds-missing", k=2)
        assert exc.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.job("job-999999")
        assert exc.value.status == 404

    def test_client_solve_convenience(self, client, points):
        done = client.solve(points, algorithm="kcenter", k=6, eps=0.2, seed=2)
        direct = solve_kcenter(points, k=6, eps=0.2, seed=2)
        assert done["result"]["record"]["radius"] == direct.radius


class TestServeWiring:
    def test_ephemeral_port_and_clean_shutdown(self):
        srv = serve(port=0, workers=1)
        thread = run_in_thread(srv)
        ServiceClient(srv.url).healthz()
        srv.shutdown_service()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_workload_job_over_http(self, client):
        ds = client.register_workload("clustered", 160, seed=4)
        done = client.wait(
            client.submit(algorithm="kcenter", dataset=ds["id"], k=8)["id"]
        )
        assert done["result"]["record"]["radius"] > 0

    def test_concurrent_distinct_jobs_all_complete(self, client, points):
        """Burst under the limit: all jobs run, results stay per-seed
        deterministic (no cross-job state bleed through the shared
        dataset metric)."""
        ds = client.register_points(points)
        jobs = {}
        for seed in (1, 2):
            jobs[seed] = client.submit(algorithm="kcenter", dataset=ds["id"],
                                       k=5, eps=0.25, seed=seed)["id"]
        for seed, job_id in jobs.items():
            got = client.wait(job_id)["result"]["record"]
            direct = solve_kcenter(points, k=5, eps=0.25, seed=seed)
            assert got["radius"] == direct.radius
            assert got["centers"] == [int(c) for c in direct.centers]


def test_threading_server_handles_parallel_polling(server, points):
    """Many clients polling while a job runs must not wedge the server."""
    client = ServiceClient(server.url)
    ds = client.register_points(points)
    job = client.submit(algorithm="kcenter", dataset=ds["id"], k=6, seed=9)

    stop = threading.Event()
    errors = []

    def poll():
        while not stop.is_set():
            try:
                client.healthz()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    pollers = [threading.Thread(target=poll, daemon=True) for _ in range(4)]
    for t in pollers:
        t.start()
    try:
        assert client.wait(job["id"])["state"] == "done"
    finally:
        stop.set()
        for t in pollers:
            t.join(timeout=5)
    assert not errors
