"""Tests for Minkowski / Manhattan / Chebyshev metrics."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.metric.lp import ChebyshevMetric, ManhattanMetric, MinkowskiMetric


@pytest.fixture
def pts(rng):
    return rng.normal(size=(30, 3))


class TestMinkowski:
    def test_p2_matches_euclidean(self, pts):
        m = MinkowskiMetric(pts, p=2.0)
        ref = cdist(pts, pts, metric="euclidean")
        assert np.allclose(m.pairwise(np.arange(30), np.arange(30)), ref)

    def test_p3_matches_scipy(self, pts):
        m = MinkowskiMetric(pts, p=3.0)
        ref = cdist(pts, pts, metric="minkowski", p=3)
        assert np.allclose(m.pairwise(np.arange(30), np.arange(30)), ref)

    def test_rejects_p_below_one(self, pts):
        with pytest.raises(ValueError, match="p >= 1"):
            MinkowskiMetric(pts, p=0.5)


class TestManhattan:
    def test_matches_scipy(self, pts):
        m = ManhattanMetric(pts)
        ref = cdist(pts, pts, metric="cityblock")
        assert np.allclose(m.pairwise(np.arange(30), np.arange(30)), ref)

    def test_dominates_euclidean(self, pts):
        l1 = ManhattanMetric(pts).pairwise(np.arange(30), np.arange(30))
        l2 = cdist(pts, pts)
        assert np.all(l1 >= l2 - 1e-9)


class TestChebyshev:
    def test_matches_scipy(self, pts):
        m = ChebyshevMetric(pts)
        ref = cdist(pts, pts, metric="chebyshev")
        assert np.allclose(m.pairwise(np.arange(30), np.arange(30)), ref)

    def test_p_is_inf(self, pts):
        import math

        assert math.isinf(ChebyshevMetric(pts).p)

    def test_below_euclidean(self, pts):
        linf = ChebyshevMetric(pts).pairwise(np.arange(30), np.arange(30))
        l2 = cdist(pts, pts)
        assert np.all(linf <= l2 + 1e-9)
