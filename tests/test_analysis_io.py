"""Tests for experiment-result serialization."""

import numpy as np
import pytest

from repro.analysis.io import read_csv, read_json, write_csv, write_json


@pytest.fixture
def rows():
    return [
        {"n": np.int64(100), "ratio": np.float64(1.5), "ok": np.bool_(True)},
        {"n": 200, "ratio": 2.0, "extra": [1, 2]},
    ]


class TestJson:
    def test_roundtrip(self, rows, tmp_path):
        p = write_json(rows, tmp_path / "out.json", meta={"k": 5})
        doc = read_json(p)
        assert doc["meta"] == {"k": 5}
        assert doc["rows"][0] == {"n": 100, "ratio": 1.5, "ok": True}
        assert doc["rows"][1]["extra"] == [1, 2]

    def test_numpy_arrays_become_lists(self, tmp_path):
        p = write_json([{"arr": np.arange(3)}], tmp_path / "a.json")
        assert read_json(p)["rows"][0]["arr"] == [0, 1, 2]

    def test_empty(self, tmp_path):
        p = write_json([], tmp_path / "e.json")
        assert read_json(p)["rows"] == []


class TestCsv:
    def test_roundtrip(self, rows, tmp_path):
        p = write_csv(rows, tmp_path / "out.csv")
        back = read_csv(p)
        assert back[0]["n"] == "100" and back[0]["ratio"] == "1.5"

    def test_union_header_missing_cells(self, rows, tmp_path):
        p = write_csv(rows, tmp_path / "out.csv")
        back = read_csv(p)
        assert back[0]["extra"] == "" and back[1]["ok"] == ""

    def test_empty(self, tmp_path):
        p = write_csv([], tmp_path / "e.csv")
        assert read_csv(p) == []
