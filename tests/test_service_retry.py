"""Tests for retry/recovery across the service stack.

* :class:`RetryPolicy` — validation, deterministic backoff;
* :class:`JobManager` — crashed jobs re-enqueued with backoff, attempt
  history on the job record, recovery/exhaustion counters, spec-level
  budget override, and ``stop()`` reporting stuck workers instead of
  silently discarding them;
* :class:`ServiceClient` — transparent retry of injected ``429``/``503``
  storms and dropped connections, ``Retry-After`` honoured, and
  :meth:`ServiceClient.wait` surviving a server restart mid-poll.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.obs.record import RunLog
from repro.service import (
    JobManager,
    JobSpec,
    JobState,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    serve,
)
from repro.service.datasets import DatasetRegistry
from repro.service.http import run_in_thread


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_s=-1.0)

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.5)
        assert policy.delay(1, key="job-1") == policy.delay(1, key="job-1")
        assert policy.delay(1, key="job-1") != policy.delay(1, key="job-2")

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(max_retries=8, backoff_s=0.5, factor=2.0, max_backoff_s=3.0)
        for attempt in range(1, 9):
            base = min(0.5 * 2.0 ** (attempt - 1), 3.0)
            d = policy.delay(attempt, key="j")
            assert 0.75 * base <= d <= min(1.25 * base, 3.0)
        assert policy.delay(8, key="j") <= 3.0

    def test_to_dict(self):
        assert RetryPolicy(max_retries=2).to_dict()["max_retries"] == 2


@pytest.fixture
def registry():
    reg = DatasetRegistry()
    pts = np.random.default_rng(3).normal(scale=2.0, size=(80, 2))
    ds = reg.register_points(pts)
    return reg, ds


def flaky_execute_job(fail_times: int):
    """An execute_job stand-in that crashes its first ``fail_times``
    calls per job id, then succeeds — the transient-infrastructure
    failure the deterministic solver can't produce on its own."""
    calls = {}

    def fake(spec, dataset, **kwargs):
        job_id = kwargs.get("job_id", "?")
        calls[job_id] = calls.get(job_id, 0) + 1
        if calls[job_id] <= fail_times:
            raise OSError(f"synthetic infra crash #{calls[job_id]}")
        return {"record": {"ok": True}, "attempt_no": calls[job_id]}, RunLog()

    fake.calls = calls
    return fake


def make_manager(registry, monkeypatch, execute, **kwargs):
    reg, _ = registry
    monkeypatch.setattr("repro.service.jobs.execute_job", execute)
    kwargs.setdefault(
        "retry_policy",
        RetryPolicy(max_retries=3, backoff_s=0.01, max_backoff_s=0.05),
    )
    return JobManager(reg, workers=1, **kwargs).start()


class TestJobRetry:
    def test_flaky_job_recovers(self, registry, monkeypatch):
        _, ds = registry
        manager = make_manager(registry, monkeypatch, flaky_execute_job(2))
        try:
            job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=3))
            manager.wait(job.id, timeout=10)
            assert job.state is JobState.DONE
            assert job.result["attempt_no"] == 3
            assert job.attempt == 2 and len(job.attempts) == 2
            for i, record in enumerate(job.attempts):
                assert record["attempt"] == i
                assert f"synthetic infra crash #{i + 1}" in record["error"]
                assert record["backoff_s"] > 0
            stats = manager.stats()["retry"]
            assert stats["retries_total"] == 2
            assert stats["jobs_recovered_total"] == 1
            assert stats["jobs_exhausted_total"] == 0
            assert manager.recent_retry_activity()
            # the attempt history rides the public job record
            desc = job.describe()
            assert desc["attempt"] == 2 and len(desc["attempts"]) == 2
        finally:
            manager.stop()

    def test_budget_exhaustion_fails_terminally(self, registry, monkeypatch):
        _, ds = registry
        manager = make_manager(
            registry, monkeypatch, flaky_execute_job(99),
            retry_policy=RetryPolicy(max_retries=2, backoff_s=0.01),
        )
        try:
            job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=3))
            manager.wait(job.id, timeout=10)
            assert job.state is JobState.FAILED
            assert "synthetic infra crash #3" in job.error
            assert job.attempt == 2 and len(job.attempts) == 2
            stats = manager.stats()["retry"]
            assert stats["jobs_exhausted_total"] == 1
            assert stats["jobs_recovered_total"] == 0
        finally:
            manager.stop()

    def test_spec_overrides_the_policy_budget(self, registry, monkeypatch):
        _, ds = registry
        execute = flaky_execute_job(99)
        manager = make_manager(registry, monkeypatch, execute)  # policy allows 3
        try:
            job = manager.submit(
                JobSpec(algorithm="kcenter", dataset=ds.id, k=3, max_retries=0)
            )
            manager.wait(job.id, timeout=10)
            assert job.state is JobState.FAILED
            assert job.attempt == 0 and job.attempts == []
            assert execute.calls[job.id] == 1  # no retries at all
        finally:
            manager.stop()

    def test_default_policy_does_not_retry(self, registry, monkeypatch):
        _, ds = registry
        execute = flaky_execute_job(1)
        manager = make_manager(registry, monkeypatch, execute, retry_policy=RetryPolicy())
        try:
            job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=3))
            manager.wait(job.id, timeout=10)
            assert job.state is JobState.FAILED
            assert manager.stats()["retry"]["jobs_exhausted_total"] == 0  # budget was 0
        finally:
            manager.stop()

    def test_cancel_during_backoff_wins(self, registry, monkeypatch):
        _, ds = registry
        manager = make_manager(
            registry, monkeypatch, flaky_execute_job(99),
            retry_policy=RetryPolicy(max_retries=5, backoff_s=0.5, max_backoff_s=1.0),
        )
        try:
            job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=3))
            # wait for the first failure to schedule a retry, then cancel
            deadline = time.monotonic() + 5
            while job.attempt == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert job.attempt >= 1
            manager.cancel(job.id)
            manager.wait(job.id, timeout=10)
            assert job.state is JobState.CANCELLED
        finally:
            manager.stop()


class TestStopReportsStuckWorkers:
    def test_stuck_worker_warns_and_shows_in_stats(self, registry, monkeypatch):
        _, ds = registry
        release = threading.Event()

        def hanging(spec, dataset, **kwargs):
            release.wait(timeout=30)
            return {"record": {}}, RunLog()

        manager = make_manager(
            registry, monkeypatch, hanging,
            retry_policy=RetryPolicy(), stop_timeout_s=0.2,
        )
        job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=3))
        deadline = time.monotonic() + 5
        while job.state is not JobState.RUNNING and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.warns(RuntimeWarning, match="still alive"):
            manager.stop(wait=True)
        assert manager.stats()["stuck_workers"]  # visible until it exits
        release.set()
        manager.wait(job.id, timeout=10)
        deadline = time.monotonic() + 5
        while manager.stats()["stuck_workers"] and time.monotonic() < deadline:
            time.sleep(0.01)
        assert manager.stats()["stuck_workers"] == []  # pruned once dead

    def test_clean_stop_does_not_warn(self, registry):
        reg, _ = registry
        manager = JobManager(reg, workers=2).start()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            manager.stop(wait=True)
        assert manager.stats()["stuck_workers"] == []

    def test_stop_timeout_validated(self, registry):
        reg, _ = registry
        with pytest.raises(ValueError, match="stop_timeout_s"):
            JobManager(reg, stop_timeout_s=0)


class TestClientTransportRetry:
    def run_server(self, **kwargs):
        kwargs.setdefault("workers", 1)
        srv = serve(port=0, **kwargs)
        run_in_thread(srv)
        return srv

    def test_survives_a_429_storm(self):
        srv = self.run_server(faults="seed=9,error_burst=4")
        try:
            client = ServiceClient(srv.url, retries=6, backoff_s=0.01)
            ds = client.register_workload("gaussian", 60, seed=1)
            assert ds["n"] == 60
            assert client.transport_retries >= 4
            assert srv.faults_injected >= 4
        finally:
            srv.shutdown_service()

    def test_survives_dropped_connections(self):
        srv = self.run_server(faults="seed=17,service_drop=0.5")
        try:
            client = ServiceClient(srv.url, retries=8, backoff_s=0.01)
            for _ in range(5):
                assert "queue_depth" in client.stats()
            assert client.transport_retries >= 1
        finally:
            srv.shutdown_service()

    def test_healthz_is_exempt_from_injection(self):
        srv = self.run_server(faults="seed=1,service_drop=1.0")
        try:
            # zero retries: only the exemption can make this succeed
            client = ServiceClient(srv.url, retries=0)
            health = client.healthz()
            assert health["status"] in ("ok", "degraded")
            with pytest.raises(ServiceError) as exc:
                client.stats()
            assert exc.value.status == 0  # transport failure, not an answer
        finally:
            srv.shutdown_service()

    def test_healthz_reports_degraded_after_faults(self):
        srv = self.run_server(faults="seed=9,error_burst=2")
        try:
            client = ServiceClient(srv.url, retries=4, backoff_s=0.01)
            client.stats()  # burns the burst through retries
            health = client.healthz()
            assert health["status"] == "degraded"
            assert "injected service faults in the last 60s" in health["degraded_because"]
            assert health["faults_injected"] == 2
            stats = client.stats()
            assert stats["service_faults"]["injected_total"] == 2
            assert "burst=2" in stats["service_faults"]["plan"]
        finally:
            srv.shutdown_service()

    def test_non_transient_errors_raise_immediately(self):
        srv = self.run_server()
        try:
            client = ServiceClient(srv.url, retries=5, backoff_s=0.01)
            with pytest.raises(ServiceError) as exc:
                client.job("job-999999")
            assert exc.value.status == 404
            assert client.transport_retries == 0
        finally:
            srv.shutdown_service()

    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient("http://localhost:1", retries=-1)


class TestWaitSurvivesRestart:
    def test_wait_spans_a_server_restart(self, registry):
        reg, ds = registry
        manager = JobManager(reg, workers=1).start()
        manager.pause()  # hold the job queued across the restart
        time.sleep(0.25)  # let workers park (pause() takes one poll cycle)
        srv1 = serve(port=0, manager=manager)
        run_in_thread(srv1)
        port = srv1.server_address[1]
        client = ServiceClient(srv1.url, retries=2, backoff_s=0.01)
        job = client.submit(algorithm="kcenter", dataset=ds.id, k=3)

        outcome = {}

        def waiter():
            try:
                outcome["job"] = client.wait(job["id"], timeout=30, poll_s=0.02)
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                outcome["error"] = exc

        thread = threading.Thread(target=waiter)
        thread.start()
        # kill the HTTP front-end only; the manager (and the job) survive
        srv1.shutdown()
        srv1.server_close()
        time.sleep(0.3)  # let the waiter poll against a dead server
        srv2 = serve(port=port, manager=manager)
        run_in_thread(srv2)
        manager.resume()
        thread.join(timeout=30)
        try:
            assert "error" not in outcome, f"wait raised: {outcome.get('error')!r}"
            assert outcome["job"]["state"] == "done"
        finally:
            srv2.shutdown_service()

    def test_wait_poll_backoff_is_capped(self, registry):
        reg, ds = registry
        manager = JobManager(reg, workers=1).start()
        srv = serve(port=0, manager=manager)
        run_in_thread(srv)
        try:
            client = ServiceClient(srv.url)
            job = client.submit(algorithm="kcenter", dataset=ds.id, k=3)
            done = client.wait(job["id"], timeout=30, poll_s=0.01, max_poll_s=0.05)
            assert done["state"] == "done"
        finally:
            srv.shutdown_service()

    def test_wait_timeout_names_last_state(self, registry):
        reg, ds = registry
        manager = JobManager(reg, workers=1).start()
        manager.pause()
        time.sleep(0.25)  # let workers park (pause() takes one poll cycle)
        srv = serve(port=0, manager=manager)
        run_in_thread(srv)
        try:
            client = ServiceClient(srv.url)
            job = client.submit(algorithm="kcenter", dataset=ds.id, k=3)
            with pytest.raises(TimeoutError, match="still queued"):
                client.wait(job["id"], timeout=0.3, poll_s=0.02)
        finally:
            srv.shutdown_service()
