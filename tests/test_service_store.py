"""Contract parity suite for the pluggable service stores.

Every test here runs twice — once against the in-memory backend, once
against the SQLite/file one — via the parametrized fixtures below.  The
point is that :class:`~repro.service.jobs.JobManager` cannot tell the
backends apart: same atomic claim/finish semantics, same orphan
recovery, same pagination contract, same cache behaviour.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.store import (
    DatasetRecord,
    JobRecord,
    QueueFullError,
    UnknownJobError,
    ensure_queued_jobs_enqueued,
    iterate_jobs,
    open_stores,
)

BACKENDS = ("memory", "sqlite")


@pytest.fixture(params=BACKENDS)
def stores(request, tmp_path):
    if request.param == "memory":
        return open_stores(queue_limit=8)
    return open_stores(str(tmp_path / "state"), queue_limit=8)


@pytest.fixture
def jobs(stores):
    return stores.jobs


def _record(store, state="queued", spec=None, **kw):
    rec = JobRecord(
        id=store.next_job_id(),
        spec=spec or {"algorithm": "kcenter", "dataset": "ds-x", "k": 2},
        state=state,
        created_at=100.0,
        queued_at=100.0,
        **kw,
    )
    return store.create(rec)


class TestJobStoreContract:
    def test_create_get_roundtrip(self, jobs):
        header = "00-" + "t" * 32 + "-" + "s" * 16 + "-01"
        rec = _record(jobs, trace_id="t" * 32, traceparent=header)
        got = jobs.get(rec.id)
        assert got.id == rec.id
        assert got.spec["algorithm"] == "kcenter"
        assert got.state == "queued"
        assert got.trace_id == "t" * 32
        assert got.traceparent.startswith("00-")
        assert got.version >= 1

    def test_get_unknown_raises(self, jobs):
        with pytest.raises(UnknownJobError):
            jobs.get("job-999999")

    def test_ids_monotonic(self, jobs):
        ids = [jobs.next_job_id() for _ in range(3)]
        nums = [int(i.rsplit("-", 1)[1]) for i in ids]
        assert nums == sorted(nums)
        assert len(set(nums)) == 3

    def test_save_bumps_version(self, jobs):
        rec = _record(jobs)
        v0 = rec.version
        rec.state = "failed"
        rec.error = "boom"
        saved = jobs.save(rec)
        assert saved.version > v0
        assert jobs.get(rec.id).error == "boom"

    def test_save_unknown_raises(self, jobs):
        rec = JobRecord(id="job-424242", spec={})
        with pytest.raises(UnknownJobError):
            jobs.save(rec)

    def test_delete_is_idempotent(self, jobs):
        rec = _record(jobs)
        jobs.delete(rec.id)
        jobs.delete(rec.id)
        with pytest.raises(UnknownJobError):
            jobs.get(rec.id)

    def test_claim_transitions_queued_to_running(self, jobs):
        rec = _record(jobs)
        claimed = jobs.claim(rec.id, "w1", lease_expires_at=1e12)
        assert claimed is not None
        assert claimed.state == "running"
        assert claimed.worker == "w1"
        assert claimed.started_at is not None
        assert claimed.lease_expires_at == 1e12

    def test_claim_race_has_one_winner(self, jobs):
        rec = _record(jobs)
        wins = [
            jobs.claim(rec.id, f"w{i}", lease_expires_at=1e12) for i in range(4)
        ]
        assert sum(1 for w in wins if w is not None) == 1

    def test_claim_race_threaded_one_winner(self, jobs):
        rec = _record(jobs)
        results = []
        barrier = threading.Barrier(4)

        def contender(i):
            barrier.wait()
            results.append(jobs.claim(rec.id, f"w{i}", lease_expires_at=1e12))

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(1 for r in results if r is not None) == 1

    def test_claim_refuses_cancel_requested(self, jobs):
        rec = _record(jobs)
        jobs.set_cancel_requested(rec.id)
        assert jobs.claim(rec.id, "w1", lease_expires_at=1e12) is None

    def test_heartbeat_renews_only_own_lease(self, jobs):
        rec = _record(jobs)
        jobs.claim(rec.id, "w1", lease_expires_at=10.0)
        assert jobs.heartbeat(rec.id, "w2", lease_expires_at=99.0) is None
        renewed = jobs.heartbeat(rec.id, "w1", lease_expires_at=99.0)
        assert renewed is not None
        assert renewed.lease_expires_at == 99.0

    def test_finish_cas_rejects_wrong_worker(self, jobs):
        rec = _record(jobs)
        claimed = jobs.claim(rec.id, "w1", lease_expires_at=1e12)
        claimed.state = "done"
        claimed.result = {"answer": 42}
        assert jobs.finish(claimed, "w2") is None  # not the lease owner
        finished = jobs.finish(claimed, "w1")
        assert finished is not None
        assert finished.state == "done"
        assert finished.worker is None
        assert jobs.get(rec.id).result == {"answer": 42}

    def test_finish_rejects_unclaimed(self, jobs):
        rec = _record(jobs)
        rec.state = "done"
        assert jobs.finish(rec, "w1") is None  # still queued: no lease

    def test_count_by_state(self, jobs):
        _record(jobs)
        r2 = _record(jobs)
        jobs.claim(r2.id, "w1", lease_expires_at=1e12)
        counts = jobs.count_by_state()
        assert counts.get("queued") == 1
        assert counts.get("running") == 1

    def test_recover_orphans_requeues_expired_lease(self, jobs):
        rec = _record(jobs)
        jobs.claim(rec.id, "w1", lease_expires_at=50.0)
        recovered = jobs.recover_orphans(now=100.0, max_requeues=5)
        assert [r.id for r in recovered] == [rec.id]
        got = jobs.get(rec.id)
        assert got.state == "queued"
        assert got.attempt == 1
        assert got.worker is None
        assert got.started_at is None
        assert "orphaned" in got.attempts[-1]["error"]
        assert "w1" in got.attempts[-1]["error"]

    def test_recover_orphans_ignores_live_lease(self, jobs):
        rec = _record(jobs)
        jobs.claim(rec.id, "w1", lease_expires_at=200.0)
        assert jobs.recover_orphans(now=100.0) == []
        assert jobs.get(rec.id).state == "running"

    def test_recover_orphans_exhausts_budget(self, jobs):
        rec = _record(jobs)
        for _ in range(2):
            jobs.claim(rec.id, "w1", lease_expires_at=50.0)
            jobs.recover_orphans(now=100.0, max_requeues=1)
        got = jobs.get(rec.id)
        assert got.state == "failed"
        assert "requeue budget" in got.error

    def test_recover_orphans_honours_cancel(self, jobs):
        rec = _record(jobs)
        jobs.claim(rec.id, "w1", lease_expires_at=50.0)
        jobs.set_cancel_requested(rec.id)
        recovered = jobs.recover_orphans(now=100.0)
        assert recovered[0].state == "cancelled"
        assert jobs.get(rec.id).state == "cancelled"

    def test_list_pagination_stable_order(self, jobs):
        made = [_record(jobs) for _ in range(5)]
        page1, cur1 = jobs.list(limit=2)
        assert [r.id for r in page1] == [made[0].id, made[1].id]
        assert cur1 == made[1].id
        page2, cur2 = jobs.list(limit=2, cursor=cur1)
        assert [r.id for r in page2] == [made[2].id, made[3].id]
        page3, cur3 = jobs.list(limit=2, cursor=cur2)
        assert [r.id for r in page3] == [made[4].id]
        assert cur3 is None

    def test_list_state_filter(self, jobs):
        a = _record(jobs)
        _record(jobs)
        jobs.claim(a.id, "w1", lease_expires_at=1e12)
        running, _ = jobs.list(state="running")
        assert [r.id for r in running] == [a.id]

    def test_iterate_jobs_follows_cursors(self, jobs):
        made = [_record(jobs) for _ in range(7)]
        seen = [r.id for r in iterate_jobs(jobs, page_size=3)]
        assert seen == [r.id for r in made]

    def test_prune_terminal_evicts_oldest(self, jobs):
        made = [_record(jobs) for _ in range(4)]
        for rec in made[:3]:
            claimed = jobs.claim(rec.id, "w1", lease_expires_at=1e12)
            claimed.state = "done"
            jobs.finish(claimed, "w1")
        pruned = jobs.prune_terminal(max_history=2)
        assert pruned == [made[0].id]
        with pytest.raises(UnknownJobError):
            jobs.get(made[0].id)
        assert jobs.get(made[3].id).state == "queued"  # non-terminal kept


class TestWorkQueueContract:
    def test_fifo_and_depth(self, stores):
        q = stores.work_queue
        q.push("job-000001")
        q.push("job-000002")
        assert q.depth() == 2
        assert "job-000001" in q
        assert q.pop(timeout=0.5) == "job-000001"
        assert q.pop(timeout=0.5) == "job-000002"
        assert q.pop(timeout=0.05) is None
        assert q.depth() == 0

    def test_bounded_push_raises(self, stores):
        q = stores.work_queue
        for i in range(q.limit):
            q.push(f"job-{i:06d}")
        with pytest.raises(QueueFullError):
            q.push("job-999999")

    def test_concurrent_pop_no_duplicates(self, stores):
        q = stores.work_queue
        ids = [f"job-{i:06d}" for i in range(8)]
        for jid in ids:
            q.push(jid)
        popped, lock = [], threading.Lock()

        def drain():
            while True:
                jid = q.pop(timeout=0.05)
                if jid is None:
                    return
                with lock:
                    popped.append(jid)

        threads = [threading.Thread(target=drain) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(popped) == ids  # every id exactly once

    def test_ensure_queued_jobs_enqueued(self, stores):
        rec = _record(stores.jobs)
        assert stores.work_queue.depth() == 0
        repushed = ensure_queued_jobs_enqueued(stores.jobs, stores.work_queue)
        assert repushed == [rec.id]
        assert stores.work_queue.pop(timeout=0.5) == rec.id
        # already enqueued → not repushed again
        stores.work_queue.push(rec.id)
        assert ensure_queued_jobs_enqueued(stores.jobs, stores.work_queue) == []

    def test_ensure_respects_age_filter(self, stores):
        rec = _record(stores.jobs)  # queued_at = 100.0
        out = ensure_queued_jobs_enqueued(
            stores.jobs, stores.work_queue, older_than_s=60.0, now=120.0
        )
        assert out == []  # too fresh
        out = ensure_queued_jobs_enqueued(
            stores.jobs, stores.work_queue, older_than_s=60.0, now=500.0
        )
        assert out == [rec.id]


class TestDatasetStoreContract:
    def test_put_get_roundtrip(self, stores):
        ds = stores.datasets
        pts = np.arange(10, dtype=np.float64).reshape(5, 2)
        rec = DatasetRecord(
            id="ds-abc", fingerprint="f" * 64, kind="points",
            params={"metric": "euclidean"}, n=5, metric_name="EuclideanMetric",
            created_at=1.0,
        )
        ds.put(rec, pts)
        got = ds.get("ds-abc")
        assert got is not None
        assert got.n == 5
        assert got.params == {"metric": "euclidean"}
        loaded = ds.load_points("f" * 64)
        np.testing.assert_array_equal(loaded, pts)
        assert ds.get("ds-missing") is None
        assert ds.load_points("0" * 64) is None

    def test_put_idempotent(self, stores):
        ds = stores.datasets
        rec = DatasetRecord(
            id="ds-abc", fingerprint="f" * 64, kind="workload",
            params={"workload": "gaussian", "n": 10, "seed": 0}, n=10,
            metric_name="EuclideanMetric",
        )
        ds.put(rec, None)
        ds.put(rec, None)
        assert len(ds) == 1
        assert "ds-abc" in ds
        assert ds.find_fingerprint("f" * 64).id == "ds-abc"
        assert ds.find_fingerprint("0" * 64) is None

    def test_list_in_registration_order(self, stores):
        ds = stores.datasets
        for i in range(3):
            ds.put(
                DatasetRecord(
                    id=f"ds-{i}", fingerprint=f"{i}" * 64, kind="workload",
                    params={}, n=4, metric_name="M",
                ),
                None,
            )
        assert [r.id for r in ds.list()] == ["ds-0", "ds-1", "ds-2"]


class TestResultStoreContract:
    KEY1 = ("fp1", "kcenter", 4, 0.1, None, 0, "contiguous", "auto", "paper", None, None)
    KEY2 = ("fp2", "kcenter", 4, 0.1, None, 0, "contiguous", "auto", "paper", None, None)

    def test_miss_then_hit(self, stores):
        cache = stores.results
        assert cache.get(self.KEY1) is None
        cache.put(self.KEY1, {"radius": 1.5}, run_log=None)
        payload, _ = cache.get(self.KEY1)
        assert payload == {"radius": 1.5}
        stats = cache.stats()
        assert stats["hits_total"] == 1
        assert stats["misses_total"] == 1
        assert len(cache) == 1
        assert self.KEY1 in cache
        assert self.KEY2 not in cache

    def test_first_writer_wins(self, stores):
        cache = stores.results
        cache.put(self.KEY1, {"v": 1})
        cache.put(self.KEY1, {"v": 2})
        payload, _ = cache.get(self.KEY1)
        assert payload == {"v": 1}

    def test_clear(self, stores):
        cache = stores.results
        cache.put(self.KEY1, {"v": 1})
        cache.clear()
        assert len(cache) == 0
        assert cache.get(self.KEY1) is None


class TestSqliteSpecifics:
    """Durability behaviours only the SQLite backend can show."""

    def test_state_survives_reopen(self, tmp_path):
        state = str(tmp_path / "state")
        stores = open_stores(state, queue_limit=8)
        rec = _record(stores.jobs)
        claimed = stores.jobs.claim(rec.id, "w1", lease_expires_at=1e12)
        claimed.state = "done"
        claimed.result = {"answer": 7}
        stores.jobs.finish(claimed, "w1")
        stores.datasets.put(
            DatasetRecord(
                id="ds-1", fingerprint="a" * 64, kind="points",
                params={"metric": "euclidean"}, n=3, metric_name="EuclideanMetric",
            ),
            np.eye(3),
        )
        stores.results.put(self_key := ("fp", "kcenter", 2), {"r": 1.0})

        reopened = open_stores(state, queue_limit=8)
        assert reopened.jobs.get(rec.id).result == {"answer": 7}
        assert reopened.datasets.get("ds-1").n == 3
        np.testing.assert_array_equal(
            reopened.datasets.load_points("a" * 64), np.eye(3)
        )
        assert reopened.results.get(self_key)[0] == {"r": 1.0}

    def test_queue_shared_between_handles(self, tmp_path):
        state = str(tmp_path / "state")
        a = open_stores(state, queue_limit=8)
        b = open_stores(state, queue_limit=8)
        a.work_queue.push("job-000001")
        assert b.work_queue.depth() == 1
        assert b.work_queue.pop(timeout=0.5) == "job-000001"
        assert a.work_queue.depth() == 0

    def test_next_job_id_unique_across_handles(self, tmp_path):
        state = str(tmp_path / "state")
        a = open_stores(state, queue_limit=8)
        b = open_stores(state, queue_limit=8)
        ids = [a.jobs.next_job_id(), b.jobs.next_job_id(), a.jobs.next_job_id()]
        assert len(set(ids)) == 3

    def test_result_store_eviction_fifo(self, tmp_path):
        stores = open_stores(str(tmp_path / "state"), cache_entries=2)
        cache = stores.results
        cache.put(("k", 1), {"v": 1})
        cache.put(("k", 2), {"v": 2})
        cache.put(("k", 3), {"v": 3})
        assert len(cache) == 2
        assert cache.get(("k", 1)) is None  # oldest evicted
        assert cache.get(("k", 3))[0] == {"v": 3}

    def test_run_log_pickle_roundtrip(self, tmp_path):
        from repro.obs.record import RunLog

        stores = open_stores(str(tmp_path / "state"))
        rec = _record(stores.jobs)
        claimed = stores.jobs.claim(rec.id, "w1", lease_expires_at=1e12)
        claimed.state = "done"
        log = RunLog()
        log.meta["n"] = 123
        claimed.run_log = log
        stores.jobs.finish(claimed, "w1")
        got = stores.jobs.get(rec.id)
        assert got.run_log is not None
        assert got.run_log.meta["n"] == 123
