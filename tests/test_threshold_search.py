"""Tests for the flip-pair binary search."""

import pytest

from repro.core.threshold_search import find_flip


class TestFindFlip:
    def test_monotone_predicate(self):
        # good for i < 7
        j, vj, vj1 = find_flip(lambda i: i, lambda v: v < 7, 0, 20)
        assert j == 6 and vj == 6 and vj1 == 7

    def test_flip_at_start(self):
        j, _, _ = find_flip(lambda i: i, lambda v: v < 1, 0, 10)
        assert j == 0

    def test_flip_at_end(self):
        j, _, _ = find_flip(lambda i: i, lambda v: v < 10, 0, 10)
        assert j == 9

    def test_non_monotone_still_finds_adjacent_flip(self):
        # good: T T F F T T F  (indices 0..6) — any adjacent (T, F) works
        pattern = [True, True, False, False, True, True, False]
        j, _, _ = find_flip(lambda i: i, lambda v: pattern[v], 0, 6)
        assert pattern[j] and not pattern[j + 1]

    def test_probe_count_logarithmic(self):
        calls = []

        def probe(i):
            calls.append(i)
            return i

        find_flip(probe, lambda v: v < 500, 0, 1024)
        assert len(calls) <= 13  # log2(1024) + endpoints

    def test_memoization_via_cache(self):
        calls = []
        cache = {}

        def probe(i):
            calls.append(i)
            return i

        find_flip(probe, lambda v: v < 3, 0, 8, cache)
        assert len(calls) == len(set(calls))  # no repeated probes
        assert 3 in cache

    def test_prefilled_cache_used(self):
        cache = {0: 0, 8: 8}
        calls = []

        def probe(i):
            calls.append(i)
            return i

        find_flip(probe, lambda v: v < 5, 0, 8, cache)
        assert 0 not in calls and 8 not in calls

    def test_invariant_violation_lo(self):
        with pytest.raises(ValueError, match="good\\(lo\\)"):
            find_flip(lambda i: i, lambda v: False, 0, 5)

    def test_invariant_violation_hi(self):
        with pytest.raises(ValueError, match="good\\(hi\\)"):
            find_flip(lambda i: i, lambda v: True, 0, 5)

    def test_lo_ge_hi(self):
        with pytest.raises(ValueError, match="lo < hi"):
            find_flip(lambda i: i, lambda v: True, 5, 5)

    def test_adjacent_range(self):
        j, vj, vj1 = find_flip(lambda i: i, lambda v: v == 0, 0, 1)
        assert j == 0 and vj1 == 1
