"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kcenter_defaults(self):
        args = build_parser().parse_args(["kcenter"])
        assert args.workload == "gaussian" and args.k == 10
        assert args.machines == 8 and args.partition == "random"

    def test_mis_requires_tau(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mis"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kcenter", "--workload", "bogus"])

    def test_constants_choices(self):
        args = build_parser().parse_args(["kcenter", "--constants", "paper"])
        assert args.constants == "paper"

    def test_backend_default_and_choices(self):
        args = build_parser().parse_args(["kcenter"])
        assert args.backend == "serial"
        args = build_parser().parse_args(["diversity", "--backend", "process"])
        assert args.backend == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kcenter", "--backend", "gpu"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8000
        assert args.workers == 2 and args.backend == "serial"
        assert args.queue_limit == 64 and args.job_timeout is None

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--backend", "process",
             "--queue-limit", "8", "--job-timeout", "30"]
        )
        assert args.port == 0 and args.workers == 4
        assert args.backend == "process"
        assert args.queue_limit == 8 and args.job_timeout == 30.0

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestCommands:
    def test_workloads_lists_names(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out and "clustered" in out

    def test_kcenter_runs(self, capsys):
        rc = main(
            [
                "kcenter",
                "--workload",
                "uniform",
                "--n",
                "120",
                "--k",
                "4",
                "--machines",
                "3",
                "--epsilon",
                "0.3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "radius" in out and "MPC statistics" in out

    def test_diversity_runs(self, capsys):
        rc = main(
            [
                "diversity",
                "--workload",
                "uniform",
                "--n",
                "100",
                "--k",
                "4",
                "--machines",
                "3",
                "--epsilon",
                "0.3",
            ]
        )
        assert rc == 0
        assert "diversity" in capsys.readouterr().out

    def test_supplier_runs(self, capsys):
        rc = main(
            [
                "supplier",
                "--customers",
                "80",
                "--suppliers",
                "30",
                "--k",
                "3",
                "--machines",
                "3",
                "--epsilon",
                "0.3",
            ]
        )
        assert rc == 0
        assert "opened" in capsys.readouterr().out

    def test_mis_runs(self, capsys):
        rc = main(
            [
                "mis",
                "--workload",
                "uniform",
                "--n",
                "100",
                "--tau",
                "1.0",
                "--k",
                "8",
                "--machines",
                "3",
            ]
        )
        assert rc == 0
        assert "terminated_via" in capsys.readouterr().out

    def test_dominating_runs(self, capsys):
        rc = main(
            [
                "dominating",
                "--workload",
                "uniform",
                "--n",
                "120",
                "--tau",
                "1.5",
                "--machines",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "packing LB" in out

    def test_compare_runs(self, capsys):
        rc = main(
            [
                "compare",
                "--workload",
                "uniform",
                "--n",
                "150",
                "--k",
                "4",
                "--machines",
                "3",
                "--epsilon",
                "0.4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Malkomes" in out and "Gonzalez" in out

    def test_json_out(self, capsys, tmp_path):
        out = tmp_path / "result.json"
        rc = main(
            [
                "kcenter",
                "--workload",
                "uniform",
                "--n",
                "100",
                "--k",
                "3",
                "--machines",
                "2",
                "--epsilon",
                "0.5",
                "--json-out",
                str(out),
            ]
        )
        assert rc == 0
        import json

        doc = json.loads(out.read_text())
        assert doc["meta"]["command"] == "kcenter"
        assert doc["rows"][0]["k"] == 3
        assert "rounds" in doc["meta"]["stats"]

    def test_trace_runs(self, capsys):
        rc = main(
            [
                "trace",
                "--algorithm",
                "mis",
                "--workload",
                "uniform",
                "--n",
                "120",
                "--tau",
                "1.0",
                "--k",
                "6",
                "--machines",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "message tag" in out and "heaviest" in out

    def test_block_partition_option(self, capsys):
        rc = main(
            [
                "kcenter",
                "--workload",
                "uniform",
                "--n",
                "80",
                "--k",
                "3",
                "--machines",
                "2",
                "--partition",
                "block",
                "--epsilon",
                "0.5",
            ]
        )
        assert rc == 0

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_output_identical(self, capsys, backend):
        """The printed solution table must not depend on the backend."""
        argv = [
            "kcenter",
            "--workload", "uniform",
            "--n", "120",
            "--k", "4",
            "--machines", "3",
            "--epsilon", "0.3",
            "--backend", backend,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        baseline = main(argv[:-2])  # default serial
        assert baseline == 0
        assert capsys.readouterr().out == out
