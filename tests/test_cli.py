"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kcenter_defaults(self):
        args = build_parser().parse_args(["kcenter"])
        assert args.workload == "gaussian" and args.k == 10
        assert args.machines == 8 and args.partition == "random"

    def test_mis_requires_tau(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mis"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kcenter", "--workload", "bogus"])

    def test_constants_choices(self):
        args = build_parser().parse_args(["kcenter", "--constants", "paper"])
        assert args.constants == "paper"

    def test_backend_default_and_choices(self):
        args = build_parser().parse_args(["kcenter"])
        assert args.backend == "serial"
        args = build_parser().parse_args(["diversity", "--backend", "process"])
        assert args.backend == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kcenter", "--backend", "gpu"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8000
        assert args.workers == 2 and args.backend == "serial"
        assert args.queue_limit == 64 and args.job_timeout is None

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--backend", "process",
             "--queue-limit", "8", "--job-timeout", "30"]
        )
        assert args.port == 0 and args.workers == 4
        assert args.backend == "process"
        assert args.queue_limit == 8 and args.job_timeout == 30.0

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestCommands:
    def test_workloads_lists_names(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out and "clustered" in out

    def test_kcenter_runs(self, capsys):
        rc = main(
            [
                "kcenter",
                "--workload",
                "uniform",
                "--n",
                "120",
                "--k",
                "4",
                "--machines",
                "3",
                "--epsilon",
                "0.3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "radius" in out and "MPC statistics" in out

    def test_diversity_runs(self, capsys):
        rc = main(
            [
                "diversity",
                "--workload",
                "uniform",
                "--n",
                "100",
                "--k",
                "4",
                "--machines",
                "3",
                "--epsilon",
                "0.3",
            ]
        )
        assert rc == 0
        assert "diversity" in capsys.readouterr().out

    def test_supplier_runs(self, capsys):
        rc = main(
            [
                "supplier",
                "--customers",
                "80",
                "--suppliers",
                "30",
                "--k",
                "3",
                "--machines",
                "3",
                "--epsilon",
                "0.3",
            ]
        )
        assert rc == 0
        assert "opened" in capsys.readouterr().out

    def test_mis_runs(self, capsys):
        rc = main(
            [
                "mis",
                "--workload",
                "uniform",
                "--n",
                "100",
                "--tau",
                "1.0",
                "--k",
                "8",
                "--machines",
                "3",
            ]
        )
        assert rc == 0
        assert "terminated_via" in capsys.readouterr().out

    def test_dominating_runs(self, capsys):
        rc = main(
            [
                "dominating",
                "--workload",
                "uniform",
                "--n",
                "120",
                "--tau",
                "1.5",
                "--machines",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "packing LB" in out

    def test_compare_runs(self, capsys):
        rc = main(
            [
                "compare",
                "--workload",
                "uniform",
                "--n",
                "150",
                "--k",
                "4",
                "--machines",
                "3",
                "--epsilon",
                "0.4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Malkomes" in out and "Gonzalez" in out

    def test_json_out(self, capsys, tmp_path):
        out = tmp_path / "result.json"
        rc = main(
            [
                "kcenter",
                "--workload",
                "uniform",
                "--n",
                "100",
                "--k",
                "3",
                "--machines",
                "2",
                "--epsilon",
                "0.5",
                "--json-out",
                str(out),
            ]
        )
        assert rc == 0
        import json

        doc = json.loads(out.read_text())
        assert doc["meta"]["command"] == "kcenter"
        assert doc["rows"][0]["k"] == 3
        assert "rounds" in doc["meta"]["stats"]

    def test_trace_runs(self, capsys):
        rc = main(
            [
                "trace",
                "--algorithm",
                "mis",
                "--workload",
                "uniform",
                "--n",
                "120",
                "--tau",
                "1.0",
                "--k",
                "6",
                "--machines",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "message tag" in out and "heaviest" in out

    def test_block_partition_option(self, capsys):
        rc = main(
            [
                "kcenter",
                "--workload",
                "uniform",
                "--n",
                "80",
                "--k",
                "3",
                "--machines",
                "2",
                "--partition",
                "block",
                "--epsilon",
                "0.5",
            ]
        )
        assert rc == 0

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_output_identical(self, capsys, backend):
        """The printed solution table must not depend on the backend."""
        argv = [
            "kcenter",
            "--workload", "uniform",
            "--n", "120",
            "--k", "4",
            "--machines", "3",
            "--epsilon", "0.3",
            "--backend", backend,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        baseline = main(argv[:-2])  # default serial
        assert baseline == 0
        assert capsys.readouterr().out == out


class TestMetricsOut:
    ARGV = [
        "kcenter",
        "--workload", "uniform",
        "--n", "120",
        "--k", "4",
        "--machines", "3",
        "--epsilon", "0.3",
        "--seed", "7",
    ]

    def test_metrics_out_writes_snapshot(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(self.ARGV + ["--metrics-out", str(path)]) == 0
        assert f"wrote metrics snapshot to {path}" in capsys.readouterr().out
        snap = json.loads(path.read_text())
        counters = snap["counters"]
        assert counters["repro_mpc_rounds_total"][""] > 0
        assert counters["repro_mpc_words_total"][""] > 0
        assert counters["repro_solver_runs_total"]['algorithm="kcenter"'] == 1
        assert 'algorithm="kcenter"' in snap["histograms"]["repro_solver_latency_seconds"]
        assert any(k.startswith('phase="kcenter/') for k in
                   counters["repro_phase_rounds_total"])

    def test_metrics_out_deterministic(self, capsys, tmp_path):
        """Acceptance: two seeded executions dump identical counters.

        Only the counters section is compared — histogram duration
        observations are wall-clock and legitimately differ.
        """
        import json

        snaps = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main(self.ARGV + ["--metrics-out", str(path)]) == 0
            capsys.readouterr()
            snaps.append(json.loads(path.read_text()))
        assert snaps[0]["counters"] == snaps[1]["counters"]

    def test_metrics_out_scopes_to_one_invocation(self, capsys, tmp_path):
        """The registry resets at command start: counts don't accumulate
        across invocations within one process."""
        import json

        first, second = tmp_path / "1.json", tmp_path / "2.json"
        assert main(self.ARGV + ["--metrics-out", str(first)]) == 0
        assert main(self.ARGV + ["--metrics-out", str(second)]) == 0
        capsys.readouterr()
        a = json.loads(first.read_text())["counters"]
        b = json.loads(second.read_text())["counters"]
        assert a["repro_solver_runs_total"]['algorithm="kcenter"'] == 1
        assert b["repro_solver_runs_total"]['algorithm="kcenter"'] == 1

    def test_metrics_out_on_mis_command(self, capsys, tmp_path):
        """Commands that bypass the facade attach the observer themselves."""
        import json

        path = tmp_path / "mis.json"
        rc = main([
            "mis",
            "--workload", "uniform",
            "--n", "100",
            "--tau", "0.8",
            "--k", "10",
            "--machines", "3",
            "--metrics-out", str(path),
        ])
        assert rc == 0
        capsys.readouterr()
        counters = json.loads(path.read_text())["counters"]
        assert counters["repro_mpc_rounds_total"][""] > 0


class TestSweepCommand:
    def test_sweep_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.solvers == ["kcenter", "gonzalez", "malkomes"]
        assert args.ks == [4, 8] and args.epsilons == [0.1]
        assert args.url is None and args.workers == 2

    def test_sweep_rejects_bad_axis_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--partitions", "bogus"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--workload", "bogus"])

    def test_sweep_runs_and_writes_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        rc = main([
            "sweep",
            "--workload", "gaussian",
            "--n", "64",
            "--solvers", "gonzalez", "malkomes",
            "--ks", "3", "4",
            "--json-out", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells submitted" in out
        assert "recommendation:" in out
        assert "ratio (lower = better)" in out
        report = json.loads(path.read_text())
        assert sorted(report["ranking"]) == [0, 1, 2, 3]
        assert report["recommendation"]["cell"] == report["ranking"][0]

    def test_sweep_unknown_solver_fails_loudly(self, capsys):
        with pytest.raises(ValueError, match="unknown solver"):
            main([
                "sweep",
                "--workload", "gaussian",
                "--n", "32",
                "--solvers", "bogus",
                "--ks", "3",
            ])


class TestStreamCommand:
    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.algorithm == "kcenter" and args.appends == 3
        assert args.n == 240 and args.k == 6
        assert args.url is None and args.backend == "serial"

    def test_stream_rejects_bad_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--algorithm", "bogus"])

    def test_stream_runs_and_writes_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "stream.json"
        rc = main([
            "stream",
            "--n", "120",
            "--appends", "2",
            "--k", "4",
            "--json-out", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 versions (2 appends)" in out
        assert "warm" in out and "cold" in out
        report = json.loads(path.read_text())
        versions = report["versions"]
        assert [v["version"] for v in versions] == [0, 1, 2]
        assert versions[0]["warm"] is False and versions[0]["drift"] is None
        assert versions[2]["warm"] is True
        assert versions[2]["drift"]["appended"] == 40
        assert versions[2]["n"] == 120

    def test_stream_report_deterministic_across_runs(self, capsys, tmp_path):
        import json

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([
                "stream", "--n", "120", "--appends", "2", "--k", "4",
                "--json-out", str(path),
            ]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
