"""The solver facade must be a thin veneer: same seed ⇒ exactly the
results of the hand-assembled legacy entry points, on every backend."""

import numpy as np
import pytest

from repro import (
    CoresetResult,
    EuclideanMetric,
    ManhattanMetric,
    MPCCluster,
    build_cluster,
    make_executor,
    make_metric,
    mpc_diversity,
    mpc_kcenter,
    mpc_kcenter_coreset,
    mpc_ksupplier,
    solve_diversity,
    solve_kcenter,
    solve_ksupplier,
)
from repro.mpc.executor import ProcessExecutor, SerialExecutor, ThreadedExecutor
from repro.mpc.partition import get_partitioner

M, SEED = 4, 11


@pytest.fixture(scope="module")
def pts():
    return np.random.default_rng(5).normal(scale=3.0, size=(350, 3))


def _legacy_cluster(pts, seed=SEED, machines=M):
    """Assemble the cluster the way the CLI always has: seeded random
    partition, serial executor."""
    metric = EuclideanMetric(pts)
    parts = get_partitioner("random")(metric.n, machines, np.random.default_rng(seed))
    return MPCCluster(metric, machines, partition=parts, seed=seed)


class TestFacadeLegacyParity:
    def test_kcenter(self, pts):
        res = solve_kcenter(pts, 8, machines=M, seed=SEED, eps=0.15)
        legacy = mpc_kcenter(_legacy_cluster(pts), 8, epsilon=0.15)
        assert res.radius == legacy.radius
        assert np.array_equal(np.sort(res.centers), np.sort(legacy.centers))
        assert res.stats == legacy.stats

    def test_diversity(self, pts):
        res = solve_diversity(pts, 7, machines=M, seed=SEED, eps=0.15)
        legacy = mpc_diversity(_legacy_cluster(pts), 7, epsilon=0.15)
        assert res.diversity == legacy.diversity
        assert np.array_equal(np.sort(res.ids), np.sort(legacy.ids))

    def test_ksupplier(self, pts):
        cust, sup = np.arange(250), np.arange(250, 350)
        res = solve_ksupplier(
            pts, cust, sup, 5, machines=M, seed=SEED, eps=0.15
        )
        legacy = mpc_ksupplier(_legacy_cluster(pts), cust, sup, 5, epsilon=0.15)
        assert res.radius == legacy.radius
        assert np.array_equal(np.sort(res.suppliers), np.sort(legacy.suppliers))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_match_serial(self, pts, backend):
        serial = solve_kcenter(pts, 8, machines=M, seed=SEED)
        other = solve_kcenter(pts, 8, machines=M, seed=SEED, backend=backend)
        assert serial.radius == other.radius
        assert np.array_equal(np.sort(serial.centers), np.sort(other.centers))
        assert serial.stats == other.stats

    def test_prebuilt_cluster_path(self, pts):
        cluster = build_cluster(pts, machines=M, seed=SEED)
        res = solve_kcenter(k=8, cluster=cluster)
        assert res.radius == solve_kcenter(pts, 8, machines=M, seed=SEED).radius

    def test_cluster_and_points_is_an_error(self, pts):
        cluster = build_cluster(pts, machines=M, seed=SEED)
        with pytest.raises(ValueError, match="cluster"):
            solve_kcenter(pts, 8, cluster=cluster)


class TestAssemblyHelpers:
    def test_make_metric_names(self, pts):
        assert isinstance(make_metric(pts, "euclidean"), EuclideanMetric)
        assert isinstance(make_metric(pts, "manhattan"), ManhattanMetric)
        assert isinstance(make_metric(pts, "L1"), ManhattanMetric)  # case-folded

    def test_make_metric_instance_passthrough(self, pts):
        metric = EuclideanMetric(pts)
        assert make_metric(None, metric) is metric
        with pytest.raises(ValueError, match="not both"):
            make_metric(pts, metric)

    def test_make_metric_rejections(self, pts):
        with pytest.raises(ValueError, match="unknown metric"):
            make_metric(pts, "no-such")
        with pytest.raises(ValueError, match="needs a points array"):
            make_metric(None, "euclidean")

    def test_make_executor(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread"), ThreadedExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        ex = SerialExecutor()
        assert make_executor(ex) is ex

    def test_build_cluster_defaults(self, pts):
        cluster = build_cluster(pts)
        assert cluster.m == 8  # DEFAULT_MACHINES
        tiny = build_cluster(pts[:3])
        assert tiny.m == 3  # capped at n

    def test_metric_name_changes_solution_space(self, pts):
        r2 = solve_kcenter(pts, 8, machines=M, seed=SEED).radius
        r1 = solve_kcenter(pts, 8, metric="manhattan", machines=M, seed=SEED).radius
        assert r1 != r2  # different geometry actually reached the solver


class TestCoresetResult:
    def test_tuple_unpacking_back_compat(self, pts):
        cluster = build_cluster(pts, machines=M, seed=SEED)
        result = mpc_kcenter_coreset(cluster, 6)
        Q, r = result  # the historical calling convention
        assert isinstance(result, CoresetResult)
        assert np.array_equal(Q, result.ids)
        assert r == result.value
        assert len(result) == 2

    def test_fields(self, pts):
        cluster = build_cluster(pts, machines=M, seed=SEED)
        result = mpc_kcenter_coreset(cluster, 6)
        assert result.kind == "kcenter"
        assert result.k == 6
        assert result.size == 6
        assert result.rounds > 0
        assert result.to_dict()["value"] == result.value

    def test_diversity_kind(self, pts):
        from repro import mpc_diversity_coreset

        cluster = build_cluster(pts, machines=M, seed=SEED)
        result = mpc_diversity_coreset(cluster, 6)
        assert result.kind == "diversity"
        ids, value = result
        assert ids.size == 6 and value > 0
