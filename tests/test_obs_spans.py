"""Tests for phase spans: nesting, counter deltas, and reconciliation."""

import numpy as np
import pytest

from repro.core.kcenter import mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.metric.oracle import CountingOracle
from repro.mpc.cluster import MPCCluster
from repro.obs import Recorder


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(150, 2)))


class TestSpanMechanics:
    def test_nesting_parent_and_depth(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        rec = Recorder.attach(cluster)
        with cluster.obs.span("outer") as outer:
            assert cluster.obs.current_span is outer
            assert cluster.obs.span_depth == 1
            with cluster.obs.span("inner") as inner:
                assert inner.parent_uid == outer.uid
                assert inner.depth == 1
        assert cluster.obs.current_span is None
        # children close before parents
        assert [s.name for s in rec.log.spans] == ["inner", "outer"]

    def test_attrs_recorded(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        with cluster.obs.span("phase", tau=0.5, ladder_index=3) as s:
            pass
        assert s.attrs == {"tau": 0.5, "ladder_index": 3}

    def test_counter_deltas(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        with cluster.obs.span("comm") as s:
            cluster.send(0, 1, np.zeros(10), tag="x")
            cluster.step()
            cluster.step()
        assert s.rounds == 2
        assert s.words == 10
        assert s.messages == 1
        assert s.duration_s >= 0.0

    def test_exception_closes_span(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        rec = Recorder.attach(cluster)
        with pytest.raises(RuntimeError):
            with cluster.obs.span("doomed"):
                raise RuntimeError("boom")
        assert cluster.obs.span_depth == 0
        assert rec.log.spans[0].name == "doomed"
        assert rec.log.spans[0].end_time is not None

    def test_oracle_counters_wired(self, metric):
        oracle = CountingOracle(metric)
        cluster = MPCCluster(oracle, 3, seed=0)
        with cluster.obs.span("probe") as s:
            oracle.pairwise([0], np.arange(10))
        assert s.oracle_calls == 1
        assert s.oracle_evaluations == 10

    def test_plain_metric_reports_zero_oracle_activity(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        with cluster.obs.span("probe") as s:
            metric.pairwise([0], np.arange(10))
        assert s.oracle_calls == 0
        assert s.oracle_evaluations == 0

    def test_covers_round_semantics(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        cluster.step()  # round 1, outside any span
        with cluster.obs.span("s") as s:
            cluster.step()  # round 2
        assert not s.covers_round(1)
        assert s.covers_round(2)
        assert not s.covers_round(3)


class TestReconciliation:
    def test_kcenter_roots_reconcile_with_cluster_stats(self, metric):
        oracle = CountingOracle(metric)
        cluster = MPCCluster(oracle, 4, seed=3)
        rec = Recorder.attach(cluster)
        mpc_kcenter(cluster, k=6, epsilon=0.5)

        totals = rec.log.root_totals()
        summary = cluster.stats.summary()
        assert totals["rounds"] == summary["rounds"]
        assert totals["words"] == summary["total_words"]
        assert totals["oracle_calls"] == oracle.calls
        assert totals["oracle_evaluations"] == oracle.evaluations

    def test_kcenter_round_coverage_meets_bar(self, metric):
        cluster = MPCCluster(metric, 4, seed=3)
        rec = Recorder.attach(cluster)
        mpc_kcenter(cluster, k=6, epsilon=0.5)
        assert rec.log.round_coverage() >= 0.95

    def test_expected_phase_names_present(self, metric):
        cluster = MPCCluster(metric, 4, seed=3)
        rec = Recorder.attach(cluster)
        mpc_kcenter(cluster, k=6, epsilon=0.5)
        names = {row["phase"] for row in rec.log.phase_summary()}
        assert {"kcenter/run", "kcenter/coreset", "kcenter/search", "mis/run"} <= names
        # the run root is a single span at depth 0
        run_row = next(r for r in rec.log.phase_summary() if r["phase"] == "kcenter/run")
        assert run_row["count"] == 1
        assert run_row["depth"] == 0

    def test_phase_summary_is_inclusive(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        rec = Recorder.attach(cluster)
        with cluster.obs.span("parent"):
            with cluster.obs.span("child"):
                cluster.send(0, 1, np.zeros(5), tag="x")
                cluster.step()
        rows = {r["phase"]: r for r in rec.log.phase_summary()}
        assert rows["parent"]["words"] == 5  # child's traffic counted in parent
        assert rows["child"]["words"] == 5

    def test_detach_keeps_log_usable(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        rec = Recorder.attach(cluster)
        with cluster.obs.span("a"):
            cluster.step()
        rec.detach()
        with cluster.obs.span("b"):
            cluster.step()
        assert [s.name for s in rec.log.spans] == ["a"]
