"""Shared-memory point-matrix backing (:mod:`repro.mpc.shm`)."""

import numpy as np
import pytest

from repro.metric.euclidean import EuclideanMetric
from repro.metric.matrix_metric import MatrixMetric
from repro.metric.oracle import CountingOracle
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import ProcessExecutor
from repro.mpc.shm import SharedArray, share_metric_points

try:
    from multiprocessing import shared_memory  # noqa: F401
except ImportError:  # pragma: no cover
    pytest.skip("shared memory unavailable", allow_module_level=True)


class TestSharedArray:
    def test_roundtrip_and_readonly(self):
        src = np.arange(12.0).reshape(4, 3)
        handle = SharedArray(src)
        try:
            assert np.array_equal(handle.array, src)
            assert handle.array.dtype == src.dtype
            with pytest.raises(ValueError):
                handle.array[0, 0] = 99.0
        finally:
            handle._close()

    def test_release_keeps_mapping_alive(self):
        handle = SharedArray(np.ones((8, 2)))
        view = handle.array
        handle.release()
        handle.release()  # idempotent
        assert view.sum() == 16.0  # the view outlives the unlink


class TestShareMetricPoints:
    def test_small_arrays_stay_private(self):
        metric = EuclideanMetric(np.random.default_rng(0).normal(size=(50, 2)))
        assert share_metric_points(metric) is None  # below MIN_SHARED_BYTES

    def test_rebinds_buffer_transparently(self):
        rng = np.random.default_rng(0)
        metric = EuclideanMetric(rng.normal(size=(200, 2)))
        before = metric.pairwise(np.arange(10), np.arange(10, 20)).copy()
        handle = share_metric_points(metric, min_bytes=0)
        try:
            assert handle is not None
            assert np.array_equal(
                metric.pairwise(np.arange(10), np.arange(10, 20)), before
            )
            assert metric.points.data.base is not None  # buffer moved
        finally:
            handle.release()

    def test_unwraps_oracle_chain(self):
        metric = CountingOracle(
            EuclideanMetric(np.random.default_rng(1).normal(size=(100, 2)))
        )
        handle = share_metric_points(metric, min_bytes=0)
        try:
            assert handle is not None
        finally:
            handle.release()

    def test_matrix_metric_has_no_point_buffer(self):
        D = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert share_metric_points(MatrixMetric(D), min_bytes=0) is None


class TestExecutorIntegration:
    def test_bind_on_large_metric_and_shutdown(self):
        rng = np.random.default_rng(2)
        # 70k × 2 float64 ≈ 1.1 MB > MIN_SHARED_BYTES → shared
        metric = EuclideanMetric(rng.normal(size=(70_000, 2)))
        ex = ProcessExecutor(max_workers=2)
        if ex.fallback_reason:
            pytest.skip(ex.fallback_reason)
        MPCCluster(metric, 4, seed=0, executor=ex)
        assert len(ex._shared) == 1
        assert metric.points.data.base is not None
        d = metric.distance(0, 1)
        ex.shutdown()
        assert ex._shared == []
        assert metric.distance(0, 1) == d  # mapping still usable
