"""Tests for the trace exporters and the CLI wiring around them."""

import json

import pytest

from repro.cli import main
from repro.core.kcenter import mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.obs import (
    Recorder,
    export_run,
    phase_report,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import ROUND_TID, SPAN_TID


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(120, 2)))


@pytest.fixture
def recorded(metric):
    cluster = MPCCluster(metric, 4, seed=1)
    rec = Recorder.attach(cluster)
    res = mpc_kcenter(cluster, k=5, epsilon=0.5)
    return cluster, rec.log, res


class TestJsonl:
    def test_round_trip_field_equality(self, recorded, tmp_path):
        _, log, _ = recorded
        path = write_jsonl(log, tmp_path / "run.jsonl")
        back = read_jsonl(path)
        assert back.meta == log.meta
        assert len(back.spans) == len(log.spans)
        assert len(back.rounds) == len(log.rounds)
        assert len(back.messages) == len(log.messages)
        for a, b in zip(log.spans, back.spans):
            assert a.to_dict() == b.to_dict()
        for a, b in zip(log.rounds, back.rounds):
            assert a.to_dict() == b.to_dict()
        for a, b in zip(log.messages, back.messages):
            assert a.to_dict() == b.to_dict()

    def test_round_trip_preserves_aggregates(self, recorded, tmp_path):
        _, log, _ = recorded
        back = read_jsonl(write_jsonl(log, tmp_path / "run.jsonl"))
        assert back.phase_summary() == log.phase_summary()
        assert back.root_totals() == log.root_totals()
        assert back.round_coverage() == log.round_coverage()

    def test_lines_are_type_tagged(self, recorded, tmp_path):
        _, log, _ = recorded
        path = write_jsonl(log, tmp_path / "run.jsonl")
        types = [json.loads(line)["type"] for line in path.read_text().splitlines()]
        assert types[0] == "meta"
        assert set(types) == {"meta", "span", "round", "message"}


class TestChromeTrace:
    def test_schema(self, recorded):
        _, log, _ = recorded
        doc = to_chrome_trace(log)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["machines"] == 4
        for ev in doc["traceEvents"]:
            assert ev["ph"] in {"M", "X", "C"}
            if ev["ph"] == "X":
                assert ev["ts"] >= 0
                assert ev["dur"] > 0
                assert ev["tid"] in {SPAN_TID, ROUND_TID}

    def test_span_and_round_tracks(self, recorded):
        _, log, _ = recorded
        doc = to_chrome_trace(log)
        spans = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
        rounds = [e for e in doc["traceEvents"] if e.get("cat") == "round" and e["ph"] == "X"]
        assert len(spans) == len(log.spans)
        assert len(rounds) == len(log.rounds)
        names = {e["name"] for e in spans}
        assert "kcenter/run" in names
        run = next(e for e in spans if e["name"] == "kcenter/run")
        assert run["args"]["rounds"] == log.root_totals()["rounds"]
        assert run["args"]["words"] == log.root_totals()["words"]

    def test_write_is_valid_json(self, recorded, tmp_path):
        _, log, _ = recorded
        path = write_chrome_trace(log, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_export_run_dispatch(self, recorded, tmp_path):
        _, log, _ = recorded
        p1 = export_run(log, tmp_path / "a.json", fmt="chrome")
        assert "traceEvents" in json.loads(p1.read_text())
        p2 = export_run(log, tmp_path / "b.jsonl", fmt="jsonl")
        assert read_jsonl(p2).spans
        with pytest.raises(ValueError, match="unknown trace format"):
            export_run(log, tmp_path / "c.bin", fmt="protobuf")


class TestPhaseReport:
    def test_report_contains_phases_and_coverage(self, recorded):
        _, log, _ = recorded
        text = phase_report(log)
        assert "kcenter/run" in text
        assert "span coverage:" in text
        assert f"{len(log.rounds)} observed rounds" in text


class TestCliTracing:
    def test_cli_chrome_trace_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        main([
            "kcenter", "--n", "200", "--k", "5", "--machines", "4",
            "--seed", "3", "--trace-out", str(out), "--report", "phases",
        ])
        captured = capsys.readouterr().out
        assert "per-phase breakdown" in captured
        assert "kcenter/run" in captured
        doc = json.loads(out.read_text())
        span_events = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
        assert span_events
        # acceptance: spans cover >= 95% of observed rounds
        cov = float(captured.split("span coverage:")[1].split("%")[0])
        assert cov >= 95.0

    def test_cli_jsonl_trace(self, tmp_path):
        out = tmp_path / "run.jsonl"
        main([
            "kcenter", "--n", "200", "--k", "5", "--machines", "4",
            "--seed", "3", "--trace-out", str(out), "--trace-format", "jsonl",
        ])
        log = read_jsonl(out)
        assert log.spans and log.rounds
        assert log.round_coverage() >= 0.95

    def test_cli_json_result_gains_phase_breakdown(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        result = tmp_path / "result.json"
        main([
            "kcenter", "--n", "200", "--k", "5", "--machines", "4",
            "--seed", "3", "--trace-out", str(trace), "--trace-format", "jsonl",
            "--json-out", str(result),
        ])
        payload = json.loads(result.read_text())
        phases = payload["meta"]["phases"]
        assert any(row["phase"] == "kcenter/run" for row in phases)
