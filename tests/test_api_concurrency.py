"""Concurrent facade use: no shared RNG or oracle-counter state.

The job service runs solver calls on a worker-thread pool, so the
facade must be reentrant: two threads solving the same points with
different seeds have to produce exactly the results each would produce
alone, and per-run CountingOracle ledgers must not bleed into each
other.  Each ``solve_*``/``build_cluster`` call builds its own cluster,
machines, and RNG streams, so the only shared object is the read-only
point data — these tests pin that property.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import build_cluster, solve_diversity, solve_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.metric.oracle import CountingOracle


@pytest.fixture
def points():
    return np.random.default_rng(42).normal(scale=3.0, size=(250, 2))


def _solo_run(points, seed):
    """Reference: one solver call alone in the main thread."""
    oracle = CountingOracle(EuclideanMetric(points))
    cluster = build_cluster(metric=oracle, machines=4, seed=seed)
    res = solve_kcenter(k=6, eps=0.2, cluster=cluster)
    return res, oracle


class TestConcurrentFacade:
    def test_two_threads_different_seeds_match_solo_runs(self, points):
        seeds = [3, 17]
        expected = {s: _solo_run(points, s) for s in seeds}

        def worker(seed):
            return seed, _solo_run(points, seed)

        with ThreadPoolExecutor(max_workers=2) as pool:
            concurrent = dict(pool.map(worker, seeds))

        for seed in seeds:
            exp_res, exp_oracle = expected[seed]
            got_res, got_oracle = concurrent[seed]
            # results: bit-identical to the single-threaded reference
            assert got_res.radius == exp_res.radius
            assert np.array_equal(got_res.centers, exp_res.centers)
            assert got_res.rounds == exp_res.rounds
            # oracle ledger: each run counted only its own work
            assert got_oracle.calls == exp_oracle.calls
            assert got_oracle.evaluations == exp_oracle.evaluations

    def test_many_threads_same_seed_agree(self, points):
        """Same spec on 4 threads at once: four bit-identical answers."""

        def worker(_):
            return solve_kcenter(points, k=5, eps=0.25, seed=7, machines=4)

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(worker, range(4)))
        base = results[0]
        for res in results[1:]:
            assert res.radius == base.radius
            assert np.array_equal(res.centers, base.centers)

    def test_shared_base_metric_concurrent_solvers(self, points):
        """The service pattern: one registered dataset metric, two jobs
        with their own CountingOracle wrappers running concurrently —
        the wrappers stay independent."""
        base = EuclideanMetric(points)

        def worker(seed):
            oracle = CountingOracle(base)
            cluster = build_cluster(metric=oracle, machines=4, seed=seed)
            res = solve_kcenter(k=6, eps=0.2, cluster=cluster)
            return res, oracle

        with ThreadPoolExecutor(max_workers=2) as pool:
            (res_a, oracle_a), (res_b, oracle_b) = list(pool.map(worker, [3, 17]))

        exp_a, exp_oracle_a = _solo_run(points, 3)
        exp_b, exp_oracle_b = _solo_run(points, 17)
        assert res_a.radius == exp_a.radius
        assert res_b.radius == exp_b.radius
        assert oracle_a.evaluations == exp_oracle_a.evaluations
        assert oracle_b.evaluations == exp_oracle_b.evaluations

    def test_concurrent_diversity_and_kcenter(self, points):
        """Different algorithms interleaved on the same data."""
        with ThreadPoolExecutor(max_workers=2) as pool:
            fut_kc = pool.submit(solve_kcenter, points, k=6, eps=0.2, seed=5)
            fut_div = pool.submit(solve_diversity, points, k=6, eps=0.2, seed=5)
            kc, div = fut_kc.result(), fut_div.result()
        assert kc.radius == solve_kcenter(points, k=6, eps=0.2, seed=5).radius
        assert div.diversity == solve_diversity(points, k=6, eps=0.2, seed=5).diversity
