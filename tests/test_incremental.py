"""Tests for incremental datasets: append chains in the registry.

Covers the ISSUE acceptance bar for the dataset side of streaming:
chained fingerprints (content-addressed, parent-linked, idempotent),
the append-eligibility and metric-compatibility errors as typed
exceptions, chain traversal order, and durability — a chain built
against a SQLite state dir must reopen intact (points, base_n, parent
links) in a fresh registry, as after a process restart.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.datasets import (
    DatasetRegistry,
    MetricMismatchError,
    NotAppendableError,
    UnknownDatasetError,
)
from repro.service.store import open_stores


@pytest.fixture
def batches(rng):
    return [rng.normal(scale=3.0, size=(40, 2)) for _ in range(3)]


@pytest.fixture
def registry():
    return DatasetRegistry()


class TestAppendChains:
    def test_append_mints_chained_version(self, registry, batches):
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1])
        assert child.id != base.id
        assert child.kind == "append"
        assert child.n == 80
        assert child.parent == base.id
        assert child.base_n == 40
        assert child.params["parent_fingerprint"] == base.fingerprint
        assert child.params["depth"] == 1

    def test_grandchild_depth_and_base_n(self, registry, batches):
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1])
        grand = registry.append(child.id, batches[2])
        assert grand.parent == child.id
        assert grand.base_n == 80 and grand.n == 120
        assert grand.params["depth"] == 2

    def test_append_is_idempotent(self, registry, batches):
        base = registry.register_points(batches[0])
        first = registry.append(base.id, batches[1])
        second = registry.append(base.id, batches[1])
        assert first.id == second.id
        assert first.fingerprint == second.fingerprint

    def test_chain_fingerprint_differs_from_flat_registration(
        self, registry, batches
    ):
        """A chained version and a flat registration of the identical
        combined points must never collide — the cache would otherwise
        cross-serve warm-chain results to flat datasets."""
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1])
        flat = registry.register_points(np.vstack([batches[0], batches[1]]))
        assert child.fingerprint != flat.fingerprint
        assert child.id != flat.id
        # ...but the materialized points are the same bytes
        np.testing.assert_array_equal(
            child.metric.points.data, flat.metric.points.data
        )

    def test_chain_returns_root_first(self, registry, batches):
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1])
        grand = registry.append(child.id, batches[2])
        assert [d.id for d in registry.chain(grand.id)] == [
            base.id,
            child.id,
            grand.id,
        ]
        assert [d.id for d in registry.chain(base.id)] == [base.id]

    def test_single_point_delta_reshaped(self, registry, batches):
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1][0])
        assert child.n == 41

    def test_combined_points_order(self, registry, batches):
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1])
        np.testing.assert_array_equal(
            child.metric.points.data,
            np.vstack([batches[0], batches[1]]),
        )


class TestAppendErrors:
    def test_unknown_dataset(self, registry, batches):
        with pytest.raises(UnknownDatasetError):
            registry.append("ds-missing", batches[0])

    def test_workload_not_appendable(self, registry, batches):
        ds = registry.register_workload("gaussian", 50, seed=0)
        with pytest.raises(NotAppendableError):
            registry.append(ds.id, batches[0])

    def test_metric_mismatch(self, registry, batches):
        base = registry.register_points(batches[0], metric="euclidean")
        with pytest.raises(MetricMismatchError):
            registry.append(base.id, batches[1], metric="manhattan")

    def test_matching_metric_accepted_explicitly(self, registry, batches):
        base = registry.register_points(batches[0], metric="manhattan")
        child = registry.append(base.id, batches[1], metric="manhattan")
        assert child.params["metric"] == "manhattan"

    def test_dimension_mismatch(self, registry, batches):
        base = registry.register_points(batches[0])
        with pytest.raises(ValueError, match="dimension"):
            registry.append(base.id, np.zeros((5, 3)))

    def test_empty_delta(self, registry, batches):
        base = registry.register_points(batches[0])
        with pytest.raises(ValueError):
            registry.append(base.id, np.zeros((0, 2)))

    def test_errors_are_value_errors(self):
        # the HTTP layer relies on both being ValueError subclasses so
        # unhandled cases still map to a 4xx envelope, never a 500
        assert issubclass(MetricMismatchError, ValueError)
        assert issubclass(NotAppendableError, ValueError)


class TestDurability:
    def test_chain_reopens_from_sqlite(self, tmp_path, batches):
        state = str(tmp_path / "state")
        stores = open_stores(state)
        registry = DatasetRegistry(stores.datasets)
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1])
        grand = registry.append(child.id, batches[2])

        # fresh process: same state dir, empty in-memory caches
        reopened = DatasetRegistry(open_stores(state).datasets)
        got = reopened.get(grand.id)
        assert got.fingerprint == grand.fingerprint
        assert got.base_n == 80 and got.parent == child.id
        np.testing.assert_array_equal(
            got.metric.points.data, np.vstack(batches)
        )
        assert [d.id for d in reopened.chain(grand.id)] == [
            base.id,
            child.id,
            grand.id,
        ]

    def test_append_continues_reopened_chain(self, tmp_path, batches, rng):
        state = str(tmp_path / "state")
        stores = open_stores(state)
        registry = DatasetRegistry(stores.datasets)
        base = registry.register_points(batches[0])
        child = registry.append(base.id, batches[1])

        reopened = DatasetRegistry(open_stores(state).datasets)
        grand = reopened.append(child.id, batches[2])
        assert grand.base_n == 80 and grand.n == 120
        assert grand.params["parent_fingerprint"] == child.fingerprint
