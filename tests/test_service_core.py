"""Unit tests for the service core: datasets, specs, cache, job manager."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import solve_kcenter
from repro.service import (
    DatasetRegistry,
    JobManager,
    JobSpec,
    JobState,
    QueueFullError,
    ResultCache,
    UnknownJobError,
)
from repro.service.datasets import UnknownDatasetError
from repro.workloads.registry import (
    fingerprint_metric,
    fingerprint_points,
    make_workload,
)


@pytest.fixture
def points(rng):
    return rng.normal(scale=3.0, size=(120, 2))


@pytest.fixture
def registry(points):
    reg = DatasetRegistry()
    reg.register_points(points)
    return reg


def make_manager(registry, **kwargs) -> JobManager:
    kwargs.setdefault("workers", 1)
    return JobManager(registry, **kwargs)


class TestFingerprinting:
    def test_same_bytes_same_fingerprint(self, points):
        assert fingerprint_points(points) == fingerprint_points(points.copy())

    def test_different_data_different_fingerprint(self, points):
        other = points.copy()
        other[0, 0] += 1e-12
        assert fingerprint_points(points) != fingerprint_points(other)

    def test_shape_is_part_of_identity(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(6.0).reshape(3, 2)
        assert fingerprint_points(a) != fingerprint_points(b)

    def test_metric_fingerprint_deterministic(self, points):
        from repro.metric.euclidean import EuclideanMetric

        a = fingerprint_metric(EuclideanMetric(points))
        b = fingerprint_metric(EuclideanMetric(points.copy()))
        assert a == b

    def test_metric_fingerprint_covers_distance_function(self, points):
        # same points, different metric => different fingerprint — the
        # cache must never serve a euclidean result to a manhattan job
        from repro.metric.euclidean import EuclideanMetric
        from repro.metric.lp import ChebyshevMetric, ManhattanMetric

        fps = {
            fingerprint_metric(EuclideanMetric(points)),
            fingerprint_metric(ManhattanMetric(points)),
            fingerprint_metric(ChebyshevMetric(points)),
        }
        assert len(fps) == 3

    def test_fingerprint_pierces_wrapper_chain(self, points):
        from repro.metric.euclidean import EuclideanMetric
        from repro.metric.oracle import CountingOracle

        wrapped = CountingOracle(EuclideanMetric(points))
        assert fingerprint_metric(wrapped) == fingerprint_metric(
            EuclideanMetric(points)
        )

    def test_workload_fingerprint_deterministic(self):
        a = make_workload("gaussian", 200, seed=5)
        b = make_workload("gaussian", 200, seed=5)
        c = make_workload("gaussian", 200, seed=6)
        assert a.fingerprint() == b.fingerprint() != c.fingerprint()


class TestDatasetRegistry:
    def test_register_points_roundtrip(self, points):
        reg = DatasetRegistry()
        ds = reg.register_points(points)
        assert ds.n == 120 and ds.kind == "points"
        assert reg.get(ds.id) is ds
        from repro.metric.euclidean import EuclideanMetric

        assert ds.fingerprint == fingerprint_metric(EuclideanMetric(points))

    def test_registration_idempotent(self, points):
        reg = DatasetRegistry()
        assert reg.register_points(points) is reg.register_points(points.copy())
        assert len(reg) == 1

    def test_same_points_different_metric_distinct_datasets(self, points):
        # regression: euclidean-then-manhattan registration must not
        # return the euclidean dataset (and its cached results)
        reg = DatasetRegistry()
        eu = reg.register_points(points, metric="euclidean")
        man = reg.register_points(points, metric="manhattan")
        assert eu.id != man.id and eu.fingerprint != man.fingerprint
        assert len(reg) == 2
        assert type(man.metric).__name__ == "ManhattanMetric"

    def test_register_workload(self):
        reg = DatasetRegistry()
        ds = reg.register_workload("gaussian", 150, seed=2)
        assert ds.kind == "workload" and ds.n == 150
        assert ds.params == {"workload": "gaussian", "n": 150, "seed": 2}

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            DatasetRegistry().register_workload("bogus", 100)

    def test_unknown_id_raises(self):
        with pytest.raises(UnknownDatasetError):
            DatasetRegistry().get("ds-nope")

    def test_describe_is_json_safe(self, points):
        import json

        ds = DatasetRegistry().register_points(points)
        json.dumps(ds.describe())


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(algorithm="kcenter", dataset="ds-x", k=5)
        assert spec.eps == 0.1 and spec.partition == "random"

    @pytest.mark.parametrize(
        "bad",
        [
            {"algorithm": "nope", "dataset": "d", "k": 1},
            {"algorithm": "kcenter", "dataset": "d", "k": 0},
            {"algorithm": "kcenter", "dataset": "d", "k": 1, "eps": 0},
            {"algorithm": "kcenter", "dataset": "d", "k": 1, "machines": 0},
            {"algorithm": "kcenter", "dataset": "d", "k": 1, "partition": "zigzag"},
            {"algorithm": "kcenter", "dataset": "d", "k": 1, "constants": "magic"},
            {"algorithm": "kcenter", "dataset": "d", "k": 1, "trim_mode": "zigzag"},
            {"algorithm": "kcenter", "dataset": "d", "k": 1, "timeout_s": -1},
            {"algorithm": "ksupplier", "dataset": "d", "k": 1},
            {"algorithm": "kcenter", "dataset": "d", "k": 1, "customers": [1]},
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            JobSpec(**bad)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job field"):
            JobSpec.from_dict({"algorithm": "kcenter", "dataset": "d", "kk": 3})

    def test_cache_key_excludes_backend_irrelevant_fields(self):
        a = JobSpec(algorithm="kcenter", dataset="d", k=5, timeout_s=10,
                    tags={"who": "a"})
        b = JobSpec(algorithm="kcenter", dataset="d", k=5, timeout_s=99,
                    tags={"who": "b"})
        assert a.cache_key("fp") == b.cache_key("fp")

    def test_cache_key_sensitive_to_params(self):
        a = JobSpec(algorithm="kcenter", dataset="d", k=5, seed=0)
        b = JobSpec(algorithm="kcenter", dataset="d", k=5, seed=1)
        assert a.cache_key("fp") != b.cache_key("fp")
        assert a.cache_key("fp") != a.cache_key("other-fp")


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k")[0] == {"v": 1}
        stats = cache.stats()
        assert stats["hits_total"] == 1 and stats["misses_total"] == 1
        assert stats["hit_ratio"] == 0.5

    def test_first_writer_wins(self):
        cache = ResultCache()
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})
        assert cache.get("k")[0] == {"v": 1}

    def test_fifo_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {})
        cache.put("b", {})
        cache.put("c", {})
        assert "a" not in cache and "b" in cache and "c" in cache


class TestJobManager:
    def test_job_completes_and_matches_direct_call(self, registry, points):
        manager = make_manager(registry).start()
        try:
            ds_id = registry.list()[0]["id"]
            job = manager.submit(
                JobSpec(algorithm="kcenter", dataset=ds_id, k=6, eps=0.2,
                        seed=3, machines=4)
            )
            job = manager.wait(job.id, timeout=60)
            assert job.state is JobState.DONE
            direct = solve_kcenter(points, k=6, eps=0.2, seed=3, machines=4)
            assert job.result["record"]["radius"] == direct.radius
            assert job.result["record"]["centers"] == [int(c) for c in direct.centers]
        finally:
            manager.stop()

    def test_cache_hit_skips_queue(self, registry):
        manager = make_manager(registry).start()
        try:
            ds_id = registry.list()[0]["id"]
            spec = dict(algorithm="kcenter", dataset=ds_id, k=4, eps=0.2)
            first = manager.wait(manager.submit(JobSpec(**spec)).id, timeout=60)
            second = manager.submit(JobSpec(**spec))
            assert second.cached and second.state is JobState.DONE
            assert second.result == first.result
            assert manager.cache.stats()["hits_total"] == 1
        finally:
            manager.stop()

    def test_queue_full_raises_and_keeps_no_record(self, registry):
        manager = make_manager(registry, queue_limit=2)  # workers NOT started
        ds_id = registry.list()[0]["id"]
        specs = [
            JobSpec(algorithm="kcenter", dataset=ds_id, k=3, seed=s)
            for s in range(4)
        ]
        accepted = [manager.submit(specs[0]), manager.submit(specs[1])]
        with pytest.raises(QueueFullError):
            manager.submit(specs[2])
        assert manager.stats()["jobs_rejected_total"] == 1
        assert len(manager.list_jobs()) == 2
        # draining works once workers start
        manager.start()
        try:
            for job in accepted:
                assert manager.wait(job.id, timeout=60).state is JobState.DONE
        finally:
            manager.stop()

    def test_cancel_queued_job(self, registry):
        manager = make_manager(registry, queue_limit=4)  # not started
        ds_id = registry.list()[0]["id"]
        job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds_id, k=3))
        cancelled = manager.cancel(job.id)
        assert cancelled.state is JobState.CANCELLED
        manager.start()
        try:
            # the worker must skip it, not run it
            time.sleep(0.3)
            assert manager.get(job.id).state is JobState.CANCELLED
            assert manager.get(job.id).result is None
        finally:
            manager.stop()

    def test_timeout_fails_job(self, registry):
        manager = make_manager(registry).start()
        try:
            ds_id = registry.list()[0]["id"]
            job = manager.submit(
                JobSpec(algorithm="kcenter", dataset=ds_id, k=6,
                        timeout_s=1e-9)
            )
            job = manager.wait(job.id, timeout=60)
            assert job.state is JobState.FAILED
            assert "timed out" in job.error
        finally:
            manager.stop()

    def test_failed_job_keeps_traceback(self, registry):
        manager = make_manager(registry).start()
        try:
            ds_id = registry.list()[0]["id"]
            # k > n is caught at submit time...
            with pytest.raises(ValueError, match="exceeds dataset size"):
                manager.submit(JobSpec(algorithm="kcenter", dataset=ds_id, k=1000))
            # ...but a ksupplier with out-of-range ids fails in the worker
            job = manager.submit(
                JobSpec(algorithm="ksupplier", dataset=ds_id, k=2,
                        customers=[0, 1], suppliers=[10**6])
            )
            job = manager.wait(job.id, timeout=60)
            assert job.state is JobState.FAILED and job.error
        finally:
            manager.stop()

    def test_unknown_dataset_rejected_at_submit(self, registry):
        manager = make_manager(registry)
        with pytest.raises(UnknownDatasetError):
            manager.submit(JobSpec(algorithm="kcenter", dataset="ds-missing", k=2))

    def test_unknown_job_id(self, registry):
        with pytest.raises(UnknownJobError):
            make_manager(registry).get("job-000099")

    def test_stats_shape(self, registry):
        manager = make_manager(registry)
        stats = manager.stats()
        assert stats["queue_depth"] == 0
        assert set(stats["jobs_by_state"]) == {s.value for s in JobState}
        assert "hit_ratio" in stats["cache"]

    def test_cancel_then_worker_claim_is_atomic(self, registry):
        # cancel a queued job while workers are paused; once resumed the
        # worker must observe the terminal state and never flip it back
        # to running (the reviewed QUEUED->CANCELLED vs QUEUED->RUNNING
        # race)
        manager = make_manager(registry, queue_limit=8)
        manager.pause()
        manager.start()
        try:
            ds_id = registry.list()[0]["id"]
            job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds_id, k=3))
            cancelled = manager.cancel(job.id)
            assert cancelled.state is JobState.CANCELLED
            finished_at = cancelled.finished_at
            manager.resume()
            time.sleep(0.3)
            after = manager.get(job.id)
            assert after.state is JobState.CANCELLED
            assert after.started_at is None and after.result is None
            assert after.finished_at == finished_at  # not overwritten
        finally:
            manager.stop()

    def test_terminal_history_is_bounded(self, registry):
        manager = make_manager(registry, max_history=3).start()
        try:
            ds_id = registry.list()[0]["id"]
            ids = []
            for seed in range(5):
                job = manager.submit(
                    JobSpec(algorithm="kcenter", dataset=ds_id, k=3, seed=seed)
                )
                manager.wait(job.id, timeout=60)
                ids.append(job.id)
            retained = {j.id for j in manager.list_jobs()}
            assert retained == set(ids[-3:])  # oldest terminal jobs evicted
            with pytest.raises(UnknownJobError):
                manager.get(ids[0])
            # counters still reflect every submission
            assert manager.stats()["jobs_submitted_total"] == 5
        finally:
            manager.stop()

    def test_max_history_never_evicts_live_jobs(self, registry):
        manager = make_manager(registry, queue_limit=8, max_history=1)  # not started
        ds_id = registry.list()[0]["id"]
        queued = [
            manager.submit(JobSpec(algorithm="kcenter", dataset=ds_id, k=3, seed=s))
            for s in range(3)
        ]
        # three live (queued) jobs coexist despite max_history=1 ...
        assert len(manager.list_jobs()) == 3
        manager.cancel(queued[0].id)
        manager.cancel(queued[1].id)
        # ... and only terminal ones count against the cap
        states = {j.id: j.state for j in manager.list_jobs()}
        assert states[queued[2].id] is JobState.QUEUED
        assert sum(s.terminal for s in states.values()) == 1

    def test_diversity_and_ksupplier_jobs(self, registry, points):
        manager = make_manager(registry).start()
        try:
            ds_id = registry.list()[0]["id"]
            div = manager.submit(
                JobSpec(algorithm="diversity", dataset=ds_id, k=5, eps=0.2)
            )
            sup = manager.submit(
                JobSpec(algorithm="ksupplier", dataset=ds_id, k=3, eps=0.2,
                        customers=list(range(80)),
                        suppliers=list(range(80, 120)))
            )
            assert manager.wait(div.id, timeout=60).state is JobState.DONE
            assert manager.wait(sup.id, timeout=60).state is JobState.DONE
            assert manager.get(div.id).result["record"]["diversity"] > 0
        finally:
            manager.stop()
