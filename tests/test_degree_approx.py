"""Tests for Algorithm 3 — MPC degree approximation."""

import numpy as np
import pytest

from repro.constants import TheoryConstants
from repro.core.degree_approx import mpc_degree_approximation
from repro.core.threshold_graph import ThresholdGraphView
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster


def true_degrees(metric, active, tau):
    view = ThresholdGraphView(metric, active, tau)
    return view.degrees(active)


class TestExactPathCorrectness:
    def test_single_machine_degrees_exact(self, medium_metric):
        """m=1 samples everything w.p. 1: heavy estimates and light exact
        degrees must both equal the truth.  (light_blowup is raised so the
        light path cannot preempt the degree computation.)"""
        constants = TheoryConstants(delta=2.0, light_blowup=1e9)
        cluster = MPCCluster(medium_metric, 1, seed=0)
        res = mpc_degree_approximation(cluster, 1.0, 5, constants)
        assert res.kind == "degrees"
        active = np.arange(medium_metric.n)
        truth = true_degrees(medium_metric, active, 1.0)
        assert np.allclose(res.p[active], truth)

    def test_light_vertices_get_exact_degrees(self, medium_metric, practical):
        cluster = MPCCluster(medium_metric, 4, seed=1)
        tau = 0.3  # sparse graph: everything is light
        res = mpc_degree_approximation(cluster, tau, 5, practical)
        if res.kind != "degrees":
            pytest.skip("light path fired; covered elsewhere")
        active = np.arange(medium_metric.n)
        truth = true_degrees(medium_metric, active, tau)
        # light vertices (the overwhelming majority at this tau) are exact
        exact_matches = np.isclose(res.p[active], truth).sum()
        assert exact_matches >= res.light_count

    def test_p_nan_outside_active(self, medium_metric, practical):
        active = [mach.local_ids[:10] for mach in MPCCluster(medium_metric, 4, seed=0).machines]
        cluster = MPCCluster(medium_metric, 4, seed=0)
        active = [mach.local_ids[:10] for mach in cluster.machines]
        res = mpc_degree_approximation(cluster, 0.5, 5, practical, active)
        all_active = np.concatenate(active)
        inactive = np.setdiff1d(np.arange(medium_metric.n), all_active)
        assert np.all(np.isnan(res.p[inactive]))
        assert not np.any(np.isnan(res.p[all_active]))

    def test_degrees_restricted_to_active_subgraph(self, medium_metric, practical):
        cluster = MPCCluster(medium_metric, 2, seed=3)
        active = [mach.local_ids[::2] for mach in cluster.machines]
        res = mpc_degree_approximation(cluster, 0.8, 5, practical, active)
        if res.kind != "degrees":
            pytest.skip("light path fired")
        all_active = np.concatenate(active)
        truth = true_degrees(medium_metric, all_active, 0.8)
        # light actives exact w.r.t. the *active* subgraph
        light_ok = np.isclose(res.p[all_active], truth).sum()
        assert light_ok >= res.light_count


class TestHeavyEstimates:
    def test_heavy_estimates_concentrate(self, rng):
        """Dense graph, many machines: heavy estimates within a loose
        multiplicative band of the truth."""
        pts = rng.normal(size=(2000, 2))
        metric = EuclideanMetric(pts)
        constants = TheoryConstants.practical()
        cluster = MPCCluster(metric, 4, seed=7)
        tau = 2.0  # very dense graph
        res = mpc_degree_approximation(cluster, tau, 5, constants)
        assert res.kind == "degrees"
        assert res.heavy_count > 0
        active = np.arange(metric.n)
        truth = true_degrees(metric, active, tau).astype(float)
        heavy_mask = ~np.isnan(res.p[active]) & (truth > 0)
        est = res.p[active][heavy_mask]
        tru = truth[heavy_mask]
        # sampled at rate 1/4 from degrees in the hundreds: 3x band is safe
        ratio = est / tru
        assert np.all(ratio > 1 / 3) and np.all(ratio < 3)

    def test_sample_size_reported(self, medium_metric, practical):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_degree_approximation(cluster, 1.0, 5, practical)
        assert res.sample_size >= 0
        assert res.light_count + res.heavy_count == medium_metric.n


class TestLightPath:
    def make_sparse_instance(self, n, rng):
        """Huge spread: the threshold graph is empty, everything light."""
        pts = rng.uniform(0, 1e6, size=(n, 2))
        return EuclideanMetric(pts)

    def test_light_path_returns_independent_set(self, rng):
        metric = self.make_sparse_instance(500, rng)
        # trigger below |L| = 500 but large enough that the shipped
        # rho-fraction holds at least k independent vertices
        constants = TheoryConstants(delta=1.0, light_blowup=0.5)
        cluster = MPCCluster(metric, 4, seed=0)
        k = 5
        res = mpc_degree_approximation(cluster, 1.0, k, constants)
        assert res.kind == "independent_set"
        assert res.light_path_taken
        ids = res.independent_set
        assert ids.size == k
        D = metric.pairwise(ids, ids)
        np.fill_diagonal(D, np.inf)
        assert D.min() > 1.0

    def test_light_path_falls_through_when_greedy_short(self):
        """Three tight clusters: every vertex is light (sample degree below
        the threshold) but the maximum independent set has only 3 vertices,
        so the light-path greedy comes up short of k=5 and the routine must
        fall through to exact degrees instead of failing."""
        centers = np.array([[0.0, 0.0], [1000.0, 0.0], [2000.0, 0.0]])
        pts = np.repeat(centers, 34, axis=0)  # n = 102, 3 clusters of 34
        metric = EuclideanMetric(pts)
        # heavy threshold δ·ln(102) ≈ 18.5 > expected sample degree ≈ 8
        constants = TheoryConstants(delta=4.0, light_blowup=0.2)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_degree_approximation(cluster, 1.0, 5, constants)
        assert res.kind == "degrees"
        assert res.light_path_taken and res.light_path_fell_through
        # exact light degrees: every vertex has 33 co-located neighbors
        active = np.arange(102)
        light_exact = np.isclose(res.p[active], 33.0).sum()
        assert light_exact >= res.light_count > 0


class TestAccountingAndEdges:
    def test_rounds_used_reported(self, medium_metric, practical):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        before = cluster.round_no
        res = mpc_degree_approximation(cluster, 0.5, 5, practical)
        assert res.rounds_used == cluster.round_no - before
        assert res.rounds_used >= 3  # sample + counts + decision at minimum

    def test_empty_active_set(self, medium_metric, practical):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        empty = [np.zeros(0, dtype=np.int64) for _ in range(4)]
        res = mpc_degree_approximation(cluster, 0.5, 5, practical, empty)
        assert res.kind == "degrees"
        assert np.all(np.isnan(res.p))

    def test_strict_mode_holds(self, medium_metric, practical):
        """The whole routine runs under strict known-point checking."""
        cluster = MPCCluster(medium_metric, 4, seed=0, strict=True)
        res = mpc_degree_approximation(cluster, 1.0, 5, practical)
        assert res.kind in ("degrees", "independent_set")

    def test_deterministic_given_seed(self, medium_metric, practical):
        out = []
        for _ in range(2):
            cluster = MPCCluster(medium_metric, 4, seed=11)
            res = mpc_degree_approximation(cluster, 0.7, 5, practical)
            out.append(res.p.copy())
        assert np.array_equal(out[0], out[1], equal_nan=True)
