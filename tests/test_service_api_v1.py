"""The versioned API surface: ``/v1`` routes, the uniform error
envelope, legacy aliases, and ``GET /v1/jobs`` pagination."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.service import ServiceClient, ServiceError, serve
from repro.service.http import run_in_thread


@pytest.fixture
def server():
    srv = serve(port=0, workers=1, queue_limit=4, backend="serial")
    run_in_thread(srv)
    yield srv
    srv.shutdown_service()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


@pytest.fixture
def points():
    return np.random.default_rng(5).normal(scale=2.0, size=(80, 2))


def _raw_get(url):
    """(status, headers, parsed-json-body) without the client's sugar."""
    req = urllib.request.Request(url, headers={"Accept": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class TestVersionedRoutes:
    def test_client_defaults_to_v1(self, client):
        assert client.api_version == "v1"
        health = client.healthz()
        assert health["api_version"] == "v1"
        assert health["role"] == "all"

    def test_all_routes_live_under_v1(self, client, points):
        ds = client.register_points(points)
        job = client.submit(algorithm="kcenter", dataset=ds["id"], k=4)
        done = client.wait(job["id"])
        assert done["state"] == "done"
        assert client.dataset(ds["id"])["id"] == ds["id"]
        assert any(d["id"] == ds["id"] for d in client.datasets())
        assert client.stats()["jobs_by_state"]["done"] >= 1
        assert "repro_jobs_submitted_total" in client.metrics()
        assert client.trace(job["id"])["traceEvents"]

    def test_v1_responses_not_deprecated(self, server):
        status, headers, _ = _raw_get(f"{server.url}/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers


class TestLegacyAliases:
    def test_legacy_path_still_answers_with_deprecation(self, server):
        status, headers, body = _raw_get(f"{server.url}/healthz")
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert '/v1/healthz' in headers.get("Link", "")
        assert body["status"] in ("ok", "degraded")

    def test_legacy_client_mode(self, server, points):
        legacy = ServiceClient(server.url, timeout=30.0, api_version="")
        ds = legacy.register_points(points)
        job = legacy.submit(algorithm="kcenter", dataset=ds["id"], k=3)
        assert legacy.wait(job["id"])["state"] == "done"

    def test_legacy_warns_once_per_path(self, server):
        _raw_get(f"{server.url}/healthz")
        assert ("GET", "/healthz") in server._legacy_warned
        before = len(server._legacy_warned)
        _raw_get(f"{server.url}/healthz")
        assert len(server._legacy_warned) == before  # no second entry
        _raw_get(f"{server.url}/stats")
        assert ("GET", "/stats") in server._legacy_warned


class TestErrorEnvelope:
    def test_unknown_job_envelope(self, server):
        status, _, body = _raw_get(f"{server.url}/v1/jobs/job-999999")
        assert status == 404
        err = body["error"]
        assert err["code"] == "unknown_job"
        assert "job-999999" in err["message"]
        assert err["request_id"]

    def test_unknown_dataset_code(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.submit(algorithm="kcenter", dataset="ds-nope", k=2)
        assert exc_info.value.status == 404
        assert exc_info.value.code == "unknown_dataset"
        assert exc_info.value.request_id

    def test_no_route_code(self, server):
        status, _, body = _raw_get(f"{server.url}/v1/nonsense")
        assert status == 404
        assert body["error"]["code"] == "no_route"

    def test_invalid_request_code(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.submit(algorithm="kcenter")  # no dataset
        assert exc_info.value.status == 400
        assert exc_info.value.code == "invalid_request"

    def test_conflict_code(self, client, points):
        ds = client.register_points(points)
        job = client.submit(algorithm="kcenter", dataset=ds["id"], k=3)
        client.wait(job["id"])
        with pytest.raises(ServiceError) as exc_info:
            client.cancel(job["id"])
        assert exc_info.value.status == 409
        assert exc_info.value.code == "conflict"

    def test_queue_full_is_retryable_code(self):
        err = ServiceError(429, "full", code="queue_full")
        assert err.retryable
        assert not ServiceError(404, "nope", code="unknown_job").retryable
        # pre-envelope fallback: no code → status decides
        assert ServiceError(503, "busy").retryable
        assert not ServiceError(400, "bad").retryable
        # connection-level failures carry the client-side transport code
        assert ServiceError(0, "refused", code="transport").retryable


class TestPagination:
    def _submit_many(self, client, points, count):
        ds = client.register_points(points)
        ids = []
        for seed in range(count):
            job = client.submit(
                algorithm="kcenter", dataset=ds["id"], k=3, seed=seed
            )
            client.wait(job["id"])
            ids.append(job["id"])
        return ids

    def test_limit_and_cursor(self, client, points):
        ids = self._submit_many(client, points, 5)
        page = client.jobs_page(limit=2)
        assert [j["id"] for j in page["jobs"]] == ids[:2]
        assert page["next_cursor"] == ids[1]
        page2 = client.jobs_page(limit=2, cursor=page["next_cursor"])
        assert [j["id"] for j in page2["jobs"]] == ids[2:4]
        last = client.jobs_page(limit=2, cursor=page2["next_cursor"])
        assert [j["id"] for j in last["jobs"]] == ids[4:]
        assert "next_cursor" not in last

    def test_list_jobs_follows_cursors(self, client, points):
        ids = self._submit_many(client, points, 5)
        assert [j["id"] for j in client.list_jobs(page_size=2)] == ids
        assert [j["id"] for j in client.jobs(page_size=2)] == ids

    def test_state_filter_with_pagination(self, client, points):
        ids = self._submit_many(client, points, 3)
        done = client.jobs_page(state="done", limit=10)
        assert [j["id"] for j in done["jobs"]] == ids
        assert client.jobs_page(state="failed")["jobs"] == []

    def test_bad_limit_and_cursor_rejected(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.jobs_page(limit=0)
        assert exc_info.value.code == "invalid_request"
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/jobs?limit=abc")
        assert exc_info.value.code == "invalid_request"
        with pytest.raises(ServiceError) as exc_info:
            client.jobs_page(cursor="garbage")
        assert exc_info.value.code == "invalid_request"

    def test_results_never_inlined_in_lists(self, client, points):
        self._submit_many(client, points, 1)
        (job,) = client.jobs_page(limit=10)["jobs"]
        assert "result" not in job
        assert job["state"] == "done"


class TestClientCursorEdges:
    """ServiceClient pagination against awkward pages: empty-but-not-
    final filtered pages, non-advancing cursors, reserved characters in
    query params, and cursor stability while jobs transition state."""

    def _scripted_client(self, pages):
        """A client whose transport replays canned pages and records
        every requested path."""
        client = ServiceClient("http://scripted", retries=0)
        calls = []

        def fake_request(method, path, body=None):
            calls.append(path)
            return dict(pages[len(calls) - 1])

        client._request = fake_request
        return client, calls

    def test_empty_filtered_page_does_not_end_iteration(self):
        # every job in the first cursor window left the filtered state
        # between pages: the page is empty, yet a cursor follows
        client, _ = self._scripted_client([
            {"jobs": [], "next_cursor": "job-000002"},
            {"jobs": [{"id": "job-000003"}]},
        ])
        assert [j["id"] for j in client.iter_jobs(state="queued")] == [
            "job-000003"
        ]

    def test_non_advancing_cursor_terminates(self):
        page = {"jobs": [{"id": "job-000001"}], "next_cursor": "job-000001"}
        client, calls = self._scripted_client([page, dict(page), dict(page)])
        jobs = list(client.iter_jobs())
        # one follow-up for the echoed cursor, then stop — not a loop
        assert [j["id"] for j in jobs] == ["job-000001", "job-000001"]
        assert len(calls) == 2

    def test_missing_collection_key_tolerated(self):
        client, _ = self._scripted_client([{}, {}])
        assert client.jobs_page(state="failed")["jobs"] == []
        assert list(client.iter_jobs()) == []

    def test_query_params_are_url_encoded(self):
        client, calls = self._scripted_client([{"jobs": []}])
        client.jobs_page(state="do ne&x=1", cursor="job-000001")
        assert calls == ["/jobs?state=do+ne%26x%3D1&cursor=job-000001"]

    def test_bad_page_size_rejected_client_side(self):
        client, _ = self._scripted_client([])
        with pytest.raises(ValueError, match="page_size"):
            list(client.iter_jobs(page_size=0))

    def test_cursor_stable_while_jobs_transition(self, client, points):
        """Jobs finishing between page fetches must not shift, repeat,
        or hide earlier pages: the cursor pins a position by id."""
        ds = client.register_points(points)
        first = [
            client.submit(algorithm="kcenter", dataset=ds["id"], k=3, seed=s)
            for s in range(2)
        ]
        page1 = client.jobs_page(limit=2)
        assert [j["id"] for j in page1["jobs"]] == [j["id"] for j in first]
        # state churn mid-pagination: the first page's jobs finish and
        # new jobs arrive before the cursor is followed
        for job in first:
            client.wait(job["id"])
        later = [
            client.submit(algorithm="kcenter", dataset=ds["id"], k=4, seed=s)
            for s in range(2)
        ]
        # (no next_cursor yet — the listing was complete at fetch time;
        # resuming from the last seen id is the cursor contract)
        page2 = client.jobs_page(limit=10, cursor=page1["jobs"][-1]["id"])
        assert [j["id"] for j in page2["jobs"]] == [j["id"] for j in later]
        for job in later:
            client.wait(job["id"])
        # a filtered walk started now sees every job exactly once
        seen = [j["id"] for j in client.iter_jobs(state="done", page_size=1)]
        assert seen == [j["id"] for j in first + later]


class TestAnalysesApi:
    """The ``/v1/analyses`` sweep surface: submission, pagination, the
    ranked report, and its error envelopes."""

    def _small_sweep(self, client, points, **overrides):
        ds = client.register_points(points)
        body = {"datasets": [ds["id"]], "solvers": ["gonzalez"], "ks": [3]}
        body.update(overrides)
        return client.submit_analysis(**body)

    def test_submit_wait_report(self, client, points):
        record = self._small_sweep(client, points, ks=[3, 4])
        assert record["id"].startswith("an-") and record["cells"] == 2
        done = client.wait_analysis(record["id"], timeout=120)
        assert done["state"] == "done"
        report = client.analysis_report(record["id"])
        assert sorted(report["ranking"]) == [0, 1]
        assert report["recommendation"]["cell"] == report["ranking"][0]
        got = client.analysis(record["id"])
        assert got["cells"] == 2 and "report" not in got

    def test_envelopes(self, server, client, points):
        ds = client.register_points(points)
        cases = [
            (lambda: client.analysis("an-999999"), 404, "unknown_analysis"),
            (lambda: client.analysis_report("an-999999"), 404,
             "unknown_analysis"),
            (lambda: client.submit_analysis(
                datasets=[ds["id"]], solvers=["nope"], ks=[3]),
             400, "invalid_request"),
            (lambda: client.submit_analysis(
                datasets=["ds-nope"], solvers=["gonzalez"], ks=[3]),
             404, "unknown_dataset"),
            (lambda: client.analyses_page(state="bogus"), 400,
             "invalid_request"),
            (lambda: client.analyses_page(cursor="job-000001"), 400,
             "invalid_request"),
        ]
        for call, status, code in cases:
            with pytest.raises(ServiceError) as exc_info:
                call()
            assert exc_info.value.status == status
            assert exc_info.value.code == code
            assert exc_info.value.request_id

    def test_report_conflict_while_running(self, server, client):
        # a hand-planted running analysis: deterministic stand-in for
        # "the grid is still draining"
        from repro.service.store import AnalysisRecord

        store = server.sweeps.store
        record = AnalysisRecord(
            id=store.next_analysis_id(), spec={}, state="running",
            created_at=0.0, cell_job_ids=["job-999999"],
        )
        store.create(record)
        with pytest.raises(ServiceError) as exc_info:
            client.analysis_report(record.id)
        assert exc_info.value.status == 409
        assert exc_info.value.code == "conflict"
        store.delete(record.id)

    def test_pagination(self, client, points):
        ids = []
        for k in (3, 4, 5):
            record = self._small_sweep(client, points, ks=[k])
            client.wait_analysis(record["id"], timeout=60)
            ids.append(record["id"])
        page = client.analyses_page(limit=2)
        assert [a["id"] for a in page["analyses"]] == ids[:2]
        assert page["next_cursor"] == ids[1]
        rest = client.analyses_page(limit=2, cursor=page["next_cursor"])
        assert [a["id"] for a in rest["analyses"]] == ids[2:]
        assert "next_cursor" not in rest
        assert [a["id"] for a in client.iter_analyses(page_size=1)] == ids
        assert [a["id"] for a in client.analyses(state="done")] == ids
        assert client.analyses(state="failed") == []

    def test_stats_and_metrics_expose_sweeps(self, client, points):
        record = self._small_sweep(client, points)
        client.wait_analysis(record["id"], timeout=60)
        stats = client.stats()
        assert stats["analyses"]["analyses_by_state"]["done"] >= 1
        text = client.metrics()
        assert "repro_sweeps_submitted_total" in text
        assert "repro_sweep_cells_total" in text
