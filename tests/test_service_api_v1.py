"""The versioned API surface: ``/v1`` routes, the uniform error
envelope, legacy aliases, and ``GET /v1/jobs`` pagination."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.service import ServiceClient, ServiceError, serve
from repro.service.http import run_in_thread


@pytest.fixture
def server():
    srv = serve(port=0, workers=1, queue_limit=4, backend="serial")
    run_in_thread(srv)
    yield srv
    srv.shutdown_service()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


@pytest.fixture
def points():
    return np.random.default_rng(5).normal(scale=2.0, size=(80, 2))


def _raw_get(url):
    """(status, headers, parsed-json-body) without the client's sugar."""
    req = urllib.request.Request(url, headers={"Accept": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class TestVersionedRoutes:
    def test_client_defaults_to_v1(self, client):
        assert client.api_version == "v1"
        health = client.healthz()
        assert health["api_version"] == "v1"
        assert health["role"] == "all"

    def test_all_routes_live_under_v1(self, client, points):
        ds = client.register_points(points)
        job = client.submit(algorithm="kcenter", dataset=ds["id"], k=4)
        done = client.wait(job["id"])
        assert done["state"] == "done"
        assert client.dataset(ds["id"])["id"] == ds["id"]
        assert any(d["id"] == ds["id"] for d in client.datasets())
        assert client.stats()["jobs_by_state"]["done"] >= 1
        assert "repro_jobs_submitted_total" in client.metrics()
        assert client.trace(job["id"])["traceEvents"]

    def test_v1_responses_not_deprecated(self, server):
        status, headers, _ = _raw_get(f"{server.url}/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers


class TestLegacyAliases:
    def test_legacy_path_still_answers_with_deprecation(self, server):
        status, headers, body = _raw_get(f"{server.url}/healthz")
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert '/v1/healthz' in headers.get("Link", "")
        assert body["status"] in ("ok", "degraded")

    def test_legacy_client_mode(self, server, points):
        legacy = ServiceClient(server.url, timeout=30.0, api_version="")
        ds = legacy.register_points(points)
        job = legacy.submit(algorithm="kcenter", dataset=ds["id"], k=3)
        assert legacy.wait(job["id"])["state"] == "done"

    def test_legacy_warns_once_per_path(self, server):
        _raw_get(f"{server.url}/healthz")
        assert ("GET", "/healthz") in server._legacy_warned
        before = len(server._legacy_warned)
        _raw_get(f"{server.url}/healthz")
        assert len(server._legacy_warned) == before  # no second entry
        _raw_get(f"{server.url}/stats")
        assert ("GET", "/stats") in server._legacy_warned


class TestErrorEnvelope:
    def test_unknown_job_envelope(self, server):
        status, _, body = _raw_get(f"{server.url}/v1/jobs/job-999999")
        assert status == 404
        err = body["error"]
        assert err["code"] == "unknown_job"
        assert "job-999999" in err["message"]
        assert err["request_id"]

    def test_unknown_dataset_code(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.submit(algorithm="kcenter", dataset="ds-nope", k=2)
        assert exc_info.value.status == 404
        assert exc_info.value.code == "unknown_dataset"
        assert exc_info.value.request_id

    def test_no_route_code(self, server):
        status, _, body = _raw_get(f"{server.url}/v1/nonsense")
        assert status == 404
        assert body["error"]["code"] == "no_route"

    def test_invalid_request_code(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.submit(algorithm="kcenter")  # no dataset
        assert exc_info.value.status == 400
        assert exc_info.value.code == "invalid_request"

    def test_conflict_code(self, client, points):
        ds = client.register_points(points)
        job = client.submit(algorithm="kcenter", dataset=ds["id"], k=3)
        client.wait(job["id"])
        with pytest.raises(ServiceError) as exc_info:
            client.cancel(job["id"])
        assert exc_info.value.status == 409
        assert exc_info.value.code == "conflict"

    def test_queue_full_is_retryable_code(self):
        err = ServiceError(429, "full", code="queue_full")
        assert err.retryable
        assert not ServiceError(404, "nope", code="unknown_job").retryable
        # pre-envelope fallback: no code → status decides
        assert ServiceError(503, "busy").retryable
        assert not ServiceError(400, "bad").retryable
        # connection-level failures carry the client-side transport code
        assert ServiceError(0, "refused", code="transport").retryable


class TestPagination:
    def _submit_many(self, client, points, count):
        ds = client.register_points(points)
        ids = []
        for seed in range(count):
            job = client.submit(
                algorithm="kcenter", dataset=ds["id"], k=3, seed=seed
            )
            client.wait(job["id"])
            ids.append(job["id"])
        return ids

    def test_limit_and_cursor(self, client, points):
        ids = self._submit_many(client, points, 5)
        page = client.jobs_page(limit=2)
        assert [j["id"] for j in page["jobs"]] == ids[:2]
        assert page["next_cursor"] == ids[1]
        page2 = client.jobs_page(limit=2, cursor=page["next_cursor"])
        assert [j["id"] for j in page2["jobs"]] == ids[2:4]
        last = client.jobs_page(limit=2, cursor=page2["next_cursor"])
        assert [j["id"] for j in last["jobs"]] == ids[4:]
        assert "next_cursor" not in last

    def test_list_jobs_follows_cursors(self, client, points):
        ids = self._submit_many(client, points, 5)
        assert [j["id"] for j in client.list_jobs(page_size=2)] == ids
        assert [j["id"] for j in client.jobs(page_size=2)] == ids

    def test_state_filter_with_pagination(self, client, points):
        ids = self._submit_many(client, points, 3)
        done = client.jobs_page(state="done", limit=10)
        assert [j["id"] for j in done["jobs"]] == ids
        assert client.jobs_page(state="failed")["jobs"] == []

    def test_bad_limit_and_cursor_rejected(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.jobs_page(limit=0)
        assert exc_info.value.code == "invalid_request"
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/jobs?limit=abc")
        assert exc_info.value.code == "invalid_request"
        with pytest.raises(ServiceError) as exc_info:
            client.jobs_page(cursor="garbage")
        assert exc_info.value.code == "invalid_request"

    def test_results_never_inlined_in_lists(self, client, points):
        self._submit_many(client, points, 1)
        (job,) = client.jobs_page(limit=10)["jobs"]
        assert "result" not in job
        assert job["state"] == "done"
