"""Tests for the cluster event-hook layer (`cluster.obs`)."""

import numpy as np
import pytest

from repro.core.kcenter import mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.trace import MessageTrace
from repro.obs import Observer


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(120, 2)))


class _EventLogger(Observer):
    """Records the hook call sequence as (kind, payload) tuples."""

    def __init__(self):
        self.calls = []

    def on_round_start(self, round_no):
        self.calls.append(("round_start", round_no))

    def on_send(self, message):
        self.calls.append(("send", message.tag))

    def on_message(self, event):
        self.calls.append(("message", event.tag))

    def on_round_end(self, record):
        self.calls.append(("round_end", record.round_no))


class TestHookOrdering:
    def test_round_start_messages_round_end(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        logger = cluster.obs.add(_EventLogger())
        cluster.send(0, 1, 1.0, tag="a")
        cluster.send(1, 2, 2.0, tag="b")
        cluster.step()
        kinds = [c[0] for c in logger.calls]
        # sends happen at queue time, before the barrier
        assert kinds == ["send", "send", "round_start", "message", "message", "round_end"]
        assert logger.calls[2] == ("round_start", 1)
        assert logger.calls[-1] == ("round_end", 1)
        # delivery preserves outbox order
        assert [c[1] for c in logger.calls[3:5]] == ["a", "b"]

    def test_on_send_fires_at_queue_time(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        logger = cluster.obs.add(_EventLogger())
        cluster.send(0, 1, 1.0, tag="queued")
        assert logger.calls == [("send", "queued")]  # no step() yet

    def test_round_numbers_increment(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        logger = cluster.obs.add(_EventLogger())
        cluster.step()
        cluster.step()
        starts = [c[1] for c in logger.calls if c[0] == "round_start"]
        ends = [c[1] for c in logger.calls if c[0] == "round_end"]
        assert starts == [1, 2]
        assert ends == [1, 2]


class TestHubManagement:
    def test_add_is_idempotent(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        ob = _EventLogger()
        cluster.obs.add(ob)
        cluster.obs.add(ob)
        assert len(cluster.obs) == 1
        cluster.step()
        assert [c[0] for c in ob.calls] == ["round_start", "round_end"]

    def test_remove_stops_delivery(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        ob = cluster.obs.add(_EventLogger())
        cluster.step()
        cluster.obs.remove(ob)
        assert ob not in cluster.obs
        cluster.step()
        assert [c[1] for c in ob.calls if c[0] == "round_end"] == [1]

    def test_remove_unknown_is_noop(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        cluster.obs.remove(_EventLogger())  # must not raise
        assert len(cluster.obs) == 0

    def test_multiple_observers_all_notified(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        a = cluster.obs.add(_EventLogger())
        b = cluster.obs.add(_EventLogger())
        cluster.send(0, 1, np.zeros(3), tag="x")
        cluster.step()
        assert a.calls == b.calls

    def test_clear(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        cluster.obs.add(_EventLogger())
        cluster.obs.add(_EventLogger())
        cluster.obs.clear()
        assert len(cluster.obs) == 0


class TestLegacyEquivalence:
    def test_hooked_trace_matches_monkeypatched_totals(self, metric):
        """The hook-based MessageTrace must see exactly what a legacy
        monkey-patch interception of ``step()`` sees on a real run."""
        pw = metric.point_words()

        # run 1: the supported hook API
        cluster1 = MPCCluster(metric, 4, seed=7)
        trace = cluster1.obs.add(MessageTrace())
        res1 = mpc_kcenter(cluster1, k=5, epsilon=0.5)

        # run 2: same seed, monkey-patch step() the way the old trace did
        cluster2 = MPCCluster(metric, 4, seed=7)
        legacy = []
        original_step = cluster2.step

        def patched_step():
            pending = [(m.src, m.dst, m.tag, m.words(pw)) for m in cluster2._outbox]
            inboxes = original_step()
            rnd = cluster2.round_no
            legacy.extend((rnd,) + p for p in pending)
            return inboxes

        cluster2.step = patched_step
        res2 = mpc_kcenter(cluster2, k=5, epsilon=0.5)

        assert np.array_equal(res1.centers, res2.centers)
        hooked = [(e.round_no, e.src, e.dst, e.tag, e.words) for e in trace.events]
        assert hooked == legacy
        assert trace.total_words() == cluster1.stats.total_words
