"""Failure injection: limits trip the right exceptions, strict mode
catches oracle misuse, and degenerate inputs fail loudly, not silently."""

import numpy as np
import pytest

from repro.core import mpc_kcenter
from repro.exceptions import (
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    UnknownPointError,
)
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.limits import Limits
from repro.mpc.message import PointBatch


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(100, 2)))


class TestCommunicationLimits:
    def test_tight_limit_kills_algorithm(self, metric):
        cluster = MPCCluster(
            metric, 4, seed=0, limits=Limits(comm_words_per_round=5)
        )
        with pytest.raises(CommunicationLimitExceeded):
            mpc_kcenter(cluster, 5, epsilon=0.3)

    def test_generous_limit_passes(self, metric):
        lim = Limits(comm_words_per_round=10_000_000)
        cluster = MPCCluster(metric, 4, seed=0, limits=lim)
        res = mpc_kcenter(cluster, 5, epsilon=0.3)
        assert res.radius > 0

    def test_theory_limit_with_slack_passes(self, metric):
        lim = Limits.theory(n=metric.n, m=4, k=5, dim=2, slack=512.0)
        cluster = MPCCluster(metric, 4, seed=0, limits=lim)
        res = mpc_kcenter(cluster, 5, epsilon=0.3)
        assert res.radius > 0

    def test_exception_identifies_machine_and_round(self, metric):
        cluster = MPCCluster(metric, 2, seed=0, limits=Limits(comm_words_per_round=1))
        cluster.send(0, 1, np.zeros(10))
        with pytest.raises(CommunicationLimitExceeded) as e:
            cluster.step()
        assert e.value.round_no == 1
        assert e.value.used == 10


class TestMemoryLimits:
    def test_learning_past_cap_raises(self, metric):
        # each machine starts with ~25 points = 50 words; cap just above
        cluster = MPCCluster(metric, 4, seed=0, limits=Limits(memory_words=60))
        ids = cluster.machines[1].local_ids[:10]
        cluster.send(1, 0, PointBatch(ids))
        with pytest.raises(MemoryLimitExceeded):
            cluster.step()


class TestStrictMode:
    def test_touching_unreceived_point_raises(self, metric):
        cluster = MPCCluster(metric, 4, seed=0, strict=True)
        mach = cluster.machines[1]
        foreign = cluster.machines[2].local_ids[0]
        with pytest.raises(UnknownPointError):
            mach.pairwise([int(foreign)], mach.local_ids[:1])

    def test_sending_unknown_points_raises(self, metric):
        cluster = MPCCluster(metric, 4, seed=0, strict=True)
        foreign = cluster.machines[2].local_ids[:2]
        with pytest.raises(UnknownPointError):
            cluster.send(1, 0, PointBatch(foreign))

    def test_non_strict_cluster_permits(self, metric):
        cluster = MPCCluster(metric, 4, seed=0, strict=False)
        foreign = cluster.machines[2].local_ids[:2]
        cluster.send(1, 0, PointBatch(foreign))
        cluster.step()

    def test_all_core_algorithms_pass_strict(self, metric):
        """The headline guarantee: nothing in the pipeline peeks at data
        it never received."""
        from repro.core import mpc_diversity, mpc_k_bounded_mis

        for fn in (
            lambda c: mpc_kcenter(c, 5, epsilon=0.3),
            lambda c: mpc_diversity(c, 5, epsilon=0.3),
            lambda c: mpc_k_bounded_mis(c, 0.5, 8),
        ):
            cluster = MPCCluster(metric, 4, seed=3, strict=True)
            fn(cluster)  # must not raise UnknownPointError


class TestDegenerateInputs:
    def test_single_point_kcenter(self):
        metric = EuclideanMetric([[1.0, 2.0]])
        cluster = MPCCluster(metric, 1, seed=0)
        res = mpc_kcenter(cluster, 1, epsilon=0.5)
        assert res.radius == 0.0

    def test_two_points_two_machines(self):
        metric = EuclideanMetric([[0.0, 0.0], [1.0, 0.0]])
        cluster = MPCCluster(metric, 2, seed=0)
        res = mpc_kcenter(cluster, 2, epsilon=0.5)
        assert res.radius == pytest.approx(0.0)

    def test_more_machines_than_points_leaves_idle_machines(self):
        """n < m is allowed: the surplus machines simply hold nothing
        (the paper assumes m = n^γ << n; this is the graceful fallback)."""
        from repro.mpc.partition import random_partition

        parts = random_partition(2, 5, np.random.default_rng(0))
        assert sum(p.size for p in parts) == 2
        assert sum(p.size == 0 for p in parts) == 3
        # and the algorithms still run
        metric = EuclideanMetric([[0.0, 0.0], [3.0, 0.0]])
        cluster = MPCCluster(metric, 5, partition=parts, seed=0)
        res = mpc_kcenter(cluster, 1, epsilon=0.5)
        assert res.radius == pytest.approx(3.0)
