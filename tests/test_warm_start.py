"""Tests for warm-start re-solves (:class:`repro.core.warm.WarmStart`).

The composable-coreset structure makes incremental re-solves cheap:
after an append, each machine runs its GMM only over the *delta*
points and ships the parent's centers alongside, so the central stage
sees a summary of old + new without re-touching the old points.  The
tests pin down (a) validity — a warm solution is still a feasible
(2+ε)-style solution over the full child dataset, (b) the savings —
strictly fewer oracle evaluations than a cold solve of the same child,
and (c) determinism — warm results are backend-invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import solve_diversity, solve_kcenter
from repro.core import WarmStart, mpc_kcenter
from repro.exceptions import InfeasibleInstanceError
from repro.metric.euclidean import EuclideanMetric
from repro.metric.oracle import CountingOracle
from tests.conftest import make_cluster


@pytest.fixture
def base_points(rng):
    return rng.normal(scale=3.0, size=(120, 2))


@pytest.fixture
def delta_points(rng):
    return rng.normal(loc=4.0, scale=3.0, size=(60, 2))


def _warm_from_cold(points, k, **kwargs):
    cold = solve_kcenter(points, k=k, **kwargs)
    return WarmStart(
        base_n=len(points),
        centers=np.asarray(cold.centers, dtype=np.int64),
        objective=float(cold.radius),
    )


class TestWarmStartValidation:
    def test_requires_centers(self):
        with pytest.raises(ValueError):
            WarmStart(base_n=10, centers=np.array([], dtype=np.int64))

    def test_rejects_out_of_range_centers(self):
        with pytest.raises(ValueError):
            WarmStart(base_n=10, centers=np.array([3, 10]))
        with pytest.raises(ValueError):
            WarmStart(base_n=10, centers=np.array([-1, 3]))

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            WarmStart(base_n=0, centers=np.array([0]))

    def test_centers_unique_sorted(self):
        ws = WarmStart(base_n=10, centers=np.array([7, 2, 7, 0]))
        assert ws.centers.tolist() == [0, 2, 7]

    def test_id_helpers(self):
        ws = WarmStart(base_n=10, centers=np.array([2, 7]))
        local = np.array([2, 5, 7, 11, 14])
        assert ws.delta_ids(local).tolist() == [11, 14]
        assert ws.local_centers(local).tolist() == [2, 7]

    def test_warm_start_beyond_dataset_infeasible(self, base_points):
        ws = WarmStart(base_n=500, centers=np.array([0, 1]))
        cluster = make_cluster(EuclideanMetric(base_points), m=4)
        with pytest.raises(InfeasibleInstanceError):
            mpc_kcenter(cluster, k=4, warm_start=ws)


class TestWarmKCenter:
    def test_warm_solution_is_valid(self, base_points, delta_points):
        k = 5
        ws = _warm_from_cold(base_points, k, seed=0, machines=4)
        combined = np.vstack([base_points, delta_points])
        warm = solve_kcenter(
            combined, k=k, seed=0, machines=4, warm_start=ws
        )
        metric = EuclideanMetric(combined)
        assert len(warm.centers) <= k
        covered = metric.dist_to_set(np.arange(len(combined)), warm.centers)
        assert float(covered.max()) <= warm.radius + 1e-9

    def test_warm_close_to_cold_quality(self, base_points, delta_points):
        k = 5
        ws = _warm_from_cold(base_points, k, seed=0, machines=4)
        combined = np.vstack([base_points, delta_points])
        warm = solve_kcenter(combined, k=k, seed=0, machines=4, warm_start=ws)
        cold = solve_kcenter(combined, k=k, seed=0, machines=4)
        # both carry the same (2+eps)(1+eps)-style guarantee, so they can
        # differ by at most that factor relative to each other
        assert warm.radius <= 3.0 * cold.radius
        assert cold.radius <= 3.0 * warm.radius

    def test_warm_saves_oracle_evaluations(self, base_points, delta_points):
        """The headline property: re-solving warm must cost strictly
        fewer oracle evaluations than solving the child cold."""
        k = 5
        ws = _warm_from_cold(base_points, k, seed=0, machines=4)
        combined = np.vstack([base_points, delta_points])

        cold_oracle = CountingOracle(EuclideanMetric(combined))
        solve_kcenter(k=k, seed=0, machines=4, metric=cold_oracle)
        cold_evals = cold_oracle.evaluations

        warm_oracle = CountingOracle(EuclideanMetric(combined))
        solve_kcenter(k=k, seed=0, machines=4, metric=warm_oracle,
                      warm_start=ws)
        warm_evals = warm_oracle.evaluations

        assert warm_evals < cold_evals

    def test_warm_deterministic_across_backends(
        self, base_points, delta_points
    ):
        k = 5
        combined = np.vstack([base_points, delta_points])
        results = {}
        for backend in ("serial", "thread"):
            ws = _warm_from_cold(base_points, k, seed=3, machines=4)
            res = solve_kcenter(
                combined, k=k, seed=3, machines=4,
                backend=backend, warm_start=ws,
            )
            results[backend] = (res.centers.tolist(), res.radius, res.tau)
        assert results["serial"] == results["thread"]


class TestWarmDiversity:
    def test_warm_diversity_valid_and_deterministic(
        self, base_points, delta_points
    ):
        k = 5
        cold = solve_diversity(base_points, k=k, seed=0, machines=4)
        ws = WarmStart(
            base_n=len(base_points),
            centers=np.asarray(cold.ids, dtype=np.int64),
            objective=float(cold.diversity),
        )
        combined = np.vstack([base_points, delta_points])
        warm = solve_diversity(
            combined, k=k, seed=0, machines=4, warm_start=ws
        )
        assert len(warm.ids) == k
        assert warm.diversity > 0
        again = solve_diversity(
            combined, k=k, seed=0, machines=4, warm_start=ws
        )
        assert warm.ids.tolist() == again.ids.tolist()
        assert warm.diversity == again.diversity

    def test_warm_diversity_within_guarantee_of_cold(
        self, base_points, delta_points
    ):
        k = 5
        cold_base = solve_diversity(base_points, k=k, seed=0, machines=4)
        ws = WarmStart(
            base_n=len(base_points),
            centers=np.asarray(cold_base.ids, dtype=np.int64),
            objective=float(cold_base.diversity),
        )
        combined = np.vstack([base_points, delta_points])
        warm = solve_diversity(combined, k=k, seed=0, machines=4, warm_start=ws)
        cold = solve_diversity(combined, k=k, seed=0, machines=4)
        # diversity never shrinks below a constant factor of the cold run
        assert warm.diversity >= cold.diversity / 4.0
