"""Unit tests for the metrics registry and the MetricsObserver."""

import json
import threading

import numpy as np
import pytest

from repro import (
    CountingOracle,
    EuclideanMetric,
    MPCCluster,
    metrics_reset,
    metrics_snapshot,
    mpc_kcenter,
    solve_kcenter,
)
from repro.obs import MetricsObserver, MetricsRegistry
from repro.obs.events import FaultEvent
from repro.obs.metrics import DEFAULT_TIME_BUCKETS


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_is_monotonic(self):
        c = MetricsRegistry().counter("x_total")
        c.set_total(5)
        c.set_total(3)  # projections never move a counter backwards
        assert c.value == 5

    def test_labels_get_or_create(self):
        reg = MetricsRegistry()
        fam = reg.counter("runs_total", labels=("algorithm",))
        fam.labels("kcenter").inc()
        fam.labels("kcenter").inc()
        fam.labels("diversity").inc()
        assert fam.labels("kcenter").value == 2
        assert fam.labels("diversity").value == 1


class TestGaugesAndHistograms:
    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3

    def test_histogram_bucket_assignment(self):
        h = MetricsRegistry().histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        cumulative = dict(h._solo().cumulative())
        assert cumulative["0.1"] == 1
        assert cumulative["1"] == 2  # integral bounds render undotted
        assert cumulative["+Inf"] == 3
        assert h._solo().count == 3
        assert h._solo().sum == pytest.approx(5.55)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a_total")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a_total", labels=("x",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("a_total", labels=("y",))

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        fam = reg.counter("a_total", labels=("l",))
        fam.labels("v").inc(7)
        reg.reset()
        assert fam.labels("v").value == 0
        assert reg.counter("a_total", labels=("l",)) is fam

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["c_total"][""] == 2
        assert snap["gauges"]["g"][""] == 1.5
        hist = snap["histograms"]["h_seconds"][""]
        assert hist["buckets"] == {"1": 1, "+Inf": 1}
        assert hist["count"] == 1
        assert json.loads(json.dumps(snap)) == snap  # JSON-safe

    def test_thread_safety_under_contention(self):
        c = MetricsRegistry().counter("hits_total")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestPrometheusRendering:
    def test_text_format(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", labels=("kind",)).labels("x").inc(3)
        reg.histogram("h_seconds", "a histogram", buckets=(0.5,)).observe(0.1)
        text = reg.render_prometheus()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 3\n' in text  # integers render undotted
        assert '# TYPE h_seconds histogram' in text
        assert 'h_seconds_bucket{le="0.5"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_families_render_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.counter("a_total").inc()
        text = reg.render_prometheus()
        assert text.index("a_total") < text.index("z_total")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("p",)).labels('we"ird\\x\n').inc()
        text = reg.render_prometheus()
        assert 'p="we\\"ird\\\\x\\n"' in text

    def test_write_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(4)
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert json.loads(path.read_text())["counters"]["c_total"][""] == 4


def _run_cluster(registry, n=200, k=4, seed=0):
    points = np.random.default_rng(seed).normal(size=(n, 2))
    oracle = CountingOracle(EuclideanMetric(points))
    cluster = MPCCluster(oracle, num_machines=4, seed=seed)
    cluster.obs.add(MetricsObserver(registry))
    result = mpc_kcenter(cluster, k, epsilon=0.3)
    return cluster, oracle, result


class TestMetricsObserver:
    def test_counts_match_cluster_ledger(self):
        reg = MetricsRegistry()
        cluster, oracle, _ = _run_cluster(reg)
        snap = reg.snapshot()["counters"]
        assert snap["repro_mpc_rounds_total"][""] == cluster.stats.rounds
        assert snap["repro_mpc_words_total"][""] == cluster.stats.total_words
        assert snap["repro_oracle_calls_total"][""] == oracle.calls
        assert snap["repro_oracle_evaluations_total"][""] == oracle.evaluations

    def test_phase_labels_present(self):
        reg = MetricsRegistry()
        _run_cluster(reg)
        phases = reg.snapshot()["counters"]["repro_phase_rounds_total"]
        assert any(key.startswith('phase="kcenter/') for key in phases)

    def test_keeps_message_fast_path(self):
        reg = MetricsRegistry()
        points = np.random.default_rng(0).normal(size=(50, 2))
        cluster = MPCCluster(EuclideanMetric(points), num_machines=2, seed=0)
        cluster.obs.add(MetricsObserver(reg))
        assert cluster.obs._message_listeners == 0

    def test_fault_events_routed_by_direction(self):
        reg = MetricsRegistry()
        obs = MetricsObserver(reg)
        obs.on_fault(FaultEvent("executor", "worker_kill", injected=True))
        obs.on_fault(FaultEvent("executor", "chunk_retry", injected=False))
        snap = reg.snapshot()["counters"]
        key = 'layer="executor",kind="worker_kill"'
        assert snap["repro_faults_injected_total"][key] == 1
        key = 'layer="executor",kind="chunk_retry"'
        assert snap["repro_faults_recovered_total"][key] == 1


class TestFacadeMetrics:
    def test_solve_feeds_global_registry(self):
        metrics_reset()
        points = np.random.default_rng(0).normal(size=(150, 2))
        solve_kcenter(points, k=3, eps=0.3, seed=1, machines=3)
        snap = metrics_snapshot()
        assert snap["counters"]["repro_solver_runs_total"][
            'algorithm="kcenter"'] == 1
        assert snap["counters"]["repro_mpc_rounds_total"][""] > 0
        assert 'algorithm="kcenter"' in snap["histograms"][
            "repro_solver_latency_seconds"]

    def test_counters_deterministic_for_fixed_seed(self):
        """Acceptance: identical counter values across seeded runs."""
        points = np.random.default_rng(0).normal(size=(150, 2))
        snaps = []
        for _ in range(2):
            metrics_reset()
            solve_kcenter(points, k=3, eps=0.3, seed=1, machines=3)
            snaps.append(metrics_snapshot()["counters"])
        assert snaps[0] == snaps[1]

    def test_repeated_solves_never_stack_observers(self):
        metrics_reset()
        points = np.random.default_rng(0).normal(size=(150, 2))
        oracle = CountingOracle(EuclideanMetric(points))
        from repro import build_cluster

        cluster = build_cluster(metric=oracle, machines=3, seed=1)
        solve_kcenter(k=3, eps=0.3, cluster=cluster)
        assert len(cluster.obs._observers) == 0  # facade detached its observer
        rounds_after_first = metrics_snapshot()["counters"][
            "repro_mpc_rounds_total"][""]
        solve_kcenter(k=3, eps=0.3, cluster=cluster)
        assert len(cluster.obs._observers) == 0
        snap = metrics_snapshot()["counters"]
        assert snap["repro_solver_runs_total"]['algorithm="kcenter"'] == 2
        assert snap["repro_mpc_rounds_total"][""] > rounds_after_first
