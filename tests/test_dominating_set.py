"""Tests for the dominating-set application (the paper's conclusion
claim: constant-factor MPC dominating set via k-bounded MIS in graphs
with bounded neighborhood independence)."""

import numpy as np
import pytest

from repro.baselines.greedy_dominating import greedy_dominating_set
from repro.core.dominating_set import (
    mpc_dominating_set,
    neighborhood_independence,
    verify_dominating_set,
)
from repro.exceptions import InvalidSolutionError
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.workloads.graphs import grid_graph_metric


@pytest.fixture
def geo_metric(rng):
    return EuclideanMetric(rng.uniform(0, 15, size=(300, 2)))


class TestMPCDominatingSet:
    @pytest.mark.parametrize("tau", [0.8, 1.5, 3.0])
    def test_output_dominates(self, geo_metric, tau):
        cluster = MPCCluster(geo_metric, 4, seed=0)
        ds = mpc_dominating_set(cluster, tau)
        verify_dominating_set(geo_metric, ds.ids, tau)

    def test_lower_bound_certifies(self, geo_metric):
        """greedy DS size >= LB must hold (LB is below the optimum)."""
        tau = 1.5
        cluster = MPCCluster(geo_metric, 4, seed=0)
        ds = mpc_dominating_set(cluster, tau)
        greedy = greedy_dominating_set(geo_metric, tau)
        assert ds.lower_bound <= greedy.size
        assert ds.lower_bound <= ds.size

    def test_constant_factor_vs_rho(self, geo_metric):
        """The MIS-based DS is within rho * (greedy DS) where rho is the
        neighborhood independence — the conclusion's constant factor.
        (greedy >= OPT, so this is implied by |MIS| <= rho * OPT.)"""
        tau = 1.5
        cluster = MPCCluster(geo_metric, 4, seed=0)
        ds = mpc_dominating_set(cluster, tau)
        rho = neighborhood_independence(geo_metric, tau, sample=50)
        greedy = greedy_dominating_set(geo_metric, tau)
        assert ds.size <= rho * greedy.size

    def test_result_is_independent_set(self, geo_metric):
        tau = 1.5
        cluster = MPCCluster(geo_metric, 4, seed=0)
        ds = mpc_dominating_set(cluster, tau)
        D = geo_metric.pairwise(ds.ids, ds.ids)
        np.fill_diagonal(D, np.inf)
        assert D.min() > tau

    def test_on_graph_metric(self):
        metric = grid_graph_metric(10, 10)
        cluster = MPCCluster(metric, 4, seed=0)
        ds = mpc_dominating_set(cluster, 1.0)
        verify_dominating_set(metric, ds.ids, 1.0)

    def test_determinism(self, geo_metric):
        sizes = []
        for _ in range(2):
            cluster = MPCCluster(geo_metric, 4, seed=21)
            sizes.append(mpc_dominating_set(cluster, 1.2).size)
        assert sizes[0] == sizes[1]

    def test_stats_attached(self, geo_metric):
        cluster = MPCCluster(geo_metric, 4, seed=0)
        ds = mpc_dominating_set(cluster, 1.5)
        assert ds.rounds > 0 and "rounds" in ds.stats
        assert ds.certified_ratio >= 1.0


class TestVerifier:
    def test_accepts_full_set(self, geo_metric):
        verify_dominating_set(geo_metric, np.arange(geo_metric.n), 0.0)

    def test_rejects_undominated(self):
        metric = EuclideanMetric([[0.0], [10.0]])
        with pytest.raises(InvalidSolutionError, match="undominated"):
            verify_dominating_set(metric, [0], 1.0)

    def test_rejects_empty_on_nonempty(self, geo_metric):
        with pytest.raises(InvalidSolutionError, match="empty"):
            verify_dominating_set(geo_metric, [], 1.0)

    def test_universe_restriction(self):
        metric = EuclideanMetric([[0.0], [10.0], [10.5]])
        verify_dominating_set(metric, [1], 1.0, universe=[1, 2])


class TestGreedyBaseline:
    def test_dominates(self, geo_metric):
        out = greedy_dominating_set(geo_metric, 1.5)
        verify_dominating_set(geo_metric, out, 1.5)

    def test_complete_graph_one_vertex(self):
        metric = EuclideanMetric(np.zeros((20, 2)))
        assert greedy_dominating_set(metric, 1.0).size == 1

    def test_empty_graph_tau_zero_distinct(self, rng):
        pts = rng.uniform(0, 100, size=(10, 2))
        metric = EuclideanMetric(pts)
        out = greedy_dominating_set(metric, 1e-9)
        assert out.size == 10  # everyone must dominate themselves

    def test_restricted_vertices(self, geo_metric):
        sub = np.arange(0, 100)
        out = greedy_dominating_set(geo_metric, 1.5, vertices=sub)
        assert np.isin(out, sub).all()
        verify_dominating_set(geo_metric, out, 1.5, universe=sub)


class TestNeighborhoodIndependence:
    def test_plane_constant_bounded(self, geo_metric):
        """In the Euclidean plane rho <= 5 for threshold balls."""
        rho = neighborhood_independence(geo_metric, 1.5, sample=80)
        assert 1 <= rho <= 6  # 5 + the center itself in the closed ball

    def test_complete_graph_rho_one(self):
        metric = EuclideanMetric(np.zeros((10, 2)))
        assert neighborhood_independence(metric, 1.0) == 1

    def test_sampled_vs_full_consistency(self, rng):
        pts = rng.uniform(0, 5, size=(40, 2))
        metric = EuclideanMetric(pts)
        full = neighborhood_independence(metric, 1.0)
        sampled = neighborhood_independence(metric, 1.0, sample=40)
        assert sampled == full
