"""End-to-end integration tests: every algorithm × several metrics ×
partitioners × constants presets, always validated against the problem
definition (never against the algorithm's own bookkeeping)."""

import numpy as np
import pytest

from repro.analysis.validation import (
    verify_diversity_solution,
    verify_k_bounded_mis,
    verify_kcenter_solution,
)
from repro.constants import TheoryConstants
from repro.core import mpc_diversity, mpc_k_bounded_mis, mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.metric.lp import ChebyshevMetric, ManhattanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.partition import block_partition, random_partition, skewed_partition
from repro.workloads.graphs import grid_graph_metric
from repro.workloads.registry import make_workload


METRICS = {
    "euclidean": lambda pts: EuclideanMetric(pts),
    "manhattan": lambda pts: ManhattanMetric(pts),
    "chebyshev": lambda pts: ChebyshevMetric(pts),
}

PARTITIONERS = {
    "random": random_partition,
    "block": block_partition,
    "skewed": skewed_partition,
}


@pytest.fixture(scope="module")
def pts():
    return np.random.default_rng(99).normal(scale=4.0, size=(250, 2))


class TestKCenterMatrix:
    @pytest.mark.parametrize("metric_name", list(METRICS))
    @pytest.mark.parametrize("part_name", list(PARTITIONERS))
    def test_metric_x_partition(self, pts, metric_name, part_name):
        metric = METRICS[metric_name](pts)
        parts = PARTITIONERS[part_name](metric.n, 4, np.random.default_rng(0))
        cluster = MPCCluster(metric, 4, partition=parts, seed=0)
        res = mpc_kcenter(cluster, 8, epsilon=0.25)
        verify_kcenter_solution(metric, res.centers, 8, res.radius)
        # the certified factor versus the coreset 4-approx chain:
        # radius <= tau_j <= r = coreset_value
        assert res.radius <= res.coreset_value + 1e-9


class TestDiversityMatrix:
    @pytest.mark.parametrize("metric_name", list(METRICS))
    def test_metrics(self, pts, metric_name):
        metric = METRICS[metric_name](pts)
        cluster = MPCCluster(metric, 4, seed=1)
        res = mpc_diversity(cluster, 8, epsilon=0.25)
        verify_diversity_solution(metric, res.ids, 8, res.diversity)
        assert res.diversity >= res.coreset_value - 1e-9


class TestGraphMetricEndToEnd:
    def test_kcenter_on_grid_graph(self):
        metric = grid_graph_metric(12, 12)  # 144 vertices
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_kcenter(cluster, 6, epsilon=0.25)
        verify_kcenter_solution(metric, res.centers, 6, res.radius)

    def test_mis_on_grid_graph(self):
        metric = grid_graph_metric(10, 10)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 1.0, k=30)
        verify_k_bounded_mis(metric, res, np.arange(metric.n))


class TestConstantsPresets:
    @pytest.mark.parametrize("preset", ["practical", "paper"])
    def test_both_presets_end_to_end(self, pts, preset):
        constants = (
            TheoryConstants.paper() if preset == "paper" else TheoryConstants.practical()
        )
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 4, seed=2)
        res = mpc_kcenter(cluster, 6, epsilon=0.3, constants=constants)
        verify_kcenter_solution(metric, res.centers, 6, res.radius)


class TestRegistryWorkloadsEndToEnd:
    @pytest.mark.parametrize(
        "name", ["gaussian", "uniform", "clustered", "duplicates", "chain"]
    )
    def test_kcenter_on_registry_workloads(self, name):
        wl = make_workload(name, 150, seed=4)
        cluster = MPCCluster(wl.metric, 3, seed=4)
        res = mpc_kcenter(cluster, 5, epsilon=0.3)
        verify_kcenter_solution(wl.metric, res.centers, 5, res.radius)

    @pytest.mark.parametrize("name", ["gaussian", "uniform", "manhattan-gaussian"])
    def test_diversity_on_registry_workloads(self, name):
        wl = make_workload(name, 120, seed=5)
        cluster = MPCCluster(wl.metric, 3, seed=5)
        res = mpc_diversity(cluster, 5, epsilon=0.3)
        verify_diversity_solution(wl.metric, res.ids, 5, res.diversity)


class TestCommunicationStaysAccounted:
    def test_every_round_has_stats(self, pts):
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 4, seed=0)
        mpc_kcenter(cluster, 6, epsilon=0.3)
        assert cluster.stats.rounds == cluster.round_no
        assert len(cluster.stats.rounds_log) == cluster.round_no
        assert cluster.stats.total_words > 0
