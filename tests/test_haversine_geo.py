"""Tests for the haversine metric and the geographic workload."""

import numpy as np
import pytest

from repro.metric.haversine import EARTH_RADIUS_KM, HaversineMetric
from repro.metric.validation import check_metric_axioms
from repro.workloads.geo import synthetic_cities, world_cities_metric


class TestHaversine:
    def test_known_distance_equator_quarter(self):
        # 90 degrees of longitude at the equator = quarter circumference
        m = HaversineMetric([[0.0, 0.0], [0.0, 90.0]])
        expected = 2 * np.pi * EARTH_RADIUS_KM / 4
        assert m.distance(0, 1) == pytest.approx(expected, rel=1e-6)

    def test_pole_to_pole(self):
        m = HaversineMetric([[90.0, 0.0], [-90.0, 0.0]])
        assert m.distance(0, 1) == pytest.approx(np.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_antimeridian_wrap(self):
        # 179.5°E to 179.5°W is ~111 km at the equator, not half the globe
        m = HaversineMetric([[0.0, 179.5], [0.0, -179.5]])
        assert m.distance(0, 1) < 150.0

    def test_same_point_zero(self):
        m = HaversineMetric([[48.85, 2.35], [48.85, 2.35]])
        assert m.distance(0, 1) == pytest.approx(0.0, abs=1e-9)

    def test_axioms(self, rng):
        coords, _ = synthetic_cities(60, rng=rng)
        check_metric_axioms(HaversineMetric(coords), sample_size=30)

    def test_custom_radius_scales(self):
        a = HaversineMetric([[0.0, 0.0], [0.0, 10.0]], radius=1.0)
        b = HaversineMetric([[0.0, 0.0], [0.0, 10.0]], radius=2.0)
        assert b.distance(0, 1) == pytest.approx(2 * a.distance(0, 1))

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError, match="latitudes"):
            HaversineMetric([[95.0, 0.0], [0.0, 0.0]])

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError, match="lat, lon"):
            HaversineMetric([[0.0, 0.0, 0.0]])

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError, match="radius"):
            HaversineMetric([[0.0, 0.0]], radius=0.0)

    def test_point_words(self):
        assert HaversineMetric([[0.0, 0.0]]).point_words() == 2


class TestGeoWorkload:
    def test_shapes_and_bounds(self, rng):
        coords, labels = synthetic_cities(200, rng=rng)
        assert coords.shape == (200, 2) and labels.shape == (200,)
        assert np.all(np.abs(coords[:, 0]) <= 89.0)
        assert np.all(coords[:, 1] >= -180.0) and np.all(coords[:, 1] < 180.0)

    def test_deterministic(self):
        a, _ = synthetic_cities(50, rng=np.random.default_rng(4))
        b, _ = synthetic_cities(50, rng=np.random.default_rng(4))
        assert np.array_equal(a, b)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            synthetic_cities(0, rng=rng)

    def test_world_cities_metric_end_to_end(self, rng):
        from repro.core import mpc_kcenter
        from repro.mpc.cluster import MPCCluster

        metric, labels = world_cities_metric(300, rng=rng)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_kcenter(cluster, 6, epsilon=0.3)
        from repro.analysis.validation import verify_kcenter_solution

        verify_kcenter_solution(metric, res.centers, 6, res.radius)
        assert 0 < res.radius < np.pi * EARTH_RADIUS_KM
