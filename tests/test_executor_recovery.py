"""Tests for the ProcessExecutor's fault-recovery ladder.

The worker-death branches: a forked chunk worker killed mid-chunk
(SIGKILL — it dies without reporting a byte), an undecodable payload,
the bounded chunk-retry path that re-executes only the affected chunks,
and the final degradation to a serial driver re-run when the budget is
exhausted.  ``max_workers`` is pinned > 1 throughout so the fork path
runs even on single-core CI.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.faults import FaultPlan
from repro.mpc.executor import ProcessExecutor, _WorkerFailure


def make_executor(**kwargs) -> ProcessExecutor:
    kwargs.setdefault("max_workers", 2)
    ex = ProcessExecutor(**kwargs)
    if ex.fallback_reason:
        pytest.skip(ex.fallback_reason)
    return ex


class TestWorkerDeath:
    """A worker that dies mid-chunk is detected and its chunk re-run."""

    def test_sigkill_mid_chunk_recovers(self, tmp_path):
        # the task SIGKILLs its own worker the first time index 0 runs —
        # a genuine kernel-delivered death, no atexit, no pipe flush.
        # The flag file makes the second (re-forked) execution succeed.
        flag = tmp_path / "killed-once"
        driver_pid = os.getpid()

        def task(i):
            if i == 0 and os.getpid() != driver_pid and not flag.exists():
                flag.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return i * i

        ex = make_executor()
        assert ex.map_indexed(task, 8) == [i * i for i in range(8)]
        stats = ex.recovery_stats()
        assert stats["chunk_retries"] == 1
        assert stats["serial_fallbacks"] == 0 and stats["degradations"] == []
        ex.shutdown()

    def test_injected_kill_dies_without_reporting(self):
        # plan-driven kill: the worker os._exit()s before writing a byte
        plan = FaultPlan(seed=3, worker_kill=1.0, worker_fault_attempts=1)
        ex = make_executor(faults=plan)
        assert ex.map_indexed(lambda i: i + 1, 6) == list(range(1, 7))
        stats = ex.recovery_stats()
        # both first-attempt chunks were killed and both were re-run
        assert stats["faults_injected"] == 2
        assert stats["chunk_retries"] == 2
        assert stats["serial_fallbacks"] == 0
        ex.shutdown()

    def test_only_dead_chunks_are_retried(self):
        # worker 0 faults, worker 1 doesn't (attempts=1 clears on retry);
        # a healthy chunk's tasks must not be re-executed
        plan = FaultPlan(seed=104, worker_kill=0.5, worker_fault_attempts=1)
        ex = make_executor()
        batch = ex._batch_no + 1
        faulted = [w for w in range(2) if plan.worker_fault(batch, w, 0)]
        if len(faulted) != 1:
            pytest.skip(f"seed does not single out one worker (got {faulted})")
        ex.set_fault_plan(plan)

        import tempfile
        with tempfile.TemporaryDirectory() as d:
            def task(i):
                # count executions per index via the filesystem: worker
                # mutations of driver state don't survive the fork
                path = os.path.join(d, f"ran-{i}")
                with open(path, "a") as fh:
                    fh.write("x")
                return i

            assert ex.map_indexed(task, 8) == list(range(8))
            runs = {
                i: len(open(os.path.join(d, f"ran-{i}")).read())
                for i in range(8)
            }
        healthy = 1 - faulted[0]
        # strided chunks: worker w owns indices w, w+2, w+4, ...
        assert all(runs[i] == 1 for i in range(healthy, 8, 2))
        assert all(runs[i] == 1 for i in range(faulted[0], 8, 2))  # killed pre-task
        ex.shutdown()


class TestCorruptPayload:
    def test_undecodable_payload_recovers(self):
        plan = FaultPlan(seed=5, worker_corrupt=1.0, worker_fault_attempts=1)
        ex = make_executor(faults=plan)
        assert ex.map_indexed(lambda i: i * 3, 6) == [i * 3 for i in range(6)]
        stats = ex.recovery_stats()
        assert stats["faults_injected"] == 2 and stats["chunk_retries"] == 2
        ex.shutdown()

    def test_delay_is_not_a_failure(self):
        plan = FaultPlan(seed=5, worker_delay=1.0, worker_delay_s=0.01)
        ex = make_executor(faults=plan)
        assert ex.map_indexed(lambda i: i, 6) == list(range(6))
        stats = ex.recovery_stats()
        assert stats["faults_injected"] == 2  # stragglers are injected...
        assert stats["chunk_retries"] == 0    # ...but need no recovery
        ex.shutdown()


class TestRetryExhaustion:
    def test_persistent_faults_degrade_to_serial(self):
        # the fault out-persists the budget: every re-fork dies too
        plan = FaultPlan(seed=7, worker_kill=1.0, worker_fault_attempts=10)
        ex = make_executor(faults=plan, chunk_retries=2)
        assert ex.map_indexed(lambda i: i + 10, 6) == [i + 10 for i in range(6)]
        stats = ex.recovery_stats()
        assert stats["serial_fallbacks"] == 1
        assert len(stats["degradations"]) == 1
        reason = stats["degradations"][0]
        assert "died without reporting" in reason
        assert "chunk retry budget 2 exhausted" in reason
        ex.shutdown()

    def test_zero_retry_budget_fails_straight_to_serial(self):
        plan = FaultPlan(seed=7, worker_corrupt=1.0, worker_fault_attempts=10)
        ex = make_executor(faults=plan, chunk_retries=0)
        assert ex.map_indexed(lambda i: i, 4) == list(range(4))
        stats = ex.recovery_stats()
        assert stats["chunk_retries"] == 0 and stats["serial_fallbacks"] == 1
        assert "undecodable payload" in stats["degradations"][0]
        ex.shutdown()

    def test_negative_chunk_retries_rejected(self):
        with pytest.raises(ValueError, match="chunk_retries"):
            ProcessExecutor(max_workers=2, chunk_retries=-1)


class TestFailureAggregation:
    """_WorkerFailure messages carry every failed chunk's reason."""

    def test_multiple_fatal_chunks_all_reported(self):
        def boom(i):
            if i in (0, 1):  # one failure per strided chunk
                raise RuntimeError(f"task {i} failed")
            return i

        ex = make_executor()
        with pytest.raises(_WorkerFailure) as exc:
            ex._fork_map(boom, 8)
        message = str(exc.value)
        assert "task 0 failed" in message and "task 1 failed" in message
        ex.shutdown()

    def test_exhaustion_message_aggregates_every_attempt(self):
        plan = FaultPlan(seed=7, worker_kill=1.0, worker_fault_attempts=10)
        ex = make_executor(faults=plan, chunk_retries=1)
        with pytest.raises(_WorkerFailure) as exc:
            ex._fork_map(lambda i: i, 6)
        message = str(exc.value)
        # 2 chunks × 2 attempts, every loss named, plus the budget note
        assert message.count("died without reporting") == 4
        assert "chunk retry budget 1 exhausted" in message
        ex.shutdown()

    def test_fatal_outranks_lost(self):
        # a real exception aborts immediately (it is deterministic);
        # the public path re-raises it from the serial re-run
        plan = FaultPlan(seed=3, worker_kill=0.5, worker_fault_attempts=10)

        def boom(i):
            if i == 1:
                raise RuntimeError("task 1 failed")
            return i

        ex = make_executor(faults=plan)
        with pytest.raises(RuntimeError, match="task 1"):
            ex.map_indexed(boom, 8)
        assert ex.recovery_stats()["serial_fallbacks"] == 1
        ex.shutdown()


class TestMapMachinesRecovery:
    """Recovered map_machines batches keep the RNG/oracle replay exact
    (the end-to-end bit-identity proof lives in test_faults.py)."""

    def test_rng_replay_survives_chunk_retry(self):
        import numpy as np

        class FakeMachine:
            def __init__(self, i):
                self.id = i
                self.rng = np.random.default_rng(i)

        def draw(mach):
            return float(mach.rng.random())

        serial = [draw(FakeMachine(i)) for i in range(6)]

        plan = FaultPlan(seed=3, worker_kill=1.0, worker_fault_attempts=1)
        ex = make_executor(faults=plan)
        machines = [FakeMachine(i) for i in range(6)]
        assert ex.map_machines(draw, machines) == serial
        assert ex.recovery_stats()["chunk_retries"] == 2
        # replayed RNG state: the next driver-side draw continues the
        # stream exactly where the (re-forked) worker left it
        expected_next = [np.random.default_rng(i).random(2)[1] for i in range(6)]
        assert [m.rng.random() for m in machines] == expected_next
        ex.shutdown()
