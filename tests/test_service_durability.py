"""Durability and multi-process semantics of the SQLite-backed service.

The ISSUE-7 acceptance bar:

(a) restart durability — stop a service after N jobs, reopen the same
    state directory → datasets, terminal results, and queued jobs
    survive, and results are bit-identical (CountingOracle ledger
    included) to an uninterrupted run;
(b) orphan recovery — a worker that dies mid-job (its process killed)
    stops heartbeating; a surviving manager detects the expired lease,
    re-enqueues through the retry machinery, and the re-run's result is
    bit-identical;
(c) cross-process cache sharing — a second process registering the
    same points (same fingerprint) gets the first process's cached
    result instantly;
(d) multiple workers + a frontend drain one shared queue concurrently.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.service import (
    DatasetRegistry,
    JobManager,
    JobSpec,
    JobState,
    open_stores,
)

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def canon(payload):
    """A job payload with wall-clock noise removed: everything left —
    centers, radius, MPC accounting, CountingOracle ledger, per-phase
    round/word/call counts — is covered by the determinism guarantee
    and must be bit-identical across runs, backends, and processes."""
    return {
        **payload,
        "phases": [
            {k: v for k, v in row.items() if k != "wall_s"}
            for row in payload["phases"]
        ],
    }


@pytest.fixture
def points():
    return np.random.default_rng(11).normal(scale=2.0, size=(120, 2))


def make_manager(state_dir, *, role="all", workers=1, lease_s=0.4, **kw):
    stores = open_stores(state_dir, queue_limit=16)
    return JobManager(
        DatasetRegistry(stores.datasets),
        stores=stores,
        role=role,
        workers=workers,
        lease_s=lease_s,
        **kw,
    )


def run_reference(points, **spec_kw):
    """The uninterrupted single-process run every scenario compares to."""
    manager = make_manager(None)  # in-memory
    manager.stores.backend  # touch to be explicit: memory bundle
    ds = manager.datasets.register_points(points)
    manager.start()
    try:
        job = manager.submit(JobSpec(dataset=ds.id, **spec_kw))
        return manager.wait(job.id, timeout=120).result
    finally:
        manager.stop()


def make_manager_memory():
    return JobManager(DatasetRegistry(), workers=1)


class TestRestartDurability:
    def test_state_survives_restart_bit_identical(self, tmp_path, points):
        state = str(tmp_path / "state")
        reference = run_reference(points, algorithm="kcenter", k=6, seed=3)

        m1 = make_manager(state).start()
        ds = m1.datasets.register_points(points)
        spec = JobSpec(algorithm="kcenter", dataset=ds.id, k=6, seed=3)
        job = m1.submit(spec)
        done = m1.wait(job.id, timeout=120)
        assert done.state is JobState.DONE
        m1.stop()

        # a brand-new process on the same directory sees everything
        m2 = make_manager(state)
        assert len(m2.datasets) == 1
        assert m2.datasets.get(ds.id).fingerprint == ds.fingerprint
        revived = m2.get(job.id)
        assert revived.state is JobState.DONE
        # bit-identical to the uninterrupted in-memory run — centers,
        # radius, AND the CountingOracle ledger
        assert canon(revived.result) == canon(reference)
        assert revived.result == done.result
        m2.stop()

    def test_queued_jobs_resume_after_restart(self, tmp_path, points):
        state = str(tmp_path / "state")
        # frontend-only manager: accepts and persists, never executes
        front = make_manager(state, role="frontend").start()
        ds = front.datasets.register_points(points)
        ids = [
            front.submit(
                JobSpec(algorithm="kcenter", dataset=ds.id, k=4, seed=s)
            ).id
            for s in range(3)
        ]
        assert front.stats()["jobs_by_state"]["queued"] == 3
        front.stop()

        # restart as a full node: startup recovery re-pushes the queued
        # records into the (fresh) work queue and the pool drains them
        node = make_manager(state).start()
        try:
            for jid in ids:
                assert node.wait(jid, timeout=120).state is JobState.DONE
        finally:
            node.stop()


class TestOrphanRecovery:
    def _submit_and_orphan(self, state, points):
        """Persist a job, then have a *separate process* claim it and
        die (os._exit) without finishing — a real worker crash."""
        front = make_manager(state, role="frontend", lease_s=0.4).start()
        ds = front.datasets.register_points(points)
        job = front.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=5, seed=7))
        code = (
            "import os, sys, time\n"
            "from repro.service import open_stores\n"
            f"stores = open_stores({state!r})\n"
            f"jid = stores.work_queue.pop(timeout=5)\n"
            "assert jid is not None\n"
            "rec = stores.jobs.claim(jid, 'ghost:1', time.time() + 0.4)\n"
            "assert rec is not None\n"
            "os._exit(9)\n"  # SIGKILL-equivalent: no cleanup, lease dangles
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": SRC},
            timeout=60,
        )
        assert proc.returncode == 9
        assert front.get(job.id).state is JobState.RUNNING
        return front, job

    def test_orphan_requeued_and_result_bit_identical(self, tmp_path, points):
        state = str(tmp_path / "state")
        reference = run_reference(points, algorithm="kcenter", k=5, seed=7)
        front, job = self._submit_and_orphan(state, points)

        time.sleep(0.5)  # let the ghost's lease expire
        recovered = front.recover_now()
        assert recovered["orphaned"] == 1
        assert recovered["requeued"] == 1
        stats = front.stats()
        assert stats["orphans"]["orphaned_total"] == 1
        assert stats["orphans"]["requeued_total"] == 1
        kinds = [e["kind"] for e in stats["orphans"]["recent_events"]]
        assert "worker_lost" in kinds and "orphan_requeue" in kinds
        assert front.recent_orphan_activity()
        rec = front.stores.jobs.get(job.id)
        assert rec.state == "queued"
        assert rec.attempt == 1
        assert "orphaned" in rec.attempts[-1]["error"]

        # a healthy worker node drains the requeued job; the result —
        # CountingOracle ledger included — matches the uninterrupted run
        worker = make_manager(state, role="worker", lease_s=5.0).start()
        try:
            done = front.wait(job.id, timeout=120)
            assert done.state is JobState.DONE
            assert done.attempt == 1  # recorded recovery, same answer
            assert canon(done.result) == canon(reference)
        finally:
            worker.stop()
            front.stop()

    def test_orphan_metrics_exported(self, tmp_path, points):
        state = str(tmp_path / "state")
        front, job = self._submit_and_orphan(state, points)
        time.sleep(0.5)
        front.recover_now()
        text = front.sync_metrics().render_prometheus()
        assert "repro_jobs_orphaned_total 1" in text
        assert "repro_jobs_orphan_requeued_total 1" in text
        front.stop()

    def test_orphan_budget_exhaustion_fails_job(self, tmp_path, points):
        state = str(tmp_path / "state")
        front = make_manager(
            state, role="frontend", lease_s=0.2, orphan_requeue_budget=0
        ).start()
        ds = front.datasets.register_points(points)
        job = front.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=4))
        jid = front.stores.work_queue.pop(timeout=2)
        assert front.stores.jobs.claim(jid, "ghost:1", time.time() + 0.2) is not None
        time.sleep(0.3)
        front.recover_now()
        done = front.get(job.id)
        assert done.state is JobState.FAILED
        assert "requeue budget" in done.error
        assert front.stats()["orphans"]["exhausted_total"] == 1
        front.stop()


class TestCrossProcessCacheSharing:
    def test_second_registration_hits_shared_cache(self, tmp_path, points):
        state = str(tmp_path / "state")
        m1 = make_manager(state).start()
        ds1 = m1.datasets.register_points(points)
        spec = dict(algorithm="kcenter", k=5, eps=0.2, seed=1)
        done = m1.wait(m1.submit(JobSpec(dataset=ds1.id, **spec)).id, timeout=120)
        assert done.cached is False
        m1.stop()

        # a different "process": fresh store handles, fresh registry —
        # the same bytes fingerprint to the same dataset id, and the
        # cache key (fingerprint-based) finds the stored result
        m2 = make_manager(state)
        ds2 = m2.datasets.register_points(points.copy())
        assert ds2.id == ds1.id and ds2.fingerprint == ds1.fingerprint
        job = m2.submit(JobSpec(dataset=ds2.id, **spec))
        assert job.cached is True
        assert job.state is JobState.DONE
        assert job.result == done.result
        assert m2.cache.stats()["hits_total"] >= 1
        m2.stop()

    def test_cache_shared_with_true_subprocess(self, tmp_path, points):
        state = str(tmp_path / "state")
        np.save(tmp_path / "pts.npy", points)
        code = (
            "import numpy as np\n"
            "from repro.service import DatasetRegistry, JobManager, JobSpec, open_stores\n"
            f"pts = np.load({str(tmp_path / 'pts.npy')!r})\n"
            f"stores = open_stores({state!r})\n"
            "mgr = JobManager(DatasetRegistry(stores.datasets), stores=stores, workers=1)\n"
            "mgr.start()\n"
            "ds = mgr.datasets.register_points(pts)\n"
            "job = mgr.submit(JobSpec(algorithm='kcenter', dataset=ds.id, k=5, seed=2))\n"
            "done = mgr.wait(job.id, timeout=120)\n"
            "assert done.state.value == 'done', done.error\n"
            "mgr.stop()\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": SRC},
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        mgr = make_manager(state)
        ds = mgr.datasets.register_points(points)
        job = mgr.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=5, seed=2))
        assert job.cached is True  # the subprocess's run was reused
        mgr.stop()


class TestSharedQueueConcurrency:
    def test_two_workers_one_frontend_drain_burst(self, tmp_path, points):
        state = str(tmp_path / "state")
        front = make_manager(state, role="frontend", lease_s=10.0).start()
        w1 = make_manager(state, role="worker", workers=1, lease_s=10.0,
                          worker_id="w1").start()
        w2 = make_manager(state, role="worker", workers=1, lease_s=10.0,
                          worker_id="w2").start()
        try:
            ds = front.datasets.register_points(points)
            ids = [
                front.submit(
                    JobSpec(algorithm="kcenter", dataset=ds.id, k=4, seed=s)
                ).id
                for s in range(6)
            ]
            done = [front.wait(jid, timeout=180) for jid in ids]
            assert all(j.state is JobState.DONE for j in done)
            # distinct seeds → distinct results, all completed exactly once
            workers_used = {
                front.stores.jobs.get(j.id).worker for j in done
            }
            assert workers_used == {None}  # finish clears the lease owner
            assert front.stats()["jobs_by_state"]["done"] == 6
        finally:
            w1.stop()
            w2.stop()
            front.stop()
