"""Tests for Algorithm 4 — the MPC k-bounded MIS (Theorems 13–15).

The heart of the suite: the Definition 1 contract is validated against
the problem definition across thresholds, machine counts, seeds,
partitions, metrics, and constants presets.
"""

import numpy as np
import pytest

from repro.analysis.validation import verify_k_bounded_mis
from repro.constants import TheoryConstants
from repro.core.kbounded_mis import _sample_probability, mpc_k_bounded_mis
from repro.metric.euclidean import EuclideanMetric
from repro.metric.lp import ManhattanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.partition import block_partition


class TestSampleProbability:
    def test_clamped_for_small_p(self):
        q = _sample_probability(np.array([0.0, 0.25, 0.5]))
        assert np.array_equal(q, [1.0, 1.0, 1.0])

    def test_formula_above_half(self):
        q = _sample_probability(np.array([1.0, 2.0, 10.0]))
        assert np.allclose(q, [0.5, 0.25, 0.05])


class TestContract:
    @pytest.mark.parametrize("tau", [0.2, 0.6, 1.2, 3.0])
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_contract_across_taus_and_machines(self, medium_metric, tau, m):
        cluster = MPCCluster(medium_metric, m, seed=0)
        res = mpc_k_bounded_mis(cluster, tau, k=12)
        verify_k_bounded_mis(medium_metric, res, np.arange(medium_metric.n))

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_contract_across_seeds(self, medium_metric, seed):
        cluster = MPCCluster(medium_metric, 4, seed=seed)
        res = mpc_k_bounded_mis(cluster, 0.8, k=10)
        verify_k_bounded_mis(medium_metric, res, np.arange(medium_metric.n))

    def test_contract_paper_constants(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_k_bounded_mis(
            cluster, 0.8, k=10, constants=TheoryConstants.paper()
        )
        verify_k_bounded_mis(medium_metric, res, np.arange(medium_metric.n))

    def test_contract_block_partition(self, medium_metric):
        parts = block_partition(medium_metric.n, 4)
        cluster = MPCCluster(medium_metric, 4, partition=parts, seed=0)
        res = mpc_k_bounded_mis(cluster, 0.8, k=10)
        verify_k_bounded_mis(medium_metric, res, np.arange(medium_metric.n))

    def test_contract_manhattan_metric(self, rng):
        metric = ManhattanMetric(rng.normal(size=(200, 3)))
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_k_bounded_mis(cluster, 1.0, k=8)
        verify_k_bounded_mis(metric, res, np.arange(metric.n))

    def test_active_subset_restriction(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        active = [mach.local_ids[::2] for mach in cluster.machines]
        universe = np.concatenate(active)
        res = mpc_k_bounded_mis(cluster, 0.8, k=10, active_by_machine=active)
        verify_k_bounded_mis(medium_metric, res, universe)
        assert np.isin(res.ids, universe).all()


class TestTerminationModes:
    def test_empty_graph_returns_size_k_fast(self, rng):
        """tau below every distance: all isolated, immediate k-IS."""
        pts = rng.uniform(0, 1000, size=(300, 2))
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 1e-6, k=20)
        assert res.size == 20
        assert res.terminated_via in ("size_k_pruning", "size_k_central", "size_k_light_path")

    def test_complete_graph_returns_maximal_singleton(self):
        """All points identical: the MIS is a single vertex."""
        metric = EuclideanMetric(np.zeros((100, 2)))
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 1.0, k=5)
        assert res.size == 1 and res.maximal
        assert res.terminated_via == "maximal"

    def test_k_one(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 0.5, k=1)
        assert res.size == 1

    def test_invalid_k(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        with pytest.raises(ValueError):
            mpc_k_bounded_mis(cluster, 0.5, k=0)

    def test_huge_k_returns_maximal(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 0.8, k=10_000)
        assert res.maximal
        verify_k_bounded_mis(medium_metric, res, np.arange(medium_metric.n))

    def test_pruning_disabled_still_correct(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 0.8, k=10, enable_pruning=False)
        verify_k_bounded_mis(medium_metric, res, np.arange(medium_metric.n))

    @pytest.mark.parametrize("mode", ["random", "id"])
    def test_trim_modes_correct(self, medium_metric, mode):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 0.8, k=10, trim_mode=mode)
        verify_k_bounded_mis(medium_metric, res, np.arange(medium_metric.n))


class TestRoundsAndInstrumentation:
    def test_rounds_reported(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        before = cluster.round_no
        res = mpc_k_bounded_mis(cluster, 0.8, k=10)
        assert res.rounds == cluster.round_no - before > 0

    def test_edge_trace_decreasing(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 0.6, k=2_000, instrument=True)
        trace = res.edge_trace
        assert len(trace) >= 1
        assert all(trace[i + 1] <= trace[i] for i in range(len(trace) - 1))
        if res.maximal:
            assert trace[-1] == 0 or res.rounds > 0

    def test_no_trace_without_instrument(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_k_bounded_mis(cluster, 0.6, k=10)
        assert res.edge_trace == []

    def test_determinism(self, medium_metric):
        out = []
        for _ in range(2):
            cluster = MPCCluster(medium_metric, 4, seed=42)
            res = mpc_k_bounded_mis(cluster, 0.7, k=15)
            out.append((tuple(np.sort(res.ids)), res.rounds, cluster.stats.total_words))
        assert out[0] == out[1]

    def test_convergence_error_on_tiny_budget(self, medium_metric):
        from repro.exceptions import ConvergenceError

        cluster = MPCCluster(medium_metric, 4, seed=0)
        with pytest.raises(ConvergenceError):
            mpc_k_bounded_mis(cluster, 0.6, k=3_000, max_outer_rounds=0)
