"""Tests for the trim primitive of Algorithm 4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.trim import trim
from repro.metric.euclidean import EuclideanMetric


@pytest.fixture
def line_metric():
    return EuclideanMetric(np.arange(8, dtype=float).reshape(-1, 1))


def priorities(n, values=None, rng=None):
    p = np.zeros(n) if values is None else np.asarray(values, dtype=float)
    tie = (rng or np.random.default_rng(0)).random(n)
    return p, tie


class TestBasics:
    def test_empty_and_singleton(self, line_metric):
        p, tie = priorities(8)
        assert trim(line_metric, [], 1.0, p, tie).size == 0
        assert np.array_equal(trim(line_metric, [3], 1.0, p, tie), [3])

    def test_keeps_local_maxima(self, line_metric):
        # path graph 0-1-2; p = [1, 5, 2]: only 1 survives among {0,1,2}
        p = np.array([1.0, 5.0, 2.0, 0, 0, 0, 0, 0])
        tie = np.zeros(8)
        out = trim(line_metric, [0, 1, 2], 1.0, p, tie, mode="id")
        assert np.array_equal(out, [1])

    def test_non_adjacent_all_survive(self, line_metric):
        p, tie = priorities(8)
        out = trim(line_metric, [0, 3, 6], 1.0, p, tie)
        assert np.array_equal(np.sort(out), [0, 3, 6])

    def test_output_always_independent(self, line_metric, rng):
        p = rng.random(8) * 10
        tie = rng.random(8)
        for tau in (0.5, 1.0, 2.5, 7.0):
            out = trim(line_metric, np.arange(8), tau, p, tie)
            if out.size >= 2:
                D = line_metric.pairwise(out, out)
                np.fill_diagonal(D, np.inf)
                assert D.min() > tau

    def test_duplicate_input_ids_collapsed(self, line_metric):
        p, tie = priorities(8)
        out = trim(line_metric, [2, 2, 2], 1.0, p, tie)
        assert np.array_equal(out, [2])


class TestTieBreaking:
    def test_paper_mode_stalls_on_ties(self, line_metric):
        # all priorities equal on a connected sample: strict > never holds
        p = np.ones(8)
        out = trim(line_metric, np.arange(8), 1.0, p, mode="paper")
        assert out.size == 0  # the documented livelock of the literal rule

    def test_random_mode_progresses_on_ties(self, line_metric, rng):
        p = np.ones(8)
        tie = rng.random(8)
        out = trim(line_metric, np.arange(8), 1.0, p, tie, mode="random")
        assert out.size >= 1

    def test_id_mode_deterministic(self, line_metric):
        p = np.ones(8)
        a = trim(line_metric, np.arange(8), 1.0, p, mode="id")
        b = trim(line_metric, np.arange(8), 1.0, p, mode="id")
        assert np.array_equal(a, b) and a.size >= 1

    def test_random_mode_requires_tie(self, line_metric):
        with pytest.raises(ValueError, match="tie"):
            trim(line_metric, [0, 1], 1.0, np.ones(8), None, mode="random")

    def test_unknown_mode(self, line_metric):
        with pytest.raises(ValueError, match="unknown trim mode"):
            trim(line_metric, [0, 1], 1.0, np.ones(8), np.ones(8), mode="bogus")

    def test_paper_mode_works_with_distinct_priorities(self, line_metric):
        p = np.arange(8, dtype=float)
        out = trim(line_metric, np.arange(8), 1.0, p, mode="paper")
        assert 7 in out  # the global max always survives


@settings(max_examples=40, deadline=None)
@given(
    pts=arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 15), st.just(2)),
        elements=st.floats(-10, 10, allow_nan=False),
    ),
    tau=st.floats(0.1, 5.0),
    seed=st.integers(0, 100),
)
def test_trim_always_independent_property(pts, tau, seed):
    """Hypothesis: trim output is an independent set for any priorities."""
    m = EuclideanMetric(pts)
    rng = np.random.default_rng(seed)
    p = rng.random(m.n) * 20
    tie = rng.random(m.n)
    out = trim(m, np.arange(m.n), tau, p, tie)
    if out.size >= 2:
        D = m.pairwise(out, out)
        np.fill_diagonal(D, np.inf)
        assert D.min() > tau


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000))
def test_trim_nonempty_on_nonempty_sample_property(seed):
    """Hypothesis: with the random tie-break, a nonempty sample always
    keeps at least its key-maximum vertex."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(12, 2))
    m = EuclideanMetric(pts)
    p = rng.random(12)
    tie = rng.random(12)
    out = trim(m, np.arange(12), float(rng.uniform(0.1, 3.0)), p, tie)
    assert out.size >= 1
