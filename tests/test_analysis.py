"""Tests for the analysis package: validators, bounds, ratios,
experiments, reports, theory envelopes."""

import numpy as np
import pytest

from repro.analysis.experiments import Trial, aggregate, run_trials
from repro.analysis.lower_bounds import (
    diversity_upper_bound,
    kcenter_lower_bound,
    ksupplier_lower_bound,
)
from repro.analysis.ratios import diversity_ratio, kcenter_ratio, ksupplier_ratio
from repro.analysis.reports import format_table
from repro.analysis.theory import (
    communication_bound_words,
    ladder_length,
    memory_bound_words,
    round_bound,
)
from repro.analysis.validation import (
    verify_diversity_solution,
    verify_independent_set,
    verify_kcenter_solution,
    verify_ksupplier_solution,
    verify_maximal_independent_set,
)
from repro.baselines.exact import exact_diversity, exact_kcenter
from repro.exceptions import InvalidSolutionError
from repro.metric.euclidean import EuclideanMetric


@pytest.fixture
def line():
    return EuclideanMetric(np.arange(10, dtype=float).reshape(-1, 1))


class TestValidators:
    def test_independent_accepts(self, line):
        verify_independent_set(line, [0, 3, 6], 1.5)

    def test_independent_rejects(self, line):
        with pytest.raises(InvalidSolutionError, match="independent"):
            verify_independent_set(line, [0, 1], 1.5)

    def test_maximal_accepts(self, line):
        verify_maximal_independent_set(line, [0, 2, 4, 6, 8], 1.0, np.arange(10))

    def test_maximal_rejects_non_dominating(self, line):
        with pytest.raises(InvalidSolutionError, match="maximal"):
            verify_maximal_independent_set(line, [0], 1.0, np.arange(10))

    def test_kcenter_accepts_and_returns_radius(self, line):
        r = verify_kcenter_solution(line, [2, 7], 2, claimed_radius=2.5)
        assert r == pytest.approx(2.0)

    def test_kcenter_rejects_undercount(self, line):
        with pytest.raises(InvalidSolutionError, match="radius"):
            verify_kcenter_solution(line, [0], 1, claimed_radius=5.0)

    def test_kcenter_rejects_too_many_centers(self, line):
        with pytest.raises(InvalidSolutionError, match="centers"):
            verify_kcenter_solution(line, [0, 1, 2], 2, claimed_radius=100.0)

    def test_diversity_accepts(self, line):
        verify_diversity_solution(line, [0, 5, 9], 3, claimed_diversity=4.0)

    def test_diversity_rejects_overclaim(self, line):
        with pytest.raises(InvalidSolutionError, match="diversity"):
            verify_diversity_solution(line, [0, 5, 9], 3, claimed_diversity=5.0)

    def test_diversity_rejects_wrong_size(self, line):
        with pytest.raises(InvalidSolutionError, match="exactly"):
            verify_diversity_solution(line, [0, 0, 9], 3, claimed_diversity=1.0)

    def test_supplier_accepts(self, line):
        verify_ksupplier_solution(line, [0, 1, 2], [5, 9], [5], 1, claimed_radius=5.0)

    def test_supplier_rejects_non_supplier(self, line):
        with pytest.raises(InvalidSolutionError, match="not a supplier"):
            verify_ksupplier_solution(line, [0, 1], [5], [3], 1, claimed_radius=99.0)


class TestBounds:
    def test_kcenter_lb_below_opt(self, rng):
        pts = rng.normal(size=(14, 2))
        m = EuclideanMetric(pts)
        _, opt = exact_kcenter(m, 3)
        assert kcenter_lower_bound(m, 3) <= opt + 1e-9

    def test_kcenter_lb_zero_when_k_ge_n(self, line):
        assert kcenter_lower_bound(line, 10) == 0.0

    def test_diversity_ub_above_opt(self, rng):
        pts = rng.normal(size=(14, 2))
        m = EuclideanMetric(pts)
        _, opt = exact_diversity(m, 3)
        assert diversity_upper_bound(m, 3) >= opt - 1e-9

    def test_supplier_lb_below_opt(self, rng):
        from repro.baselines.exact import exact_ksupplier

        pts = rng.normal(size=(14, 2))
        m = EuclideanMetric(pts)
        C, S = np.arange(9), np.arange(9, 14)
        _, opt = exact_ksupplier(m, C, S, 2)
        assert ksupplier_lower_bound(m, C, S, 2) <= opt + 1e-9


class TestRatios:
    def test_exact_path_taken_on_small(self, rng):
        m = EuclideanMetric(rng.normal(size=(12, 2)))
        r = kcenter_ratio(m, radius=1.0, k=3)
        assert r.reference_kind == "exact"
        assert r.ratio == pytest.approx(1.0 / r.reference)

    def test_bound_path_on_large(self, rng):
        m = EuclideanMetric(rng.normal(size=(400, 2)))
        r = kcenter_ratio(m, radius=1.0, k=20)
        assert r.reference_kind == "bound"

    def test_diversity_ratio_orientation(self, rng):
        m = EuclideanMetric(rng.normal(size=(12, 2)))
        _, opt = exact_diversity(m, 3)
        r = diversity_ratio(m, opt, 3)
        assert r.ratio == pytest.approx(1.0)

    def test_zero_reference(self):
        from repro.analysis.ratios import Ratio

        assert Ratio(0.0, 0.0, "exact").ratio == 1.0
        assert Ratio(1.0, 0.0, "exact").ratio == float("inf")

    def test_supplier_ratio(self, rng):
        m = EuclideanMetric(rng.normal(size=(20, 2)))
        r = ksupplier_ratio(m, np.arange(12), np.arange(12, 20), 5.0, 3)
        assert r.reference_kind == "bound" and r.ratio >= 1.0 or r.ratio > 0


class TestExperiments:
    def test_run_trials(self):
        trials = run_trials(lambda s: {"x": s * 2.0}, seeds=[1, 2, 3])
        assert [t.metrics["x"] for t in trials] == [2.0, 4.0, 6.0]

    def test_aggregate(self):
        trials = [Trial(0, {"a": 1.0}), Trial(1, {"a": 3.0})]
        agg = aggregate(trials)
        assert agg["a"]["mean"] == 2.0
        assert agg["a"]["min"] == 1.0 and agg["a"]["max"] == 3.0
        assert agg["a"]["n"] == 2

    def test_aggregate_empty(self):
        assert aggregate([]) == {}

    def test_aggregate_skips_non_numeric(self):
        trials = [Trial(0, {"a": 1.0, "tag": "x"})]
        agg = aggregate(trials)
        assert "tag" not in agg


class TestReports:
    def test_basic_table(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        assert "a" in out and "b" in out and "10" in out

    def test_title_and_missing_cells(self):
        out = format_table([{"a": 1}, {"b": 2}], title="T")
        assert out.startswith("T\n")
        assert "-" in out

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_float_formats(self):
        out = format_table([{"x": 1e-9, "y": 123456.0, "z": float("nan")}])
        assert "e" in out  # scientific for extremes
        assert "-" in out  # NaN dash

    def test_bool_rendering(self):
        out = format_table([{"ok": True}])
        assert "yes" in out

    def test_markdown_style(self):
        out = format_table([{"a": 1, "b": 2.5}], style="markdown", title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "| a | b |"
        assert lines[2] == "|---|---|"
        assert lines[3] == "| 1 | 2.500 |"

    def test_unknown_style(self):
        with pytest.raises(ValueError, match="style"):
            format_table([{"a": 1}], style="html")


class TestTheory:
    def test_communication_shape(self):
        assert communication_bound_words(1000, 8, 10) == pytest.approx(
            8 * 10 * np.log(1000) * 2
        )

    def test_memory_shape(self):
        v = memory_bound_words(1000, 8, 10)
        assert v > 0

    def test_round_bound(self):
        assert round_bound(0.5) == 2.0
        with pytest.raises(ValueError):
            round_bound(0.0)

    def test_ladder_length_decreasing_in_eps(self):
        assert ladder_length(0.05) > ladder_length(0.5)
        with pytest.raises(ValueError):
            ladder_length(0.0)
