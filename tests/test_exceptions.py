"""Tests for the exception taxonomy."""

import pytest

from repro.exceptions import (
    CommunicationLimitExceeded,
    ConvergenceError,
    InfeasibleInstanceError,
    InvalidSolutionError,
    MemoryLimitExceeded,
    MPCError,
    PartitionError,
    ReproError,
    SolutionError,
    UnknownPointError,
)


class TestHierarchy:
    def test_all_are_repro_errors(self):
        for exc in (
            MemoryLimitExceeded(0, 1, 2),
            CommunicationLimitExceeded(0, 1, 2, 3),
            UnknownPointError(0, 1),
            PartitionError("x"),
            InvalidSolutionError("x"),
            InfeasibleInstanceError("x"),
            ConvergenceError("alg", 10),
        ):
            assert isinstance(exc, ReproError)

    def test_mpc_branch(self):
        assert issubclass(MemoryLimitExceeded, MPCError)
        assert issubclass(CommunicationLimitExceeded, MPCError)
        assert issubclass(UnknownPointError, MPCError)
        assert issubclass(PartitionError, MPCError)

    def test_solution_branch(self):
        assert issubclass(InvalidSolutionError, SolutionError)
        assert issubclass(InfeasibleInstanceError, SolutionError)
        assert not issubclass(InvalidSolutionError, MPCError)


class TestPayloads:
    def test_memory_limit_carries_context(self):
        e = MemoryLimitExceeded(3, 100, 50)
        assert e.machine_id == 3 and e.used == 100 and e.limit == 50
        assert "machine 3" in str(e)

    def test_comm_limit_carries_context(self):
        e = CommunicationLimitExceeded(2, 7, 999, 100)
        assert e.round_no == 7
        assert "round 7" in str(e)

    def test_unknown_point_carries_context(self):
        e = UnknownPointError(1, 42)
        assert e.point_id == 42
        assert "42" in str(e)

    def test_convergence_mentions_algorithm(self):
        e = ConvergenceError("mpc_k_bounded_mis", 200)
        assert "mpc_k_bounded_mis" in str(e)
        assert e.rounds == 200

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise UnknownPointError(0, 0)
