"""Structured logging (:mod:`repro.obs.logging`) and source hygiene.

The logging layer emits one JSON object per line with ``trace_id`` /
``span_id`` stamped from the ambient :func:`~repro.obs.tracing.
current_trace`; the hygiene check walks ``src/repro`` and forbids bare
``print(`` / ``sys.stderr.write`` outside the CLI — library code must
log through :func:`repro.obs.logging.get_logger` (mirrors the ruff
``T20`` rule CI enforces).
"""

from __future__ import annotations

import ast
import io
import json
import logging
from pathlib import Path

import pytest

from repro.obs.logging import (
    configure,
    get_logger,
    unconfigure,
)
from repro.obs.tracing import TraceContext, use_trace

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture
def json_log():
    stream = io.StringIO()
    configure(fmt="json", level=logging.DEBUG, stream=stream)
    yield stream
    unconfigure()


def _lines(stream: io.StringIO) -> list:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogging:
    def test_one_json_object_per_line(self, json_log):
        log = get_logger("repro.test")
        log.info("first thing")
        log.warning("second thing", extra={"job_id": "job-1"})
        lines = _lines(json_log)
        assert len(lines) == 2
        assert lines[0]["event"] == "first thing"
        assert lines[0]["level"] == "info"
        assert lines[0]["logger"] == "repro.test"
        assert lines[1]["job_id"] == "job-1"

    def test_trace_ids_stamped_from_ambient_context(self, json_log):
        ctx = TraceContext.from_seed(4)
        with use_trace(ctx):
            get_logger("repro.test").info("inside")
        get_logger("repro.test").info("outside")
        inside, outside = _lines(json_log)
        assert inside["trace_id"] == ctx.trace_id
        assert inside["span_id"] == ctx.span_id
        assert "trace_id" not in outside

    def test_explicit_extra_wins_over_ambient(self, json_log):
        with use_trace(TraceContext.from_seed(4)):
            get_logger("repro.test").info("x", extra={"trace_id": "override"})
        assert _lines(json_log)[0]["trace_id"] == "override"

    def test_exception_rendered_inline(self, json_log):
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("repro.test").exception("it broke")
        (line,) = _lines(json_log)
        assert line["level"] == "error"
        assert "ValueError: boom" in line["exc"]

    def test_text_format_and_bad_format(self):
        stream = io.StringIO()
        configure(fmt="text", stream=stream)
        try:
            with use_trace(TraceContext.from_seed(4)):
                get_logger("repro.test").info("readable")
            out = stream.getvalue()
            assert "readable" in out and "json" not in out.lower()
        finally:
            unconfigure()
        with pytest.raises(ValueError):
            configure(fmt="yaml")

    def test_reconfigure_replaces_handler(self):
        a, b = io.StringIO(), io.StringIO()
        configure(fmt="json", stream=a)
        configure(fmt="json", stream=b)
        try:
            get_logger("repro.test").info("hello")
        finally:
            unconfigure()
        assert a.getvalue() == ""
        assert json.loads(b.getvalue())["event"] == "hello"

    def test_unconfigured_logging_is_silent_and_cheap(self, capsys):
        unconfigure()
        get_logger("repro.test").info("nobody listening")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
        # INFO is disabled at the root's WARNING default, so the hot
        # paths skip record creation entirely when unconfigured
        assert not get_logger("repro.test").isEnabledFor(logging.INFO)


# -- source hygiene: no ad-hoc stdout/stderr writes in library code ----------

#: files allowed to print: the CLI is the program's stdout surface
PRINT_ALLOWED = {SRC / "cli.py"}


def _violations(path: Path) -> list:
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("print", "pprint"):
            found.append((path, node.lineno, fn.id))
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "write"
            and isinstance(fn.value, ast.Attribute)
            and fn.value.attr in ("stderr", "stdout")
            and isinstance(fn.value.value, ast.Name)
            and fn.value.value.id == "sys"
        ):
            found.append((path, node.lineno, f"sys.{fn.value.attr}.write"))
    return found


class TestNoAdHocOutputInLibrary:
    def test_src_repro_is_print_free(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path in PRINT_ALLOWED:
                continue
            offenders += _violations(path)
        assert not offenders, (
            "library code must use repro.obs.logging, found: "
            + ", ".join(f"{p.relative_to(SRC)}:{line} ({what})"
                        for p, line, what in offenders)
        )

    def test_checker_catches_a_plant(self, tmp_path):
        plant = tmp_path / "bad.py"
        plant.write_text(
            "import sys\nprint('x')\nsys.stderr.write('y')\n"
        )
        kinds = {what for _, _, what in _violations(plant)}
        assert kinds == {"print", "sys.stderr.write"}
