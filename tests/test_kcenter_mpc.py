"""Tests for Algorithm 5 — MPC (2+ε)-approximation k-center."""

import numpy as np
import pytest

from repro.analysis.validation import verify_kcenter_solution
from repro.baselines.exact import exact_kcenter
from repro.core.kcenter import mpc_kcenter, mpc_kcenter_coreset
from repro.exceptions import InfeasibleInstanceError
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster


class TestCoreset:
    def test_four_approximation_vs_exact(self, rng):
        pts = rng.normal(size=(20, 2))
        metric = EuclideanMetric(pts)
        for k in (2, 3):
            _, opt = exact_kcenter(metric, k)
            cluster = MPCCluster(metric, 3, seed=0)
            Q, r = mpc_kcenter_coreset(cluster, k)
            assert Q.size == k
            assert opt - 1e-9 <= r <= 4.0 * opt + 1e-9

    def test_r_is_actual_radius(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        Q, r = mpc_kcenter_coreset(cluster, 8)
        true_r = float(medium_metric.dist_to_set(np.arange(medium_metric.n), Q).max())
        assert r == pytest.approx(true_r)

    def test_two_round_structure(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        mpc_kcenter_coreset(cluster, 8)
        # coreset gather + center broadcast + radius gather = 3 rounds
        assert cluster.stats.rounds <= 4

    def test_k_bounds(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        with pytest.raises(InfeasibleInstanceError):
            mpc_kcenter_coreset(cluster, 0)
        with pytest.raises(InfeasibleInstanceError):
            mpc_kcenter_coreset(cluster, medium_metric.n + 1)


class TestApproximationFactor:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_factor_vs_exact_small(self, rng, k):
        pts = rng.normal(size=(18, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_kcenter(metric, k)
        cluster = MPCCluster(metric, 3, seed=1)
        eps = 0.1
        res = mpc_kcenter(cluster, k, epsilon=eps)
        assert res.radius <= 2.0 * (1.0 + eps) * opt + 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_factor_across_seeds(self, rng, seed):
        pts = np.random.default_rng(seed).normal(size=(16, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_kcenter(metric, 3)
        cluster = MPCCluster(metric, 4, seed=seed)
        res = mpc_kcenter(cluster, 3, epsilon=0.2)
        assert res.radius <= 2.0 * 1.2 * opt + 1e-9

    def test_radius_upper_bounded_by_tau(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_kcenter(cluster, 10, epsilon=0.2)
        assert res.radius <= res.tau + 1e-9

    def test_solution_validates(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_kcenter(cluster, 10, epsilon=0.2)
        verify_kcenter_solution(medium_metric, res.centers, 10, res.radius)

    def test_separated_clusters_recovered(self, rng):
        from repro.workloads.clustered import separated_clusters

        inst = separated_clusters(300, clusters=5, cluster_radius=1.0, separation=20.0, rng=rng)
        metric = EuclideanMetric(inst.points)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_kcenter(cluster, 5, epsilon=0.1)
        # optimal <= 1.0; the 2.2-factor guarantee puts us under 2.2
        assert res.radius <= 2.2 * inst.kcenter_upper_bound + 1e-9


class TestEdgeCases:
    def test_all_identical_points(self):
        metric = EuclideanMetric(np.zeros((50, 2)))
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_kcenter(cluster, 3, epsilon=0.1)
        assert res.radius == 0.0

    def test_k_equals_n(self, rng):
        pts = rng.normal(size=(12, 2))
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_kcenter(cluster, 12, epsilon=0.1)
        assert res.radius == pytest.approx(0.0, abs=1e-9)

    def test_k_one(self, rng):
        pts = rng.normal(size=(30, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_kcenter(metric, 1)
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_kcenter(cluster, 1, epsilon=0.2)
        assert res.radius <= 2.4 * opt + 1e-9

    def test_invalid_epsilon(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        with pytest.raises(ValueError):
            mpc_kcenter(cluster, 5, epsilon=0.0)

    def test_single_machine(self, rng):
        pts = rng.normal(size=(40, 2))
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 1, seed=0)
        res = mpc_kcenter(cluster, 4, epsilon=0.2)
        verify_kcenter_solution(metric, res.centers, 4, res.radius)

    def test_result_metadata(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_kcenter(cluster, 8, epsilon=0.3)
        assert res.k == 8 and res.epsilon == 0.3
        assert res.rounds > 0
        assert res.coreset_value > 0
        assert "rounds" in res.stats

    def test_determinism(self, medium_metric):
        rads = []
        for _ in range(2):
            cluster = MPCCluster(medium_metric, 4, seed=33)
            rads.append(mpc_kcenter(cluster, 8, epsilon=0.2).radius)
        assert rads[0] == rads[1]
