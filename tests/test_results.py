"""Tests for the result records and their serialization."""

import json

import numpy as np
import pytest

from repro.analysis.io import write_json
from repro.core.results import (
    ClusteringResult,
    DiversityResult,
    MISResult,
    SupplierResult,
)


@pytest.fixture
def mis():
    return MISResult(
        ids=np.array([3, 7, 9]),
        tau=0.5,
        k=5,
        maximal=True,
        terminated_via="maximal",
        rounds=12,
        edge_trace=[10, 2, 0],
    )


class TestSize:
    def test_mis_size(self, mis):
        assert mis.size == 3

    def test_clustering_size(self):
        r = ClusteringResult(
            centers=np.array([1, 2]),
            radius=1.0,
            k=2,
            epsilon=0.1,
            tau=1.0,
            coreset_value=2.0,
            rounds=3,
        )
        assert r.size == 2

    def test_diversity_size(self):
        r = DiversityResult(
            ids=np.array([1]), diversity=0.0, k=1, epsilon=0.1,
            coreset_value=0.0, rounds=1,
        )
        assert r.size == 1

    def test_supplier_size(self):
        r = SupplierResult(
            suppliers=np.array([4, 5]), radius=1.0, k=3, epsilon=0.1,
            coreset_value=2.0, pivots=np.array([0]), rounds=2,
        )
        assert r.size == 2


class TestToDict:
    def test_arrays_become_lists(self, mis):
        d = mis.to_dict()
        assert d["ids"] == [3, 7, 9]
        assert d["size"] == 3
        assert d["terminated_via"] == "maximal"

    def test_json_serializable(self, mis):
        json.dumps(mis.to_dict())  # must not raise

    def test_write_json_roundtrip(self, mis, tmp_path):
        p = write_json([mis.to_dict()], tmp_path / "r.json")
        import json as _json

        back = _json.loads(p.read_text())
        assert back["rows"][0]["k"] == 5

    def test_dominating_result_serializes(self):
        from repro.core.dominating_set import DominatingSetResult

        r = DominatingSetResult(
            ids=np.array([1, 2]), tau=0.3, rounds=4, lower_bound=1
        )
        d = r.to_dict()
        assert d["ids"] == [1, 2] and d["size"] == 2
        json.dumps(d)

    def test_numpy_scalars_converted(self):
        r = ClusteringResult(
            centers=np.array([1]),
            radius=np.float64(1.5),
            k=np.int64(1),
            epsilon=0.1,
            tau=1.0,
            coreset_value=2.0,
            rounds=1,
        )
        d = r.to_dict()
        assert isinstance(d["radius"], float) and isinstance(d["k"], int)
        json.dumps(d)
