"""Tests for EuclideanMetric, cross-checked against scipy."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.metric.euclidean import EuclideanMetric


@pytest.fixture
def pts(rng):
    return rng.normal(size=(50, 4))


@pytest.fixture
def metric(pts):
    return EuclideanMetric(pts)


class TestKernel:
    def test_matches_scipy(self, metric, pts):
        I = np.arange(20)
        J = np.arange(20, 50)
        ours = metric.pairwise(I, J)
        ref = cdist(pts[I], pts[J])
        assert np.allclose(ours, ref, atol=1e-9)

    def test_self_distance_zero(self, metric):
        ids = np.arange(metric.n)
        D = metric.pairwise(ids, ids)
        assert np.allclose(np.diag(D), 0.0, atol=1e-6)

    def test_scalar_distance(self, metric, pts):
        assert metric.distance(3, 7) == pytest.approx(np.linalg.norm(pts[3] - pts[7]))

    def test_no_negative_from_cancellation(self, rng):
        # nearly identical points stress the expanded-norm kernel
        base = rng.normal(size=(1, 8))
        pts = np.repeat(base, 10, axis=0) + 1e-12 * rng.normal(size=(10, 8))
        m = EuclideanMetric(pts)
        D = m.pairwise(np.arange(10), np.arange(10))
        assert np.all(D >= 0.0)

    def test_point_words_is_dim(self, metric):
        assert metric.point_words() == 4

    def test_accepts_raw_array(self, rng):
        m = EuclideanMetric(rng.normal(size=(5, 2)))
        assert m.n == 5


class TestHelpers:
    def test_dist_to_set(self, metric, pts):
        I = np.arange(10)
        T = np.array([30, 40])
        expected = cdist(pts[I], pts[T]).min(axis=1)
        assert np.allclose(metric.dist_to_set(I, T), expected)

    def test_dist_to_empty_set_is_inf(self, metric):
        out = metric.dist_to_set([0, 1], [])
        assert np.all(np.isinf(out))

    def test_radius(self, metric, pts):
        r = metric.radius(np.arange(50), [0])
        assert r == pytest.approx(cdist(pts, pts[[0]]).max())

    def test_radius_empty_x(self, metric):
        assert metric.radius([], [0]) == 0.0

    def test_diversity(self, metric, pts):
        ids = np.array([0, 1, 2, 3])
        D = cdist(pts[ids], pts[ids])
        np.fill_diagonal(D, np.inf)
        assert metric.diversity(ids) == pytest.approx(D.min())

    def test_diversity_singleton_is_inf(self, metric):
        assert np.isinf(metric.diversity([3]))

    def test_within_threshold(self, metric, pts):
        I, J = np.arange(5), np.arange(5, 15)
        tau = 2.0
        assert np.array_equal(
            metric.within(I, J, tau), cdist(pts[I], pts[J]) <= tau
        )

    def test_count_within(self, metric, pts):
        I, J = np.arange(5), np.arange(50)
        tau = 3.0
        expected = (cdist(pts[I], pts[J]) <= tau).sum(axis=1)
        assert np.array_equal(metric.count_within(I, J, tau), expected)

    def test_argmax_dist_to_set(self, metric, pts):
        vid, d = metric.argmax_dist_to_set(np.arange(50), [0])
        ref = cdist(pts, pts[[0]])[:, 0]
        assert vid == int(np.argmax(ref)) and d == pytest.approx(ref.max())

    def test_chunking_equivalence(self, pts):
        m_small = EuclideanMetric(pts)
        m_small.chunk_budget = 7  # force many tiny chunks
        m_big = EuclideanMetric(pts)
        I = np.arange(50)
        assert np.allclose(
            m_small.dist_to_set(I, [1, 2, 3]), m_big.dist_to_set(I, [1, 2, 3])
        )
        assert m_small.diversity(I) == pytest.approx(m_big.diversity(I))
        assert np.array_equal(
            m_small.count_within(I, I, 2.5), m_big.count_within(I, I, 2.5)
        )

    def test_id_out_of_range_raises(self, metric):
        with pytest.raises(IndexError):
            metric.pairwise([0], [999])
