"""Tests for message envelopes and word accounting."""

import numpy as np
import pytest

from repro.mpc.message import Ids, Message, PointBatch, payload_words


class TestPointBatch:
    def test_words_include_id_and_coords(self):
        b = PointBatch([1, 2, 3])
        assert b.words(point_words=2) == 3 * (1 + 2)

    def test_columns_cost_one_word_each(self):
        b = PointBatch([1, 2], {"p": [0.5, 0.7], "tie": [0.1, 0.2]})
        assert b.words(point_words=3) == 2 * (1 + 3 + 2)

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            PointBatch([1, 2], {"p": [0.5]})

    def test_empty_batch(self):
        assert PointBatch([]).words(point_words=5) == 0

    def test_ids_are_int64(self):
        assert PointBatch([1.0, 2.0]).ids.dtype == np.int64


class TestIds:
    def test_one_word_each(self):
        assert Ids([4, 5, 6]).words() == 3

    def test_empty(self):
        assert Ids([]).words() == 0


class TestPayloadWords:
    @pytest.mark.parametrize(
        "payload,expected",
        [
            (None, 0),
            (3, 1),
            (3.14, 1),
            (True, 1),
            ("tag", 1),
            (np.float64(1.5), 1),
            (np.int32(7), 1),
        ],
    )
    def test_scalars(self, payload, expected):
        assert payload_words(payload, point_words=4) == expected

    def test_ndarray_by_size(self):
        assert payload_words(np.zeros((3, 4)), point_words=9) == 12

    def test_nested_containers(self):
        payload = {"a": PointBatch([1, 2]), "b": [1.0, 2.0, Ids([5])]}
        assert payload_words(payload, point_words=2) == 2 * 3 + 2 + 1

    def test_tuple(self):
        assert payload_words((PointBatch([1]), 2.0), point_words=1) == 2 + 1

    def test_unsupported_type_raises(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            payload_words(Weird(), point_words=1)


class TestMessage:
    def test_words_delegate(self):
        msg = Message(src=0, dst=1, payload=PointBatch([1, 2, 3]))
        assert msg.words(point_words=2) == 9

    def test_frozen(self):
        msg = Message(src=0, dst=1, payload=None)
        with pytest.raises(Exception):
            msg.src = 5
