"""Tests for Algorithm 1 (GMM), including property-based anti-cover checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.gmm import check_anti_cover, gmm, gmm_anti_cover_radius
from repro.metric.euclidean import EuclideanMetric


class TestBasics:
    def test_returns_k_points(self, small_metric):
        out = gmm(small_metric, np.arange(60), 7)
        assert out.size == 7 and np.unique(out).size == 7

    def test_first_is_start(self, small_metric):
        out = gmm(small_metric, np.arange(60), 5, start=13)
        assert out[0] == 13

    def test_default_start_is_smallest_id(self, small_metric):
        out = gmm(small_metric, np.arange(10, 40), 3)
        assert out[0] == 10

    def test_start_not_in_s_rejected(self, small_metric):
        with pytest.raises(ValueError, match="must belong"):
            gmm(small_metric, np.arange(10), 3, start=50)

    def test_k_larger_than_s_returns_all(self, small_metric):
        out = gmm(small_metric, np.arange(5), 99)
        assert np.array_equal(np.sort(out), np.arange(5))

    def test_k_one(self, small_metric):
        assert gmm(small_metric, np.arange(60), 1).size == 1

    def test_invalid_k(self, small_metric):
        with pytest.raises(ValueError):
            gmm(small_metric, np.arange(10), 0)

    def test_empty_s(self, small_metric):
        assert gmm(small_metric, [], 3).size == 0

    def test_deterministic(self, small_metric):
        a = gmm(small_metric, np.arange(60), 6)
        b = gmm(small_metric, np.arange(60), 6)
        assert np.array_equal(a, b)

    def test_greedy_picks_farthest(self):
        # 1-D: 0, 1, 10 — starting from 0, the farthest is 10
        m = EuclideanMetric([[0.0], [1.0], [10.0]])
        out = gmm(m, [0, 1, 2], 2, start=0)
        assert np.array_equal(out, [0, 2])

    def test_duplicate_ids_collapsed(self, small_metric):
        out = gmm(small_metric, [3, 3, 3, 7, 7], 2)
        assert np.unique(out).size == 2


class TestAntiCover:
    def test_anti_cover_holds(self, medium_metric):
        S = np.arange(medium_metric.n)
        T = gmm(medium_metric, S, 10)
        assert check_anti_cover(medium_metric, S, T)

    def test_anti_cover_radius_value(self):
        m = EuclideanMetric([[0.0], [4.0], [10.0]])
        assert gmm_anti_cover_radius(m, [0, 1, 2], [0, 2]) == pytest.approx(4.0)

    def test_anti_cover_radius_empty_t(self, small_metric):
        assert np.isinf(gmm_anti_cover_radius(small_metric, [0], []))

    def test_anti_cover_radius_empty_s(self, small_metric):
        assert gmm_anti_cover_radius(small_metric, [], [0]) == 0.0

    def test_check_rejects_bad_t(self):
        # 0 and 1 are close; 10 is far: {0, 1} is not an anti-cover of all
        m = EuclideanMetric([[0.0], [1.0], [10.0]])
        assert not check_anti_cover(m, [0, 1, 2], [0, 1])


class TestTwoApproximation:
    def test_kcenter_factor_two_vs_exact(self, rng):
        from repro.baselines.exact import exact_kcenter

        pts = rng.normal(size=(16, 2))
        m = EuclideanMetric(pts)
        for k in (2, 3, 4):
            T = gmm(m, np.arange(16), k)
            radius = float(m.dist_to_set(np.arange(16), T).max())
            _, opt = exact_kcenter(m, k)
            assert radius <= 2.0 * opt + 1e-9

    def test_diversity_factor_two_vs_exact(self, rng):
        from repro.baselines.exact import exact_diversity

        pts = rng.normal(size=(14, 2))
        m = EuclideanMetric(pts)
        for k in (2, 3, 4):
            T = gmm(m, np.arange(14), k)
            _, opt = exact_diversity(m, k)
            assert float(m.diversity(T)) >= opt / 2.0 - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    pts=arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(4, 20), st.just(2)),
        elements=st.floats(-50, 50, allow_nan=False),
    ),
    k=st.integers(2, 5),
)
def test_gmm_anti_cover_property(pts, k):
    """Hypothesis: GMM output always satisfies the anti-cover properties."""
    m = EuclideanMetric(pts)
    S = np.arange(m.n)
    T = gmm(m, S, min(k, m.n))
    assert check_anti_cover(m, S, T, atol=1e-6)
