"""``repro.__version__`` is single-sourced from pyproject.toml."""

from __future__ import annotations

import re
from pathlib import Path

import repro
from repro._version import get_version


def _pyproject_version() -> str:
    text = (Path(__file__).resolve().parents[1] / "pyproject.toml").read_text()
    return re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE).group(1)


def test_version_matches_pyproject():
    assert repro.__version__ == _pyproject_version()


def test_get_version_is_stable():
    assert get_version() == repro.__version__


def test_version_is_pep440_ish():
    assert re.fullmatch(r"\d+\.\d+\.\d+([.+-].*)?", repro.__version__)


def test_version_in_dunder_all():
    assert "__version__" in repro.__all__
