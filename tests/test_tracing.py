"""End-to-end distributed tracing (ISSUE 6 acceptance).

Covers the :mod:`repro.obs.tracing` primitives, cross-process span
merging (the process backend ships chunk spans back from forked
children), trace determinism (two seeded runs produce bit-identical
canonical Chrome documents), serial/process phase-span equivalence, and
the HTTP surface: one trace id connects client → server → job → solver
→ executor, errors echo the server-assigned request id, and cache hits
are annotated in the merged trace.
"""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro.api import build_cluster, solve_kcenter
from repro.obs import Recorder, canonical_chrome_trace
from repro.obs.export import read_jsonl, to_chrome_trace, trace_payload
from repro.obs.tracing import TraceContext, current_trace, use_trace
from repro.service import ServiceClient, ServiceError, serve
from repro.service.http import run_in_thread

HEX32 = re.compile(r"^[0-9a-f]{32}$")
HEX16 = re.compile(r"^[0-9a-f]{16}$")


# -- TraceContext primitives -------------------------------------------------


class TestTraceContext:
    def test_from_seed_is_deterministic(self):
        a = TraceContext.from_seed(7)
        b = TraceContext.from_seed(7)
        assert a.trace_id == b.trace_id and a.span_id == b.span_id
        assert HEX32.match(a.trace_id) and HEX16.match(a.span_id)
        assert a.parent_id is None

    def test_different_seeds_differ(self):
        assert TraceContext.from_seed(1).trace_id != TraceContext.from_seed(2).trace_id

    def test_generate_is_valid_and_random(self):
        a, b = TraceContext.generate(), TraceContext.generate()
        assert HEX32.match(a.trace_id) and HEX16.match(a.span_id)
        assert a.trace_id != b.trace_id

    def test_child_links_and_determinism(self):
        root = TraceContext.from_seed(3)
        c1 = root.child("phase")
        assert c1.trace_id == root.trace_id
        assert c1.parent_id == root.span_id
        assert c1.span_id != root.span_id
        # same name again -> distinct sibling (occurrence-keyed)
        c2 = root.child("phase")
        assert c2.span_id != c1.span_id
        # a fresh equivalent root derives the same children
        again = TraceContext.from_seed(3)
        assert again.child("phase").span_id == c1.span_id
        assert again.child("phase").span_id == c2.span_id

    def test_traceparent_round_trip(self):
        ctx = TraceContext.from_seed(11)
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        back = TraceContext.from_traceparent(header)
        assert back is not None
        assert back.trace_id == ctx.trace_id and back.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "junk",
            "00-zz-11-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "1" * 31 + "-" + "2" * 16 + "-01",  # short trace id
        ],
    )
    def test_invalid_traceparent_rejected(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_use_trace_scopes_ambient_context(self):
        assert current_trace() is None
        ctx = TraceContext.from_seed(5)
        with use_trace(ctx):
            assert current_trace() is ctx
            inner = TraceContext.from_seed(6)
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None


# -- span stamping through the cluster --------------------------------------


@pytest.fixture
def points():
    return np.random.default_rng(0).normal(scale=2.0, size=(300, 2))


def _traced_run(points, backend: str):
    cluster = build_cluster(
        points,
        machines=4,
        seed=1,
        backend=backend,
        max_workers=2,
        trace=TraceContext.from_seed(5),
    )
    rec = Recorder.attach(cluster, capture_messages=False)
    res = solve_kcenter(k=6, eps=0.5, cluster=cluster)
    cluster.executor.shutdown()
    return res, rec.log


class TestSpanStamping:
    def test_serial_spans_carry_trace_ids(self, points):
        _, log = _traced_run(points, "serial")
        root = TraceContext.from_seed(5)
        assert log.spans
        for s in log.spans:
            assert s.trace_id == root.trace_id
            assert HEX16.match(s.span_id)
        assert log.meta["trace_id"] == root.trace_id
        # top-level spans hang off the root span
        tops = [s for s in log.spans if s.parent_uid is None]
        assert tops and all(s.parent_span_id == root.span_id for s in tops)
        # nesting is mirrored in the span-id links
        by_uid = {s.uid: s for s in log.spans}
        for s in log.spans:
            if s.parent_uid is not None:
                assert s.parent_span_id == by_uid[s.parent_uid].span_id

    def test_span_ids_deterministic_across_runs(self, points):
        _, log_a = _traced_run(points, "serial")
        _, log_b = _traced_run(points, "serial")
        ids_a = [(s.name, s.span_id, s.parent_span_id) for s in log_a.spans]
        ids_b = [(s.name, s.span_id, s.parent_span_id) for s in log_b.spans]
        assert ids_a == ids_b

    def test_untraced_cluster_leaves_spans_unstamped(self, points):
        cluster = build_cluster(points, machines=4, seed=1)
        rec = Recorder.attach(cluster, capture_messages=False)
        solve_kcenter(k=6, eps=0.5, cluster=cluster)
        assert rec.log.spans
        assert all(s.trace_id is None for s in rec.log.spans)
        assert "trace_id" not in rec.log.meta


# -- cross-process merging (ISSUE satellite: bit-identical merged traces) ----


class TestProcessBackendMerging:
    def test_exec_spans_merged_with_parent_links(self, points):
        _, log = _traced_run(points, "process")
        root = TraceContext.from_seed(5)
        assert log.exec_spans, "process run produced no executor chunk spans"
        parent_ids = {s.span_id for s in log.spans}
        for e in log.exec_spans:
            assert e.trace_id == root.trace_id
            assert HEX16.match(e.span_id)
            assert e.parent_span_id in parent_ids
            assert e.os_pid > 0
            assert e.end_time >= e.start_time

    def test_chrome_doc_contains_parent_and_child_spans(self, points):
        _, log = _traced_run(points, "process")
        doc = to_chrome_trace(log)
        events = doc["traceEvents"]
        phase = [e for e in events if e.get("cat") == "span"]
        execs = [e for e in events if e.get("cat") == "exec"]
        assert phase and execs
        # child spans live under distinct per-worker pids, off the driver's
        assert all(e["pid"] == 0 for e in phase)
        assert all(e["pid"] >= 1 for e in execs)
        lanes = {e["pid"] for e in execs}
        named = {
            e["pid"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert lanes <= named
        trace_ids = {e["args"]["trace_id"] for e in phase + execs}
        assert trace_ids == {TraceContext.from_seed(5).trace_id}

    def test_canonical_chrome_trace_bit_identical(self, points):
        _, log_a = _traced_run(points, "process")
        _, log_b = _traced_run(points, "process")
        canon_a = canonical_chrome_trace(to_chrome_trace(log_a))
        canon_b = canonical_chrome_trace(to_chrome_trace(log_b))
        text_a = json.dumps(canon_a, sort_keys=True)
        text_b = json.dumps(canon_b, sort_keys=True)
        assert text_a == text_b
        # the canonical form really dropped the wall-clock noise
        assert '"ts"' not in text_a and '"os_pid"' not in text_a

    def test_phase_span_set_matches_serial(self, points):
        res_s, log_s = _traced_run(points, "serial")
        res_p, log_p = _traced_run(points, "process")
        assert res_s.radius == res_p.radius
        assert list(res_s.centers) == list(res_p.centers)

        def key(log):
            return [
                (s.name, s.uid, s.parent_uid, s.rounds, s.words, s.span_id)
                for s in log.spans
            ]

        assert key(log_s) == key(log_p)
        # the only difference is the child-span list itself
        assert log_s.exec_spans == [] and log_p.exec_spans != []

    def test_jsonl_round_trip_preserves_exec_spans(self, points, tmp_path):
        from repro.obs.export import write_jsonl

        _, log = _traced_run(points, "process")
        path = write_jsonl(log, tmp_path / "run.jsonl")
        back = read_jsonl(path)
        assert [e.to_dict() for e in back.exec_spans] == [
            e.to_dict() for e in log.exec_spans
        ]
        assert [s.to_dict() for s in back.spans] == [s.to_dict() for s in log.spans]

    def test_trace_payload_jsonl_carries_annotations(self, points):
        _, log = _traced_run(points, "process")
        _, body = trace_payload(
            log, "jsonl", annotations=[{"name": "cache_hit", "args": {"job_id": "j"}}]
        )
        kinds = [json.loads(line)["type"] for line in body.splitlines()]
        assert "exec_span" in kinds and "annotation" in kinds


# -- HTTP end to end ---------------------------------------------------------


@pytest.fixture
def server():
    srv = serve(port=0, workers=1, backend="serial")
    run_in_thread(srv)
    yield srv
    srv.shutdown_service()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestHttpTracePropagation:
    def test_one_trace_id_client_to_solver(self, client, points):
        ctx = TraceContext.from_seed(42)
        with use_trace(ctx):
            ds = client.register_points(points)
            job = client.submit(
                algorithm="kcenter", dataset=ds["id"], k=6, eps=0.5, seed=1
            )
            assert job["trace_id"] == ctx.trace_id
            done = client.wait(job["id"], timeout=120.0)
        assert done["state"] == "done"
        assert done["trace_id"] == ctx.trace_id
        trace = client.trace(job["id"])
        assert trace["otherData"]["trace_id"] == ctx.trace_id
        spans = [e for e in trace["traceEvents"] if e.get("cat") == "span"]
        assert spans
        assert {e["args"]["trace_id"] for e in spans} == {ctx.trace_id}

    def test_response_headers_echo_trace(self, client):
        client.healthz()
        assert client.last_request_id and HEX32.match(client.last_request_id)
        ctx = TraceContext.from_seed(9)
        with use_trace(ctx):
            client.healthz()
        # the server's request context is a child of the client's
        assert client.last_request_id == ctx.trace_id

    def test_errors_carry_request_id(self, client):
        with pytest.raises(ServiceError) as exc:
            client.job("job-nope")
        err = exc.value
        assert err.status == 404
        assert err.request_id and HEX32.match(err.request_id)
        assert f"[request {err.request_id}]" in str(err)
        assert client.last_request_id == err.request_id

    def test_cache_hit_annotated_in_trace(self, client, points):
        ds = client.register_points(points)
        spec = dict(algorithm="kcenter", dataset=ds["id"], k=6, eps=0.5, seed=1)
        first = client.submit(**spec)
        client.wait(first["id"], timeout=120.0)
        second = client.submit(**spec)
        done = client.wait(second["id"], timeout=120.0)
        assert done["cached"] is True
        trace = client.trace(second["id"])
        names = [
            e["name"]
            for e in trace["traceEvents"]
            if e.get("cat") == "annotation"
        ]
        assert "cache_hit" in names and "job" in names
