"""The batched ``pairwise(I, J)`` kernel must agree entry-by-entry with
the scalar ``distance`` oracle on every metric, and the
:class:`CountingOracle` must charge exactly |I|·|J| evaluations per
kernel call."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric.cosine import AngularMetric
from repro.metric.edit_distance import EditDistanceMetric
from repro.metric.euclidean import EuclideanMetric
from repro.metric.graph_metric import GraphShortestPathMetric
from repro.metric.hamming import HammingMetric
from repro.metric.haversine import HaversineMetric
from repro.metric.lp import ChebyshevMetric, ManhattanMetric, MinkowskiMetric
from repro.metric.matrix_metric import MatrixMetric
from repro.metric.oracle import CountingOracle

N = 24


def _points(rng):
    return rng.normal(scale=2.0, size=(N, 3))


def _make_matrix(rng):
    pts = _points(rng)
    D = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1))
    return MatrixMetric(D)


def _make_graph(rng):
    edges = [(i, i + 1, float(rng.uniform(0.5, 2.0))) for i in range(N - 1)]
    edges += [
        (int(rng.integers(N)), int(rng.integers(N)), float(rng.uniform(0.5, 3.0)))
        for _ in range(2 * N)
    ]
    edges = [(u, v, w) for u, v, w in edges if u != v]
    return GraphShortestPathMetric(N, edges)


METRIC_FACTORIES = {
    "euclidean": lambda rng: EuclideanMetric(_points(rng)),
    "manhattan": lambda rng: ManhattanMetric(_points(rng)),
    "chebyshev": lambda rng: ChebyshevMetric(_points(rng)),
    "minkowski3": lambda rng: MinkowskiMetric(_points(rng), p=3.0),
    "angular": lambda rng: AngularMetric(_points(rng) + 5.0),
    "hamming": lambda rng: HammingMetric(rng.integers(0, 2, size=(N, 16))),
    "haversine": lambda rng: HaversineMetric(
        np.column_stack([rng.uniform(-80, 80, N), rng.uniform(-170, 170, N)])
    ),
    "edit": lambda rng: EditDistanceMetric(
        ["".join(rng.choice(list("abcd"), size=rng.integers(1, 9))) for _ in range(N)]
    ),
    "matrix": _make_matrix,
    "graph": _make_graph,
}


@pytest.fixture(params=sorted(METRIC_FACTORIES))
def metric(request):
    rng = np.random.default_rng(hash(request.param) % (2**32))
    return METRIC_FACTORIES[request.param](rng)


class TestPairwiseMatchesDistance:
    def test_full_cross_product(self, metric):
        I = np.arange(0, N, 2, dtype=np.int64)
        J = np.arange(1, N, 3, dtype=np.int64)
        D = metric.pairwise(I, J)
        assert D.shape == (I.size, J.size)
        for a, i in enumerate(I):
            for b, j in enumerate(J):
                assert D[a, b] == pytest.approx(
                    metric.distance(int(i), int(j)), rel=1e-12, abs=1e-12
                )

    def test_overlapping_and_repeated_ids(self, metric):
        I = np.array([0, 5, 5, 2], dtype=np.int64)
        D = metric.pairwise(I, I)
        # repeated id → (numerically) zero distance, symmetric both ways
        assert np.allclose(np.diag(D)[[1, 2]], 0.0, atol=1e-6)
        assert D[1, 2] == pytest.approx(0.0, abs=1e-6)
        assert D[2, 1] == pytest.approx(0.0, abs=1e-6)

    def test_empty_sides(self, metric):
        empty = np.zeros(0, dtype=np.int64)
        assert metric.pairwise(empty, np.arange(4)).shape == (0, 4)
        assert metric.pairwise(np.arange(4), empty).shape == (4, 0)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(sorted(METRIC_FACTORIES)),
    idx=st.lists(st.integers(0, N - 1), min_size=1, max_size=8),
    jdx=st.lists(st.integers(0, N - 1), min_size=1, max_size=8),
)
def test_pairwise_property(name, idx, jdx):
    rng = np.random.default_rng(hash(name) % (2**32))
    metric = METRIC_FACTORIES[name](rng)
    I = np.asarray(idx, dtype=np.int64)
    J = np.asarray(jdx, dtype=np.int64)
    D = metric.pairwise(I, J)
    for a in range(I.size):
        for b in range(J.size):
            assert D[a, b] == pytest.approx(
                metric.distance(int(I[a]), int(J[b])), rel=1e-12, abs=1e-12
            )


class TestCountingOracleCharging:
    def test_pairwise_charges_cells(self):
        rng = np.random.default_rng(0)
        oracle = CountingOracle(EuclideanMetric(_points(rng)))
        I, J = np.arange(6), np.arange(6, 15)
        oracle.pairwise(I, J)
        assert oracle.calls == 1
        assert oracle.evaluations == 6 * 9

    def test_dist_to_set_uses_same_accounting(self):
        rng = np.random.default_rng(1)
        oracle = CountingOracle(EuclideanMetric(_points(rng)))
        oracle.dist_to_set(np.arange(10), np.arange(10, 14))
        assert oracle.evaluations == 10 * 4

    def test_batched_equals_scalar_results(self):
        rng = np.random.default_rng(2)
        base = EuclideanMetric(_points(rng))
        oracle = CountingOracle(base)
        I, J = np.arange(5), np.arange(5, 12)
        assert np.array_equal(oracle.pairwise(I, J), base.pairwise(I, J))
