"""Tests for ThresholdGraphView."""

import numpy as np
import pytest

from repro.core.threshold_graph import ThresholdGraphView
from repro.metric.euclidean import EuclideanMetric


@pytest.fixture
def line_metric():
    # points at 0, 1, 2, ..., 9 on a line
    return EuclideanMetric(np.arange(10, dtype=float).reshape(-1, 1))


class TestDegrees:
    def test_path_graph_degrees(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        deg = view.degrees()
        assert deg[0] == 1 and deg[9] == 1
        assert np.all(deg[1:9] == 2)

    def test_wider_threshold(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=2.0)
        assert view.degrees([5])[0] == 4

    def test_no_self_loop(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=0.0)
        assert np.all(view.degrees() == 0)

    def test_duplicates_are_neighbors(self):
        m = EuclideanMetric([[0.0], [0.0], [5.0]])
        view = ThresholdGraphView(m, [0, 1, 2], tau=0.0)
        assert view.degrees([0])[0] == 1

    def test_restricted_active_set(self, line_metric):
        view = ThresholdGraphView(line_metric, [0, 2, 4], tau=1.0)
        assert np.all(view.degrees() == 0)  # spacing 2 > tau

    def test_query_outside_active(self, line_metric):
        view = ThresholdGraphView(line_metric, [0, 1], tau=1.5)
        # vertex 2 is not active but is within tau of 1
        assert view.degrees([2])[0] == 1

    def test_empty_query(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        assert view.degrees([]).size == 0

    def test_negative_tau_rejected(self, line_metric):
        with pytest.raises(ValueError):
            ThresholdGraphView(line_metric, [0], tau=-1.0)


class TestNeighborsAndEdges:
    def test_neighbors(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        assert np.array_equal(np.sort(view.neighbors(5)), [4, 6])

    def test_num_edges_path(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        assert view.num_edges() == 9

    def test_num_edges_complete(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=100.0)
        assert view.num_edges() == 45

    def test_num_edges_empty_graph(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=0.5)
        assert view.num_edges() == 0

    def test_adjacency_masks_same_id(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        adj = view.adjacency([3, 4], [3, 4, 5])
        assert not adj[0, 0]  # (3, 3) masked
        assert adj[0, 1] and adj[1, 2]


class TestIndependence:
    def test_independent_set(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        assert view.is_independent([0, 2, 4])
        assert not view.is_independent([0, 1])

    def test_singleton_and_empty_independent(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        assert view.is_independent([3])
        assert view.is_independent([])

    def test_maximal_independent(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        assert view.is_maximal_independent([0, 2, 4, 6, 8])
        assert not view.is_maximal_independent([0, 4, 8])  # 2 and 6 addable

    def test_maximal_rejects_dependent(self, line_metric):
        view = ThresholdGraphView(line_metric, np.arange(10), tau=1.0)
        assert not view.is_maximal_independent([0, 1, 3, 5, 7, 9])

    def test_empty_universe_maximal(self, line_metric):
        view = ThresholdGraphView(line_metric, [], tau=1.0)
        assert view.is_maximal_independent([])
