"""Tests for the remote-clique diversity extension."""

import numpy as np
import pytest

from repro.extensions.remote_clique import (
    exact_remote_clique,
    greedy_remote_clique,
    local_search_remote_clique,
    mpc_remote_clique,
    remote_clique_value,
)
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster


@pytest.fixture
def small(rng):
    return EuclideanMetric(rng.normal(size=(14, 2)))


class TestObjective:
    def test_value_matches_manual(self):
        m = EuclideanMetric([[0.0], [1.0], [3.0]])
        # pairs: (0,1)=1, (0,3)=3, (1,3)=2 → sum 6
        assert remote_clique_value(m, [0, 1, 2]) == pytest.approx(6.0)

    def test_singleton_zero(self, small):
        assert remote_clique_value(small, [3]) == 0.0

    def test_duplicate_ids_collapsed(self):
        m = EuclideanMetric([[0.0], [2.0]])
        assert remote_clique_value(m, [0, 0, 1]) == pytest.approx(2.0)


class TestGreedy:
    def test_size_and_distinct(self, small):
        out = greedy_remote_clique(small, np.arange(14), 5)
        assert out.size == 5 and np.unique(out).size == 5

    def test_small_candidate_set_returned_whole(self, small):
        out = greedy_remote_clique(small, [1, 2, 3], 7)
        assert np.array_equal(np.sort(out), [1, 2, 3])

    def test_line_picks_extremes(self):
        m = EuclideanMetric(np.arange(10, dtype=float).reshape(-1, 1))
        out = greedy_remote_clique(m, np.arange(10), 2)
        assert set(out) == {0, 9}

    def test_constant_factor_vs_exact(self, rng):
        for seed in range(3):
            pts = np.random.default_rng(seed).normal(size=(12, 2))
            m = EuclideanMetric(pts)
            _, opt = exact_remote_clique(m, 4)
            val = remote_clique_value(m, greedy_remote_clique(m, np.arange(12), 4))
            assert val >= opt / 4.0 - 1e-9  # classic dispersion greedy bound


class TestLocalSearch:
    def test_never_worse_than_greedy(self, small):
        g = greedy_remote_clique(small, np.arange(14), 5)
        ls = local_search_remote_clique(small, np.arange(14), 5)
        assert remote_clique_value(small, ls) >= remote_clique_value(small, g) - 1e-9

    def test_two_approx_vs_exact(self):
        for seed in range(3):
            pts = np.random.default_rng(seed).normal(size=(12, 2))
            m = EuclideanMetric(pts)
            _, opt = exact_remote_clique(m, 4)
            val = remote_clique_value(
                m, local_search_remote_clique(m, np.arange(12), 4)
            )
            assert val >= opt / 2.0 - 1e-9

    def test_respects_start(self, small):
        start = np.array([0, 1, 2])
        out = local_search_remote_clique(small, np.arange(14), 3, start=start)
        assert out.size == 3

    def test_k_equals_n(self, small):
        out = local_search_remote_clique(small, np.arange(14), 14)
        assert out.size == 14


class TestExact:
    def test_optimality_dominates_heuristics(self, small):
        _, opt = exact_remote_clique(small, 3)
        g = remote_clique_value(small, greedy_remote_clique(small, np.arange(14), 3))
        assert opt >= g - 1e-9

    def test_budget_guard(self, rng):
        m = EuclideanMetric(rng.normal(size=(40, 2)))
        with pytest.raises(ValueError):
            exact_remote_clique(m, 15, max_subsets=100)

    def test_k_validation(self, small):
        with pytest.raises(ValueError):
            exact_remote_clique(small, 1)


class TestMPC:
    def test_end_to_end_quality(self):
        for seed in range(2):
            pts = np.random.default_rng(seed).normal(size=(200, 2))
            m = EuclideanMetric(pts)
            cluster = MPCCluster(m, 4, seed=seed)
            subset, val = mpc_remote_clique(cluster, 5)
            assert subset.size == 5
            # sanity: within a constant of the sequential local search
            ref = remote_clique_value(
                m, local_search_remote_clique(m, np.arange(200), 5)
            )
            assert val >= ref / 3.0

    def test_two_round_structure(self, rng):
        m = EuclideanMetric(rng.normal(size=(100, 2)))
        cluster = MPCCluster(m, 4, seed=0)
        mpc_remote_clique(cluster, 4)
        assert cluster.stats.rounds <= 2

    def test_exact_comparison_small(self, rng):
        pts = rng.normal(size=(14, 2))
        m = EuclideanMetric(pts)
        _, opt = exact_remote_clique(m, 4)
        cluster = MPCCluster(m, 2, seed=0)
        _, val = mpc_remote_clique(cluster, 4)
        assert val >= opt / 3.0 - 1e-9  # Indyk-style constant factor

    def test_k_validation(self, rng):
        m = EuclideanMetric(rng.normal(size=(20, 2)))
        cluster = MPCCluster(m, 2, seed=0)
        with pytest.raises(ValueError):
            mpc_remote_clique(cluster, 1)
