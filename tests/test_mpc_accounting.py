"""Focused unit tests for the accounting structures."""

import numpy as np

from repro.mpc.accounting import ClusterStats, RoundStats


def rs(round_no, sent, received, messages=1):
    return RoundStats(
        round_no=round_no,
        sent=np.asarray(sent, dtype=np.int64),
        received=np.asarray(received, dtype=np.int64),
        messages=messages,
    )


class TestRoundStats:
    def test_max_load_is_sent_plus_received(self):
        r = rs(1, [5, 0, 3], [0, 4, 3])
        assert r.max_load == 6  # machine 2: 3 + 3

    def test_total_counts_senders_once(self):
        r = rs(1, [5, 2, 0], [0, 0, 7])
        assert r.total == 7

    def test_empty_machines(self):
        r = rs(1, np.zeros(0), np.zeros(0))
        assert r.max_load == 0 and r.total == 0


class TestClusterStats:
    def test_rounds_and_totals(self):
        s = ClusterStats(num_machines=3)
        s.record_round(rs(1, [1, 0, 0], [0, 1, 0]))
        s.record_round(rs(2, [0, 5, 0], [0, 0, 5]))
        assert s.rounds == 2
        assert s.total_words == 6
        assert s.max_machine_words == 5

    def test_max_machine_total_accumulates(self):
        s = ClusterStats(num_machines=2)
        s.record_round(rs(1, [3, 0], [0, 3]))
        s.record_round(rs(2, [3, 0], [0, 3]))
        # machine 0 sent 6 total; machine 1 received 6 total
        assert s.max_machine_total == 6
        assert np.array_equal(s.per_machine_totals(), [6, 6])

    def test_empty_stats(self):
        s = ClusterStats(num_machines=4)
        assert s.rounds == 0
        assert s.total_words == 0
        assert s.max_machine_words == 0
        assert s.max_machine_total == 0
        assert np.array_equal(s.per_machine_totals(), np.zeros(4, dtype=np.int64))

    def test_summary_round_trips_values(self):
        s = ClusterStats(num_machines=2)
        s.record_round(rs(1, [2, 0], [0, 2]))
        out = s.summary()
        assert out["machines"] == 2
        assert out["rounds"] == 1
        assert out["total_words"] == 2
        assert out["max_machine_words_per_round"] == 2

    def test_peak_known_points_monotone(self):
        s = ClusterStats(num_machines=1)
        s.peak_known_points = max(s.peak_known_points, 10)
        s.peak_known_points = max(s.peak_known_points, 5)
        assert s.peak_known_points == 10
