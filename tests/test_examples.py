"""Smoke tests for the example scripts.

The quickstart runs end-to-end (it is the documented first contact with
the library); the other examples are compiled and import-checked so a
syntax or API drift breaks CI without paying their full runtime.
"""

import pathlib
import py_compile

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestCompile:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "diversified_retrieval.py",
            "facility_location.py",
            "scaling_study.py",
            "noisy_sensor_network.py",
            "road_network.py",
            "log_template_selection.py",
            "global_hubs.py",
            "anatomy_of_a_run.py",
        ],
    )
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)


class TestQuickstartRuns:
    def test_main(self, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "quickstart", EXAMPLES / "quickstart.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        mod.main()
        out = capsys.readouterr().out
        assert "k-center" in out and "MPC" in out
