"""Tests for repro.constants."""

import math

import pytest

from repro.constants import DEFAULT_CONSTANTS, TheoryConstants


class TestPresets:
    def test_paper_delta_floor(self):
        # with a large epsilon the 18 floor dominates
        c = TheoryConstants.paper(epsilon=1.0)
        assert c.delta == 18.0

    def test_paper_delta_epsilon_term(self):
        c = TheoryConstants.paper(epsilon=0.1)
        assert c.delta == pytest.approx(12.0 / 0.01)

    def test_paper_records_epsilon(self):
        c = TheoryConstants.paper(epsilon=0.25)
        assert c.mis_epsilon == 0.25

    def test_practical_is_small(self):
        c = TheoryConstants.practical()
        assert c.delta < TheoryConstants.paper().delta

    def test_default_is_practical(self):
        assert DEFAULT_CONSTANTS.delta == TheoryConstants.practical().delta

    @pytest.mark.parametrize("eps", [0.0, -1.0])
    def test_invalid_epsilon_rejected(self, eps):
        with pytest.raises(ValueError):
            TheoryConstants.paper(epsilon=eps)
        with pytest.raises(ValueError):
            TheoryConstants.practical(epsilon=eps)

    def test_with_epsilon_copies(self):
        c = TheoryConstants.practical()
        c2 = c.with_epsilon(0.5)
        assert c2.mis_epsilon == 0.5
        assert c.mis_epsilon != 0.5  # frozen original untouched
        assert c2.delta == c.delta


class TestThresholds:
    def test_ln_n_matches_log(self):
        c = TheoryConstants.practical()
        assert c.ln_n(1000) == pytest.approx(math.log(1000))

    def test_ln_n_floor_on_tiny_inputs(self):
        c = TheoryConstants.practical()
        assert c.ln_n(1) == c.log_floor
        assert c.ln_n(2) == c.log_floor

    def test_heavy_threshold_formula(self):
        c = TheoryConstants.practical()
        assert c.heavy_threshold(100) == pytest.approx(c.delta * math.log(100))

    def test_light_path_trigger_formula(self):
        c = TheoryConstants.practical()
        expected = c.light_blowup * c.delta * 8 * 5 * math.log(200)
        assert c.light_path_trigger(200, 8, 5) == pytest.approx(expected)

    def test_light_degree_bound_formula(self):
        c = TheoryConstants.practical()
        expected = c.light_blowup * c.delta * 8 * math.log(200)
        assert c.light_degree_bound(200, 8) == pytest.approx(expected)

    def test_pruning_trigger_formula(self):
        c = TheoryConstants.practical()
        assert c.pruning_trigger(200, 5) == pytest.approx(
            c.pruning_factor * 5 * math.log(200)
        )

    def test_thresholds_monotone_in_n(self):
        c = TheoryConstants.practical()
        assert c.heavy_threshold(10_000) > c.heavy_threshold(100)
        assert c.pruning_trigger(10_000, 3) > c.pruning_trigger(100, 3)

    def test_frozen(self):
        c = TheoryConstants.practical()
        with pytest.raises(Exception):
            c.delta = 99.0
