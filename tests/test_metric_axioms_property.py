"""Property-based tests: every metric implementation satisfies the
metric axioms on random data (hypothesis)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metric.cosine import AngularMetric
from repro.metric.euclidean import EuclideanMetric
from repro.metric.hamming import HammingMetric
from repro.metric.lp import ChebyshevMetric, ManhattanMetric, MinkowskiMetric
from repro.metric.validation import check_metric_axioms

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def point_arrays(min_n=3, max_n=12, dim=3):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_n, max_n), st.just(dim)
        ),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(pts=point_arrays())
def test_euclidean_axioms(pts):
    check_metric_axioms(EuclideanMetric(pts))


@settings(max_examples=40, deadline=None)
@given(pts=point_arrays())
def test_manhattan_axioms(pts):
    check_metric_axioms(ManhattanMetric(pts))


@settings(max_examples=40, deadline=None)
@given(pts=point_arrays())
def test_chebyshev_axioms(pts):
    check_metric_axioms(ChebyshevMetric(pts))


@settings(max_examples=30, deadline=None)
@given(pts=point_arrays(), p=st.floats(min_value=1.0, max_value=5.0))
def test_minkowski_axioms(pts, p):
    check_metric_axioms(MinkowskiMetric(pts, p=p))


@settings(max_examples=40, deadline=None)
@given(
    pts=arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(3, 10), st.just(4)),
        elements=st.sampled_from([0.0, 1.0, 2.0]),
    )
)
def test_hamming_axioms(pts):
    check_metric_axioms(HammingMetric(pts))


@settings(max_examples=40, deadline=None)
@given(pts=point_arrays())
def test_angular_axioms(pts):
    norms = np.linalg.norm(pts, axis=1)
    pts = pts[norms > 1e-6]
    if pts.shape[0] < 3:
        return
    check_metric_axioms(AngularMetric(pts))


class TestValidatorItself:
    def test_catches_asymmetry(self):
        from repro.metric.matrix_metric import MatrixMetric

        bad = MatrixMetric(
            np.array([[0.0, 1.0], [2.0, 0.0]]), validate=False
        )
        with pytest.raises(AssertionError, match="symmetric"):
            check_metric_axioms(bad, sample_size=2)

    def test_catches_triangle_violation(self):
        from repro.metric.matrix_metric import MatrixMetric

        bad = MatrixMetric(
            np.array(
                [[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]]
            ),
            validate=False,
        )
        with pytest.raises(AssertionError, match="triangle"):
            check_metric_axioms(bad, sample_size=3)

    def test_accepts_pseudometric_duplicates(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        check_metric_axioms(EuclideanMetric(pts), sample_size=3)
