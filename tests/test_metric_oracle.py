"""Tests for CountingOracle and CachedOracle wrappers."""

import numpy as np
import pytest

from repro.metric.euclidean import EuclideanMetric
from repro.metric.oracle import CachedOracle, CountingOracle


@pytest.fixture
def inner(rng):
    return EuclideanMetric(rng.normal(size=(20, 2)))


class TestCounting:
    def test_counts_matrix_cells(self, inner):
        c = CountingOracle(inner)
        c.pairwise(np.arange(4), np.arange(5))
        assert c.evaluations == 20 and c.calls == 1

    def test_counts_accumulate(self, inner):
        c = CountingOracle(inner)
        c.distance(0, 1)
        c.distance(2, 3)
        assert c.evaluations == 2 and c.calls == 2

    def test_helpers_count_through(self, inner):
        c = CountingOracle(inner)
        c.dist_to_set(np.arange(10), [0, 1])
        assert c.evaluations == 20

    def test_reset(self, inner):
        c = CountingOracle(inner)
        c.distance(0, 1)
        c.reset()
        assert c.evaluations == 0 and c.calls == 0

    def test_values_unchanged(self, inner):
        c = CountingOracle(inner)
        I = np.arange(10)
        assert np.allclose(c.pairwise(I, I), inner.pairwise(I, I))

    def test_point_words_delegates(self, inner):
        assert CountingOracle(inner).point_words() == inner.point_words()


class TestCached:
    def test_hit_and_miss_counters(self, inner):
        c = CachedOracle(inner)
        c.distance(0, 1)
        c.distance(0, 1)
        c.distance(1, 0)  # symmetric key: also a hit
        assert c.misses == 1 and c.hits == 2

    def test_values_correct(self, inner):
        c = CachedOracle(inner)
        assert c.distance(3, 4) == pytest.approx(inner.distance(3, 4))
        assert c.distance(4, 3) == pytest.approx(inner.distance(3, 4))

    def test_capacity_cap(self, inner):
        c = CachedOracle(inner, max_entries=1)
        c.distance(0, 1)
        c.distance(2, 3)  # over capacity: not stored
        assert len(c._cache) == 1
        c.distance(2, 3)
        assert c.misses == 3  # second (2,3) call missed again

    def test_matrix_calls_bypass_cache(self, inner):
        c = CachedOracle(inner)
        c.pairwise(np.arange(5), np.arange(5))
        assert c.hits == 0 and c.misses == 0

    def test_composition(self, inner):
        both = CountingOracle(CachedOracle(inner))
        both.pairwise(np.arange(3), np.arange(3))
        assert both.evaluations == 9
