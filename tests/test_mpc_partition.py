"""Tests for the input partitioners."""

import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.mpc.partition import (
    adversarial_partition,
    block_partition,
    get_partitioner,
    random_partition,
    skewed_partition,
)

ALL = [random_partition, block_partition, skewed_partition]


def check_cover(parts, n, m):
    assert len(parts) == m
    concat = np.concatenate(parts)
    assert np.array_equal(np.sort(concat), np.arange(n))
    if n >= m:
        assert all(p.size >= 1 for p in parts)


class TestCommonContract:
    @pytest.mark.parametrize("fn", ALL)
    @pytest.mark.parametrize("n,m", [(100, 4), (17, 5), (8, 8), (1000, 1)])
    def test_disjoint_cover(self, fn, n, m, rng):
        check_cover(fn(n, m, rng), n, m)

    @pytest.mark.parametrize("fn", ALL)
    def test_parts_sorted_int64(self, fn, rng):
        parts = fn(50, 3, rng)
        for p in parts:
            assert p.dtype == np.int64
            assert np.array_equal(p, np.sort(p))


class TestRandom:
    def test_deterministic_given_rng(self):
        a = random_partition(100, 4, np.random.default_rng(7))
        b = random_partition(100, 4, np.random.default_rng(7))
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_roughly_balanced(self, rng):
        parts = random_partition(1000, 4, rng)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestBlock:
    def test_contiguity(self):
        parts = block_partition(10, 3)
        flat = np.concatenate(parts)
        assert np.array_equal(flat, np.arange(10))
        for p in parts:
            assert np.array_equal(p, np.arange(p[0], p[-1] + 1))


class TestSkewed:
    def test_decreasing_sizes(self, rng):
        parts = skewed_partition(1000, 5, rng, decay=0.5)
        sizes = [p.size for p in parts]
        assert sizes[0] > sizes[-1]

    def test_invalid_decay(self, rng):
        with pytest.raises(PartitionError):
            skewed_partition(10, 2, rng, decay=0.0)
        with pytest.raises(PartitionError):
            skewed_partition(10, 2, rng, decay=1.5)


class TestAdversarial:
    def test_colocates_clusters(self, rng):
        labels = np.repeat(np.arange(4), 25)
        parts = adversarial_partition(100, 2, labels, rng)
        check_cover(parts, 100, 2)
        # cluster 0 and 2 on machine 0; 1 and 3 on machine 1
        assert set(labels[parts[0]]) == {0, 2}
        assert set(labels[parts[1]]) == {1, 3}

    def test_label_length_mismatch(self, rng):
        with pytest.raises(PartitionError, match="length n"):
            adversarial_partition(10, 2, np.zeros(5, dtype=int), rng)


class TestRegistry:
    def test_lookup(self):
        assert get_partitioner("random") is random_partition
        assert get_partitioner("block") is block_partition

    def test_unknown_name(self):
        with pytest.raises(PartitionError, match="unknown partitioner"):
            get_partitioner("nope")
