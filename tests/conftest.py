"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import EuclideanMetric, MPCCluster
from repro.constants import TheoryConstants


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_metric(rng):
    """60 well-spread 2-D points — cheap enough for exact checks."""
    pts = rng.normal(scale=3.0, size=(60, 2))
    return EuclideanMetric(pts)


@pytest.fixture
def medium_metric(rng):
    """400 gaussian-mixture points."""
    means = rng.uniform(-10, 10, size=(6, 2))
    labels = rng.integers(0, 6, size=400)
    pts = means[labels] + rng.normal(size=(400, 2))
    return EuclideanMetric(pts)


@pytest.fixture
def practical():
    return TheoryConstants.practical()


def make_cluster(metric, m=4, seed=0, **kwargs) -> MPCCluster:
    return MPCCluster(metric, num_machines=m, seed=seed, **kwargs)
