"""Tests for the graph shortest-path metric (own Dijkstra vs networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.metric.graph_metric import GraphShortestPathMetric, dijkstra


def random_connected_graph(n, rng):
    """Random weighted graph guaranteed connected via a spanning path."""
    edges = [(i, i + 1, float(rng.uniform(0.5, 2.0))) for i in range(n - 1)]
    extra = rng.integers(0, n, size=(2 * n, 2))
    for u, v in extra:
        if u != v:
            edges.append((int(u), int(v), float(rng.uniform(0.5, 3.0))))
    return edges


class TestDijkstra:
    def test_matches_networkx(self, rng):
        n = 40
        edges = random_connected_graph(n, rng)
        metric = GraphShortestPathMetric(n, edges)
        G = nx.Graph()
        G.add_nodes_from(range(n))
        for u, v, w in edges:
            if G.has_edge(u, v):
                G[u][v]["weight"] = min(G[u][v]["weight"], w)
            else:
                G.add_edge(u, v, weight=w)
        ref = dict(nx.single_source_dijkstra_path_length(G, 0))
        ours = metric.pairwise([0], np.arange(n))[0]
        for v in range(n):
            assert ours[v] == pytest.approx(ref[v])

    def test_path_graph_distances(self):
        m = GraphShortestPathMetric(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        assert m.distance(0, 3) == pytest.approx(6.0)
        assert m.distance(1, 3) == pytest.approx(5.0)

    def test_dijkstra_unreachable_is_inf(self):
        adj = [[(1, 1.0)], [(0, 1.0)], []]
        dist = dijkstra(adj, 0)
        assert np.isinf(dist[2])


class TestConstruction:
    def test_rejects_disconnected_on_precompute(self):
        with pytest.raises(ValueError, match="disconnected"):
            GraphShortestPathMetric(4, [(0, 1, 1.0), (2, 3, 1.0)], precompute=True)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="non-negative"):
            GraphShortestPathMetric(2, [(0, 1, -1.0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="out of range"):
            GraphShortestPathMetric(2, [(0, 5, 1.0)])

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError, match="at least one"):
            GraphShortestPathMetric(0, [])

    def test_lazy_mode_memoizes(self, rng):
        n = 30
        edges = random_connected_graph(n, rng)
        m = GraphShortestPathMetric(n, edges, precompute=False)
        assert len(m._rows) == 0
        m.pairwise([3], [5])
        assert 3 in m._rows
        first = m.pairwise([3], np.arange(n)).copy()
        second = m.pairwise([3], np.arange(n))
        assert np.array_equal(first, second)

    def test_lazy_and_eager_agree(self, rng):
        n = 25
        edges = random_connected_graph(n, rng)
        eager = GraphShortestPathMetric(n, edges, precompute=True)
        lazy = GraphShortestPathMetric(n, edges, precompute=False)
        I = np.arange(n)
        assert np.allclose(eager.pairwise(I, I), lazy.pairwise(I, I))

    def test_symmetry(self, rng):
        n = 20
        m = GraphShortestPathMetric(n, random_connected_graph(n, rng))
        D = m.pairwise(np.arange(n), np.arange(n))
        assert np.allclose(D, D.T)

    def test_point_words_is_one(self, rng):
        m = GraphShortestPathMetric(5, random_connected_graph(5, rng))
        assert m.point_words() == 1
