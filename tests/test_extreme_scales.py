"""Numerically extreme workloads: huge dynamic ranges and degenerate
geometries that stress the geometric threshold ladders."""

import numpy as np
import pytest

from repro.analysis.validation import (
    verify_diversity_solution,
    verify_kcenter_solution,
)
from repro.core import mpc_diversity, mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.workloads.adversarial import colinear_chain, exponential_spread


class TestExponentialSpread:
    """Distances spanning many orders of magnitude: the ladder indices
    stay well-conditioned because they are *relative* to r."""

    @pytest.fixture
    def metric(self):
        return EuclideanMetric(exponential_spread(40, base=2.0))

    def test_kcenter(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_kcenter(cluster, 4, epsilon=0.2)
        verify_kcenter_solution(metric, res.centers, 4, res.radius)

    def test_diversity_picks_the_tail(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_diversity(cluster, 3, epsilon=0.2)
        verify_diversity_solution(metric, res.ids, 3, res.diversity)
        # optimal 3-subset is {2^37, 2^38, 2^39}-ish: diversity ~ 2^37;
        # the 2.4-factor guarantee keeps us in that magnitude
        assert res.diversity >= 2.0**37 / 2.4

    def test_tiny_scale(self):
        """Everything at 1e-9 scale: absolute tolerances must not bite."""
        pts = 1e-9 * np.random.default_rng(0).normal(size=(50, 2))
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_kcenter(cluster, 4, epsilon=0.2)
        verify_kcenter_solution(metric, res.centers, 4, res.radius)
        assert 0 < res.radius < 1e-7


class TestColinear:
    def test_kcenter_on_chain(self):
        metric = EuclideanMetric(colinear_chain(60))
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_kcenter(cluster, 5, epsilon=0.2)
        verify_kcenter_solution(metric, res.centers, 5, res.radius)
        # optimal radius for 5 centers on a 59-long chain is ~5.9;
        # guarantee 2(1.2) puts us under ~14.2
        assert res.radius <= 2.4 * 5.9 + 1e-9

    def test_diversity_on_chain(self):
        metric = EuclideanMetric(colinear_chain(60))
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_diversity(cluster, 4, epsilon=0.2)
        verify_diversity_solution(metric, res.ids, 4, res.diversity)
        # optimal 4-subset spreads to pairwise ~19.67
        assert res.diversity >= 19.0 / 2.4


class TestHighDimensional:
    def test_kcenter_in_high_dim(self, rng):
        """d=64: distance concentration makes all pairwise distances
        similar — the ladder's flip lands immediately, which must still
        satisfy the contract."""
        pts = rng.normal(size=(200, 64))
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_kcenter(cluster, 6, epsilon=0.2)
        verify_kcenter_solution(metric, res.centers, 6, res.radius)

    def test_diversity_in_high_dim(self, rng):
        pts = rng.normal(size=(200, 64))
        metric = EuclideanMetric(pts)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_diversity(cluster, 6, epsilon=0.2)
        verify_diversity_solution(metric, res.ids, 6, res.diversity)
