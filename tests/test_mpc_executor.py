"""Tests for the local-work executors: threaded execution must be a
bit-for-bit drop-in for serial."""

import numpy as np
import pytest

from repro.core import mpc_diversity, mpc_k_bounded_mis, mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import SerialExecutor, ThreadedExecutor


class TestExecutorsDirect:
    def test_serial_order(self):
        out = SerialExecutor().map_indexed(lambda i: i * i, 5)
        assert out == [0, 1, 4, 9, 16]

    def test_threaded_order_preserved(self):
        ex = ThreadedExecutor(max_workers=4)
        out = ex.map_indexed(lambda i: i * i, 16)
        assert out == [i * i for i in range(16)]
        ex.shutdown()

    def test_threaded_single_task_inline(self):
        ex = ThreadedExecutor()
        assert ex.map_indexed(lambda i: i + 1, 1) == [1]
        assert ex._pool is None  # no pool spun up for one task

    def test_threaded_exception_propagates(self):
        ex = ThreadedExecutor(max_workers=2)

        def boom(i):
            if i == 3:
                raise RuntimeError("task 3 failed")
            return i

        with pytest.raises(RuntimeError, match="task 3"):
            ex.map_indexed(boom, 8)
        ex.shutdown()

    def test_shutdown_idempotent(self):
        ex = ThreadedExecutor()
        ex.map_indexed(lambda i: i, 4)
        ex.shutdown()
        ex.shutdown()


class TestBitIdenticalResults:
    """Same seed + threaded executor == same seed + serial executor."""

    @pytest.fixture
    def metric(self, rng):
        return EuclideanMetric(rng.normal(scale=3.0, size=(300, 2)))

    def run_both(self, metric, fn):
        out = []
        for executor in (SerialExecutor(), ThreadedExecutor(max_workers=8)):
            cluster = MPCCluster(metric, 4, seed=7, executor=executor)
            out.append((fn(cluster), cluster))
        return out

    def test_mis_identical(self, metric):
        (r1, c1), (r2, c2) = self.run_both(
            metric, lambda c: mpc_k_bounded_mis(c, 0.7, 10)
        )
        assert np.array_equal(np.sort(r1.ids), np.sort(r2.ids))
        assert c1.stats.total_words == c2.stats.total_words
        assert c1.stats.rounds == c2.stats.rounds

    def test_kcenter_identical(self, metric):
        (r1, _), (r2, _) = self.run_both(
            metric, lambda c: mpc_kcenter(c, 6, epsilon=0.2)
        )
        assert r1.radius == r2.radius
        assert np.array_equal(np.sort(r1.centers), np.sort(r2.centers))

    def test_diversity_identical(self, metric):
        (r1, _), (r2, _) = self.run_both(
            metric, lambda c: mpc_diversity(c, 6, epsilon=0.2)
        )
        assert r1.diversity == r2.diversity

    def test_communication_ledger_identical(self, metric):
        (_, c1), (_, c2) = self.run_both(
            metric, lambda c: mpc_k_bounded_mis(c, 0.7, 10)
        )
        for a, b in zip(c1.stats.rounds_log, c2.stats.rounds_log):
            assert np.array_equal(a.sent, b.sent)
            assert np.array_equal(a.received, b.received)
