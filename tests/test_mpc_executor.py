"""Tests for the local-work executors: threaded and process execution
must be bit-for-bit drop-ins for serial — results, communication
ledger, and oracle counters alike."""

import numpy as np
import pytest

from repro.core import mpc_diversity, mpc_k_bounded_mis, mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.metric.oracle import CountingOracle
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import (
    BACKENDS,
    ExecutionBackend,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    get_executor,
)


class TestExecutorsDirect:
    def test_serial_order(self):
        out = SerialExecutor().map_indexed(lambda i: i * i, 5)
        assert out == [0, 1, 4, 9, 16]

    def test_threaded_order_preserved(self):
        ex = ThreadedExecutor(max_workers=4)
        out = ex.map_indexed(lambda i: i * i, 16)
        assert out == [i * i for i in range(16)]
        ex.shutdown()

    def test_threaded_single_task_inline(self):
        ex = ThreadedExecutor()
        assert ex.map_indexed(lambda i: i + 1, 1) == [1]
        assert ex._pool is None  # no pool spun up for one task

    def test_threaded_exception_propagates(self):
        ex = ThreadedExecutor(max_workers=2)

        def boom(i):
            if i == 3:
                raise RuntimeError("task 3 failed")
            return i

        with pytest.raises(RuntimeError, match="task 3"):
            ex.map_indexed(boom, 8)
        ex.shutdown()

    def test_shutdown_idempotent(self):
        ex = ThreadedExecutor()
        ex.map_indexed(lambda i: i, 4)
        ex.shutdown()
        ex.shutdown()


class TestBitIdenticalResults:
    """Same seed + threaded executor == same seed + serial executor."""

    @pytest.fixture
    def metric(self, rng):
        return EuclideanMetric(rng.normal(scale=3.0, size=(300, 2)))

    def run_both(self, metric, fn):
        out = []
        for executor in (SerialExecutor(), ThreadedExecutor(max_workers=8)):
            cluster = MPCCluster(metric, 4, seed=7, executor=executor)
            out.append((fn(cluster), cluster))
        return out

    def test_mis_identical(self, metric):
        (r1, c1), (r2, c2) = self.run_both(
            metric, lambda c: mpc_k_bounded_mis(c, 0.7, 10)
        )
        assert np.array_equal(np.sort(r1.ids), np.sort(r2.ids))
        assert c1.stats.total_words == c2.stats.total_words
        assert c1.stats.rounds == c2.stats.rounds

    def test_kcenter_identical(self, metric):
        (r1, _), (r2, _) = self.run_both(
            metric, lambda c: mpc_kcenter(c, 6, epsilon=0.2)
        )
        assert r1.radius == r2.radius
        assert np.array_equal(np.sort(r1.centers), np.sort(r2.centers))

    def test_diversity_identical(self, metric):
        (r1, _), (r2, _) = self.run_both(
            metric, lambda c: mpc_diversity(c, 6, epsilon=0.2)
        )
        assert r1.diversity == r2.diversity

    def test_communication_ledger_identical(self, metric):
        (_, c1), (_, c2) = self.run_both(
            metric, lambda c: mpc_k_bounded_mis(c, 0.7, 10)
        )
        for a, b in zip(c1.stats.rounds_log, c2.stats.rounds_log):
            assert np.array_equal(a.sent, b.sent)
            assert np.array_equal(a.received, b.received)


class TestProcessExecutorDirect:
    """max_workers is pinned > 1 so the fork path runs even on 1-core CI."""

    def test_order_preserved(self):
        ex = ProcessExecutor(max_workers=4)
        if ex.fallback_reason:
            pytest.skip(ex.fallback_reason)
        assert ex.map_indexed(lambda i: i * i, 16) == [i * i for i in range(16)]
        ex.shutdown()

    def test_closure_capture(self):
        # closures can't be pickled — fork-based workers must still see them
        offset = 1000
        ex = ProcessExecutor(max_workers=2)
        if ex.fallback_reason:
            pytest.skip(ex.fallback_reason)
        assert ex.map_indexed(lambda i: i + offset, 6) == [1000 + i for i in range(6)]
        ex.shutdown()

    def test_single_task_stays_in_driver(self):
        calls = []
        ex = ProcessExecutor(max_workers=4)
        # a driver-side mutation survives only if the task ran in-process
        assert ex.map_indexed(lambda i: calls.append(i) or i, 1) == [0]
        assert calls == [0]

    def test_exception_reraised_with_context(self):
        ex = ProcessExecutor(max_workers=2)
        if ex.fallback_reason:
            pytest.skip(ex.fallback_reason)

        def boom(i):
            if i == 3:
                raise RuntimeError("task 3 failed")
            return i

        # worker failure falls back to a serial re-run, which raises the
        # original exception with a real traceback
        with pytest.raises(RuntimeError, match="task 3"):
            ex.map_indexed(boom, 8)
        ex.shutdown()

    def test_unpicklable_result_falls_back(self):
        ex = ProcessExecutor(max_workers=2)
        if ex.fallback_reason:
            pytest.skip(ex.fallback_reason)
        out = ex.map_indexed(lambda i: lambda: i, 4)  # lambdas don't pickle
        assert [f() for f in out] == [0, 1, 2, 3]
        ex.shutdown()

    def test_fallback_reason_forces_serial(self):
        ex = ProcessExecutor(max_workers=4)
        ex.fallback_reason = "simulated platform without fork"
        assert ex.map_indexed(lambda i: i * 2, 8) == [i * 2 for i in range(8)]

    def test_shutdown_idempotent(self):
        ex = ProcessExecutor(max_workers=2)
        ex.shutdown()
        ex.shutdown()


class TestBackendProtocolAndFactory:
    def test_all_executors_satisfy_protocol(self):
        for ex in (SerialExecutor(), ThreadedExecutor(), ProcessExecutor()):
            assert isinstance(ex, ExecutionBackend)

    def test_factory_names_and_aliases(self):
        from repro.mpc.remote import RemoteExecutor

        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadedExecutor)
        assert isinstance(get_executor("threaded"), ThreadedExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)
        assert isinstance(get_executor("fork"), ProcessExecutor)
        assert isinstance(get_executor("remote"), RemoteExecutor)
        assert isinstance(get_executor("sockets"), RemoteExecutor)
        assert set(BACKENDS) == {"serial", "thread", "process", "remote"}

    def test_factory_passthrough_and_errors(self):
        ex = ThreadedExecutor()
        assert get_executor(ex) is ex
        with pytest.raises(ValueError, match="unknown backend"):
            get_executor("gpu")
        with pytest.raises(TypeError):
            get_executor(42)

    def test_factory_forwards_max_workers(self):
        assert get_executor("thread", max_workers=3).max_workers == 3
        assert get_executor("process", max_workers=3).max_workers == 3

    def test_unknown_backend_error_lists_valid_names(self):
        """The error must name every valid backend, so a typo'd config
        is self-documenting."""
        with pytest.raises(ValueError) as exc:
            get_executor("gpu")
        message = str(exc.value)
        for name in BACKENDS:
            assert repr(name) in message
        assert "'fork'" in message  # aliases listed too


class TestWorkerCountConfiguration:
    def test_explicit_arg_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert ProcessExecutor(max_workers=2).max_workers == 2

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        ex = ProcessExecutor()
        assert ex.max_workers == 3
        assert ex.effective_workers(8) <= 3

    def test_env_var_unset_means_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        ex = ProcessExecutor()
        assert ex.max_workers is None
        assert ex.effective_workers() == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", ["zero-ish", "0", "-2", "1.5"])
    def test_invalid_env_var_fails_loudly(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            ProcessExecutor()

    def test_effective_workers_capped_by_batch(self):
        ex = ProcessExecutor(max_workers=8)
        assert ex.effective_workers(3) == min(3, ex.effective_workers())

    def test_effective_workers_serial_and_thread(self):
        assert SerialExecutor().effective_workers(16) == 1
        assert ThreadedExecutor(max_workers=5).effective_workers(16) == 5
        assert ThreadedExecutor().effective_workers(4) == 4

    def test_thread_effective_workers_requires_count_when_unsized(self):
        # without max_workers the pool is sized from the batch — the
        # old code answered 1 here, understating the real parallelism
        with pytest.raises(ValueError, match="pass count"):
            ThreadedExecutor().effective_workers()
        assert ThreadedExecutor(max_workers=3).effective_workers() == 3

    def test_thread_effective_workers_reports_live_pool_size(self):
        ex = ThreadedExecutor()
        try:
            assert ex.map_indexed(lambda i: i * i, 4) == [0, 1, 4, 9]
            # the pool was sized by the first batch and is reused, so
            # that size is the honest answer for any later batch
            assert ex.effective_workers() == 4
            assert ex.effective_workers(16) == 4
        finally:
            ex.shutdown()

    def test_fallback_reports_one_worker(self):
        ex = ProcessExecutor(max_workers=8)
        ex.fallback_reason = "forced for the test"
        assert ex.effective_workers(16) == 1


class TestProcessBitIdentical:
    """Same seed + forked workers == same seed + serial, down to the
    CountingOracle ledger."""

    @pytest.fixture
    def pts(self, rng):
        return rng.normal(scale=3.0, size=(300, 2))

    def run_both(self, pts, fn):
        out = []
        for executor in (SerialExecutor(), ProcessExecutor(max_workers=4)):
            oracle = CountingOracle(EuclideanMetric(pts))
            cluster = MPCCluster(oracle, 4, seed=7, executor=executor)
            out.append((fn(cluster), cluster, oracle))
            executor.shutdown()
        return out

    def test_kcenter_identical(self, pts):
        (r1, c1, o1), (r2, c2, o2) = self.run_both(
            pts, lambda c: mpc_kcenter(c, 6, epsilon=0.2)
        )
        assert r1.radius == r2.radius
        assert np.array_equal(np.sort(r1.centers), np.sort(r2.centers))
        assert c1.stats.rounds == c2.stats.rounds

    def test_mis_identical(self, pts):
        (r1, c1, _), (r2, c2, _) = self.run_both(
            pts, lambda c: mpc_k_bounded_mis(c, 0.7, 10)
        )
        assert np.array_equal(np.sort(r1.ids), np.sort(r2.ids))
        assert c1.stats.total_words == c2.stats.total_words

    def test_oracle_ledger_identical(self, pts):
        (_, _, o1), (_, _, o2) = self.run_both(
            pts, lambda c: mpc_kcenter(c, 6, epsilon=0.2)
        )
        assert o1.calls == o2.calls
        assert o1.evaluations == o2.evaluations

    def test_rng_streams_advance_identically(self, pts):
        """After a run, the driver-side machine RNGs must be in the same
        state on both backends — the next algorithm on the same cluster
        then also agrees."""
        (_, c1, _), (_, c2, _) = self.run_both(
            pts, lambda c: mpc_k_bounded_mis(c, 0.7, 10)
        )
        for m1, m2 in zip(c1.machines, c2.machines):
            assert m1.rng.random() == m2.rng.random()
