"""The documentation is tested: snippets run, links resolve.

Two gates over the repo's markdown:

* every fenced ``python`` block in ``docs/*.md`` is executed (blocks
  within one page share a namespace, so later blocks may build on
  earlier ones). A block that is deliberately not runnable — a
  fragment, or something that needs a live server — opts out with an
  HTML comment on the line(s) before the fence::

      <!-- docs-test: skip -->
      ```python
      client = ServiceClient("http://localhost:8000")  # no server here
      ```

* every relative markdown link in every tracked ``*.md`` (docs and
  top level) must point at a file that exists — dead links fail CI,
  not readers.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

SKIP_MARKER = "docs-test: skip"

#: markdown pages whose relative links are checked (tracked sources
#: only — virtualenvs or vendored trees under the repo are not ours)
LINKED_PAGES = sorted(
    p for p in list(ROOT.glob("*.md")) + list(DOCS.glob("*.md"))
)

_FENCE_RE = re.compile(r"^```(\w*)\s*$")
# [text](target) — excluding images; tolerate titles after the target
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def _python_blocks(path: Path):
    """``(start_line, source, skipped)`` per fenced python block."""
    lines = path.read_text().splitlines()
    blocks = []
    in_block = False
    lang = ""
    start = 0
    buf: list = []
    skip_armed = False
    for i, line in enumerate(lines, start=1):
        fence = _FENCE_RE.match(line.strip())
        if fence and not in_block:
            in_block, lang, start, buf = True, fence.group(1), i, []
            continue
        if in_block and line.strip() == "```":
            if lang == "python":
                blocks.append((start, "\n".join(buf), skip_armed))
            in_block = False
            skip_armed = False
            continue
        if in_block:
            buf.append(line)
        elif SKIP_MARKER in line:
            skip_armed = True
        elif line.strip():
            skip_armed = False
    return blocks


def _doc_pages_with_snippets():
    return sorted(p for p in DOCS.glob("*.md") if _python_blocks(p))


@pytest.mark.parametrize(
    "page", _doc_pages_with_snippets(), ids=lambda p: p.name
)
def test_docs_python_snippets_run(page, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippets that write files stay sandboxed
    namespace: dict = {"__name__": f"docs_snippet_{page.stem}"}
    ran = 0
    for start, source, skipped in _python_blocks(page):
        if skipped:
            continue
        code = compile(source, f"{page.name}:{start}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - that's the point
        except Exception as exc:
            pytest.fail(
                f"{page.name} snippet at line {start} raised "
                f"{type(exc).__name__}: {exc}"
            )
        ran += 1
    assert ran or any(s for _, _, s in _python_blocks(page)), (
        f"{page.name}: no runnable or explicitly-skipped snippets found"
    )


@pytest.mark.parametrize("page", LINKED_PAGES, ids=lambda p: p.name)
def test_no_dead_relative_links(page):
    dead = []
    for target in _LINK_RE.findall(page.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (page.parent / rel).resolve()
        if not resolved.exists():
            dead.append(target)
    assert not dead, f"{page.name} has dead relative links: {dead}"


def test_docs_index_covers_every_page():
    """docs/README.md must link every sibling docs page."""
    index = (DOCS / "README.md").read_text()
    missing = [
        p.name for p in DOCS.glob("*.md")
        if p.name != "README.md" and f"({p.name})" not in index
    ]
    assert not missing, f"docs/README.md does not link: {missing}"
