"""Cross-cutting integration: exotic metric × application combinations
and executor coverage of every application."""

import numpy as np

from repro.analysis.validation import (
    verify_diversity_solution,
    verify_ksupplier_solution,
)
from repro.core import mpc_diversity, mpc_ksupplier
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import ThreadedExecutor
from repro.workloads.geo import world_cities_metric
from repro.workloads.graphs import grid_graph_metric


class TestExoticCombos:
    def test_ksupplier_on_grid_graph(self):
        """Facility location along a grid road network."""
        metric = grid_graph_metric(12, 12)  # 144 nodes
        ids = np.arange(144)
        customers, suppliers = ids[:100], ids[100:]
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_ksupplier(cluster, customers, suppliers, 5, epsilon=0.3)
        verify_ksupplier_solution(
            metric, customers, suppliers, res.suppliers, 5, res.radius
        )

    def test_diversity_on_sphere(self, rng):
        metric, _ = world_cities_metric(250, rng=rng)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_diversity(cluster, 6, epsilon=0.3)
        verify_diversity_solution(metric, res.ids, 6, res.diversity)
        # six spread cities on Earth are thousands of km apart
        assert res.diversity > 1000.0

    def test_ksupplier_threaded_executor_identical(self, rng):
        pts = rng.normal(size=(150, 2))
        metric = EuclideanMetric(pts)
        C, S = np.arange(100), np.arange(100, 150)
        radii = []
        for executor in (None, ThreadedExecutor(max_workers=6)):
            cluster = MPCCluster(metric, 4, seed=3, executor=executor)
            radii.append(
                mpc_ksupplier(cluster, C, S, 4, epsilon=0.25).radius
            )
        assert radii[0] == radii[1]

    def test_dominating_set_threaded_identical(self, rng):
        from repro.core import mpc_dominating_set

        pts = rng.uniform(0, 12, size=(200, 2))
        metric = EuclideanMetric(pts)
        sizes = []
        for executor in (None, ThreadedExecutor(max_workers=6)):
            cluster = MPCCluster(metric, 4, seed=4, executor=executor)
            sizes.append(mpc_dominating_set(cluster, 1.0).size)
        assert sizes[0] == sizes[1]


class TestCollectiveEdgeCases:
    def test_broadcast_include_self(self, rng):
        metric = EuclideanMetric(rng.normal(size=(20, 2)))
        cluster = MPCCluster(metric, 3, seed=0)
        cluster.broadcast(1, 9.0, include_self=True)
        inboxes = cluster.step()
        assert len(inboxes[1]) == 1

    def test_all_to_all_with_empty_batches(self, rng):
        metric = EuclideanMetric(rng.normal(size=(20, 2)))
        cluster = MPCCluster(metric, 3, seed=0)
        batches = {0: cluster.machines[0].local_ids[:2], 1: np.zeros(0, np.int64), 2: np.zeros(0, np.int64)}
        cluster.all_to_all_points(batches)
        for mach in cluster.machines:
            assert mach.knows(batches[0])

    def test_step_with_no_messages_still_counts_round(self, rng):
        metric = EuclideanMetric(rng.normal(size=(10, 2)))
        cluster = MPCCluster(metric, 2, seed=0)
        cluster.step()
        assert cluster.stats.rounds == 1
        assert cluster.stats.total_words == 0

    def test_central_knows_helper(self, rng):
        metric = EuclideanMetric(rng.normal(size=(20, 2)))
        cluster = MPCCluster(metric, 2, seed=0)
        assert cluster.central_knows(cluster.central.local_ids)
        other = cluster.machines[1].local_ids
        assert not cluster.central_knows(other)
