"""Targeted tests for small branches not covered elsewhere."""

import numpy as np
import pytest

from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(30, 2)))


class TestMetricBranches:
    def test_argmax_dist_to_set_empty_candidates(self, metric):
        with pytest.raises(ValueError, match="empty"):
            metric.argmax_dist_to_set([], [0])

    def test_pairwise_empty_sides(self, metric):
        assert metric.pairwise([], [1, 2]).shape == (0, 2)
        assert metric.pairwise([1], []).shape == (1, 0)

    def test_count_within_empty_sides(self, metric):
        assert metric.count_within([], [0], 1.0).size == 0
        assert np.array_equal(metric.count_within([0, 1], [], 1.0), [0, 0])

    def test_dist_to_set_empty_queries(self, metric):
        assert metric.dist_to_set([], [0]).size == 0

    def test_diversity_empty(self, metric):
        assert np.isinf(metric.diversity([]))


class TestClusterBranches:
    def test_broadcast_points_with_columns(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        ids = cluster.central.local_ids[:3]
        cluster.broadcast_points_from_central(
            ids, columns={"p": np.arange(3, dtype=float)}, tag="x"
        )
        for mach in cluster.machines:
            assert mach.knows(ids)
        # columns cost one extra word per point
        r = cluster.stats.rounds_log[-1]
        pw = metric.point_words()
        assert r.sent[0] == 2 * 3 * (1 + pw + 1)  # two receivers

    def test_executor_shutdown_via_cluster(self, metric):
        from repro.mpc.executor import ThreadedExecutor

        ex = ThreadedExecutor(max_workers=2)
        cluster = MPCCluster(metric, 3, seed=0, executor=ex)
        out = cluster.map_machines(lambda mach: mach.id)
        assert out == [0, 1, 2]
        ex.shutdown()

    def test_partition_sizes(self, metric):
        cluster = MPCCluster(metric, 3, seed=0)
        assert cluster.partition_sizes().sum() == 30

    def test_n_property(self, metric):
        assert MPCCluster(metric, 2, seed=0).n == 30


class TestConstantsEdge:
    def test_light_degree_bound_used_by_lemma(self):
        from repro.constants import TheoryConstants

        c = TheoryConstants.practical()
        # bound grows linearly in m
        assert c.light_degree_bound(100, 8) == pytest.approx(
            2 * c.light_degree_bound(100, 4)
        )
