"""Tests for Hamming, Angular, and Matrix metrics."""

import numpy as np
import pytest

from repro.metric.cosine import AngularMetric
from repro.metric.hamming import HammingMetric
from repro.metric.matrix_metric import MatrixMetric


class TestHamming:
    def test_counts_differing_coordinates(self):
        pts = np.array([[0, 0, 0], [0, 1, 0], [1, 1, 1]], dtype=float)
        m = HammingMetric(pts)
        assert m.distance(0, 1) == 1
        assert m.distance(0, 2) == 3
        assert m.distance(1, 2) == 2

    def test_zero_on_identical(self):
        pts = np.array([[1, 2], [1, 2]], dtype=float)
        assert HammingMetric(pts).distance(0, 1) == 0

    def test_symmetric_matrix(self, rng):
        pts = rng.integers(0, 3, size=(20, 5)).astype(float)
        m = HammingMetric(pts)
        D = m.pairwise(np.arange(20), np.arange(20))
        assert np.array_equal(D, D.T)


class TestAngular:
    def test_orthogonal_is_half_pi(self):
        m = AngularMetric([[1.0, 0.0], [0.0, 1.0]])
        assert m.distance(0, 1) == pytest.approx(np.pi / 2)

    def test_parallel_is_zero(self):
        m = AngularMetric([[1.0, 0.0], [2.0, 0.0]])
        assert m.distance(0, 1) == pytest.approx(0.0, abs=1e-9)

    def test_antiparallel_is_pi(self):
        m = AngularMetric([[1.0, 0.0], [-3.0, 0.0]])
        assert m.distance(0, 1) == pytest.approx(np.pi)

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError, match="nonzero"):
            AngularMetric([[0.0, 0.0], [1.0, 0.0]])

    def test_scale_invariant(self, rng):
        pts = rng.normal(size=(10, 4))
        m1 = AngularMetric(pts)
        m2 = AngularMetric(pts * 7.5)
        I = np.arange(10)
        # arccos amplifies float error near cos = ±1; 1e-6 absolute is fine
        assert np.allclose(m1.pairwise(I, I), m2.pairwise(I, I), atol=1e-6)


class TestMatrix:
    def test_roundtrip(self):
        D = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.5], [2.0, 1.5, 0.0]])
        m = MatrixMetric(D)
        assert m.distance(0, 2) == 2.0
        assert np.allclose(m.pairwise([0, 1], [2]), [[2.0], [1.5]])

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            MatrixMetric(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        D = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            MatrixMetric(D)

    def test_rejects_nonzero_diagonal(self):
        D = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            MatrixMetric(D)

    def test_rejects_negative(self):
        D = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            MatrixMetric(D)

    def test_rejects_triangle_violation(self):
        D = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        with pytest.raises(ValueError, match="triangle"):
            MatrixMetric(D)

    def test_validate_false_skips_checks(self):
        D = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        m = MatrixMetric(D, validate=False)  # should not raise
        assert m.distance(0, 2) == 10.0

    def test_matrix_readonly(self):
        D = np.array([[0.0, 1.0], [1.0, 0.0]])
        m = MatrixMetric(D)
        with pytest.raises(ValueError):
            m.matrix[0, 1] = 5.0
