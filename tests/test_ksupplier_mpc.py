"""Tests for Algorithm 6 — MPC (3+ε)-approximation k-supplier."""

import numpy as np
import pytest

from repro.analysis.validation import verify_ksupplier_solution
from repro.baselines.exact import exact_ksupplier
from repro.core.ksupplier import mpc_ksupplier
from repro.exceptions import InfeasibleInstanceError
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster


def small_instance(rng, nc=14, ns=8):
    pts = rng.normal(size=(nc + ns, 2))
    metric = EuclideanMetric(pts)
    return metric, np.arange(nc), np.arange(nc, nc + ns)


class TestApproximationFactor:
    @pytest.mark.parametrize("k", [2, 3])
    def test_factor_vs_exact_small(self, rng, k):
        metric, C, S = small_instance(rng)
        _, opt = exact_ksupplier(metric, C, S, k)
        cluster = MPCCluster(metric, 3, seed=0)
        eps = 0.1
        res = mpc_ksupplier(cluster, C, S, k, epsilon=eps)
        assert res.radius <= 3.0 * (1.0 + eps) * opt + 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_factor_across_seeds(self, seed):
        rng = np.random.default_rng(seed)
        metric, C, S = small_instance(rng)
        _, opt = exact_ksupplier(metric, C, S, 3)
        cluster = MPCCluster(metric, 3, seed=seed)
        res = mpc_ksupplier(cluster, C, S, 3, epsilon=0.2)
        assert res.radius <= 3.6 * opt + 1e-9

    def test_solution_validates(self, rng):
        metric, C, S = small_instance(rng, nc=60, ns=30)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_ksupplier(cluster, C, S, 5, epsilon=0.2)
        verify_ksupplier_solution(metric, C, S, res.suppliers, 5, res.radius)

    def test_opened_come_from_suppliers(self, rng):
        metric, C, S = small_instance(rng, nc=50, ns=25)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_ksupplier(cluster, C, S, 4, epsilon=0.2)
        assert np.isin(res.suppliers, S).all()
        assert res.size <= 4

    def test_coreset_value_is_nine_approx(self, rng):
        metric, C, S = small_instance(rng)
        _, opt = exact_ksupplier(metric, C, S, 3)
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_ksupplier(cluster, C, S, 3, epsilon=0.2)
        assert opt - 1e-9 <= res.coreset_value <= 9.0 * opt + 1e-9


class TestValidation:
    def test_empty_roles_rejected(self, rng):
        metric, C, S = small_instance(rng)
        cluster = MPCCluster(metric, 3, seed=0)
        with pytest.raises(InfeasibleInstanceError):
            mpc_ksupplier(cluster, [], S, 2)
        with pytest.raises(InfeasibleInstanceError):
            mpc_ksupplier(cluster, C, [], 2)

    def test_overlapping_roles_rejected(self, rng):
        metric, C, S = small_instance(rng)
        cluster = MPCCluster(metric, 3, seed=0)
        with pytest.raises(InfeasibleInstanceError):
            mpc_ksupplier(cluster, C, np.concatenate([S, C[:1]]), 2)

    def test_invalid_k(self, rng):
        metric, C, S = small_instance(rng)
        cluster = MPCCluster(metric, 3, seed=0)
        with pytest.raises(InfeasibleInstanceError):
            mpc_ksupplier(cluster, C, S, 0)

    def test_invalid_epsilon(self, rng):
        metric, C, S = small_instance(rng)
        cluster = MPCCluster(metric, 3, seed=0)
        with pytest.raises(ValueError):
            mpc_ksupplier(cluster, C, S, 2, epsilon=0.0)


class TestLadderEngagement:
    def test_binary_search_path_taken_when_ok0_fails(self, rng):
        """Customers in tight clusters with suppliers a long way off:
        τ₀ = r/9 is far below the minimum service distance, so ok(0)
        fails and the flip search must climb the ladder."""
        cust = np.concatenate(
            [rng.normal(size=(20, 2)), rng.normal(size=(20, 2)) + [30.0, 0.0]]
        )
        sup = rng.normal(size=(10, 2)) + [15.0, 40.0]  # all suppliers remote
        pts = np.concatenate([cust, sup])
        metric = EuclideanMetric(pts)
        C, S = np.arange(40), np.arange(40, 50)
        _, opt = exact_ksupplier(metric, C, S, 2)
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_ksupplier(cluster, C, S, 2, epsilon=0.1)
        verify_ksupplier_solution(metric, C, S, res.suppliers, 2, res.radius)
        assert res.radius <= 3.0 * 1.1 * opt + 1e-9
        # the 9-approx start is genuinely below the optimum here, so the
        # ladder had to move off index 0
        assert res.coreset_value / 9.0 < opt


class TestEdgeCases:
    def test_suppliers_on_customers(self, rng):
        """Suppliers co-located with customers: radius near zero when
        k >= #customer clusters."""
        base = rng.normal(size=(10, 2)) * 10
        cust = np.repeat(base, 4, axis=0) + 0.01 * rng.normal(size=(40, 2))
        sup = base  # one perfect supplier per cluster
        pts = np.concatenate([cust, sup])
        metric = EuclideanMetric(pts)
        C, S = np.arange(40), np.arange(40, 50)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_ksupplier(cluster, C, S, 10, epsilon=0.2)
        _, opt = exact_ksupplier(metric, C, S, 10)
        assert res.radius <= 3.6 * max(opt, 1e-12) + 1e-9

    def test_single_supplier(self, rng):
        metric, C, _ = small_instance(rng, nc=20, ns=1)
        S = np.array([20])
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_ksupplier(cluster, C, S, 3, epsilon=0.2)
        assert np.array_equal(res.suppliers, S)
        # with one supplier the optimum is forced; we must be within 3.6x
        opt = float(metric.dist_to_set(C, S).max())
        assert res.radius == pytest.approx(opt)

    def test_single_machine(self, rng):
        metric, C, S = small_instance(rng, nc=30, ns=15)
        cluster = MPCCluster(metric, 1, seed=0)
        res = mpc_ksupplier(cluster, C, S, 4, epsilon=0.2)
        verify_ksupplier_solution(metric, C, S, res.suppliers, 4, res.radius)

    def test_determinism(self, rng):
        metric, C, S = small_instance(rng, nc=50, ns=20)
        vals = []
        for _ in range(2):
            cluster = MPCCluster(metric, 4, seed=5)
            vals.append(mpc_ksupplier(cluster, C, S, 4, epsilon=0.2).radius)
        assert vals[0] == vals[1]

    def test_result_metadata(self, rng):
        metric, C, S = small_instance(rng, nc=40, ns=20)
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_ksupplier(cluster, C, S, 4, epsilon=0.25)
        assert res.k == 4 and res.epsilon == 0.25
        assert res.pivots is not None
        assert res.rounds > 0
