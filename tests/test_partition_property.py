"""Property-based tests for the partitioners (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.partition import (
    adversarial_partition,
    block_partition,
    random_partition,
    skewed_partition,
)


def check_invariants(parts, n, m):
    assert len(parts) == m
    concat = np.concatenate(parts) if parts else np.array([], dtype=np.int64)
    assert concat.size == n
    assert np.array_equal(np.sort(concat), np.arange(n))
    if n >= m:
        assert all(p.size >= 1 for p in parts)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 300), m=st.integers(1, 12), seed=st.integers(0, 100))
def test_random_partition_invariants(n, m, seed):
    check_invariants(random_partition(n, m, np.random.default_rng(seed)), n, m)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 300), m=st.integers(1, 12))
def test_block_partition_invariants(n, m):
    parts = block_partition(n, m)
    check_invariants(parts, n, m)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 300),
    m=st.integers(1, 12),
    seed=st.integers(0, 100),
    decay=st.floats(0.1, 1.0),
)
def test_skewed_partition_invariants(n, m, seed, decay):
    parts = skewed_partition(n, m, np.random.default_rng(seed), decay=decay)
    check_invariants(parts, n, m)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 200),
    m=st.integers(1, 8),
    clusters=st.integers(1, 10),
    seed=st.integers(0, 50),
)
def test_adversarial_partition_invariants(n, m, clusters, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, clusters, size=n)
    parts = adversarial_partition(n, m, labels, rng)
    check_invariants(parts, n, m)
