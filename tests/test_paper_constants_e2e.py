"""End-to-end runs under the paper-literal constants and under hostile
configurations: adversarial partitions, theory-scaled hard limits, and
the full algorithm set.  These are the 'everything on' runs."""

import pytest

from repro.analysis.validation import (
    verify_diversity_solution,
    verify_kcenter_solution,
    verify_ksupplier_solution,
)
from repro.constants import TheoryConstants
from repro.core import mpc_diversity, mpc_kcenter, mpc_ksupplier
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.limits import Limits
from repro.mpc.partition import adversarial_partition
from repro.workloads.clustered import separated_clusters
from repro.workloads.suppliers import supplier_instance


class TestPaperConstants:
    """δ = max(18, 12/ε²) literally; everything is light at these sizes,
    so the light path and exact-degree path carry the algorithms."""

    def test_diversity_paper_constants(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        res = mpc_diversity(
            cluster, 8, epsilon=0.2, constants=TheoryConstants.paper()
        )
        verify_diversity_solution(medium_metric, res.ids, 8, res.diversity)

    def test_supplier_paper_constants(self, rng):
        inst = supplier_instance(150, 60, rng=rng)
        metric = EuclideanMetric(inst.points)
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_ksupplier(
            cluster,
            inst.customers,
            inst.suppliers,
            5,
            epsilon=0.2,
            constants=TheoryConstants.paper(),
        )
        verify_ksupplier_solution(
            metric, inst.customers, inst.suppliers, res.suppliers, 5, res.radius
        )


class TestAdversarialPartition:
    """Whole ground-truth clusters co-located on single machines — the
    regime where local GMM sees no global structure."""

    def test_kcenter_quality_survives(self, rng):
        inst = separated_clusters(
            240, clusters=6, cluster_radius=1.0, separation=25.0, rng=rng
        )
        metric = EuclideanMetric(inst.points)
        parts = adversarial_partition(240, 3, inst.labels, rng)
        cluster = MPCCluster(metric, 3, partition=parts, seed=0)
        res = mpc_kcenter(cluster, 6, epsilon=0.15)
        verify_kcenter_solution(metric, res.centers, 6, res.radius)
        # guarantee: 2(1+eps) * optimal <= 2.3 * cluster_radius
        assert res.radius <= 2.3 * inst.kcenter_upper_bound + 1e-9

    def test_diversity_on_adversarial_partition(self, rng):
        inst = separated_clusters(
            240, clusters=6, cluster_radius=1.0, separation=25.0, rng=rng
        )
        metric = EuclideanMetric(inst.points)
        parts = adversarial_partition(240, 3, inst.labels, rng)
        cluster = MPCCluster(metric, 3, partition=parts, seed=0)
        res = mpc_diversity(cluster, 6, epsilon=0.15)
        verify_diversity_solution(metric, res.ids, 6, res.diversity)
        # six separated clusters: an optimal 6-subset takes one per cluster,
        # with diversity >= separation - 2*radius = 23; factor 2.3 applies
        assert res.diversity >= (inst.separation - 2.0) / 2.3 - 1e-9


class TestTheoryLimitsEverythingOn:
    """Strict mode + theory-scaled hard caps + all three applications."""

    @pytest.fixture
    def metric(self, rng):
        return EuclideanMetric(rng.normal(scale=4.0, size=(256, 2)))

    def test_kcenter(self, metric):
        lim = Limits.theory(n=256, m=4, k=6, dim=2, slack=512.0)
        cluster = MPCCluster(metric, 4, seed=1, strict=True, limits=lim)
        res = mpc_kcenter(cluster, 6, epsilon=0.25)
        verify_kcenter_solution(metric, res.centers, 6, res.radius)

    def test_diversity(self, metric):
        lim = Limits.theory(n=256, m=4, k=6, dim=2, slack=512.0)
        cluster = MPCCluster(metric, 4, seed=1, strict=True, limits=lim)
        res = mpc_diversity(cluster, 6, epsilon=0.25)
        verify_diversity_solution(metric, res.ids, 6, res.diversity)

    def test_supplier(self, rng):
        inst = supplier_instance(180, 76, rng=rng)
        metric = EuclideanMetric(inst.points)
        lim = Limits.theory(n=256, m=4, k=6, dim=2, slack=512.0)
        cluster = MPCCluster(metric, 4, seed=1, strict=True, limits=lim)
        res = mpc_ksupplier(cluster, inst.customers, inst.suppliers, 6, epsilon=0.25)
        verify_ksupplier_solution(
            metric, inst.customers, inst.suppliers, res.suppliers, 6, res.radius
        )
