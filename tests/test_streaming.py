"""Tests for the streaming doubling k-center baseline."""

import numpy as np
import pytest

from repro.baselines.exact import exact_kcenter
from repro.baselines.streaming import streaming_kcenter
from repro.metric.euclidean import EuclideanMetric


class TestStreamingKCenter:
    def test_factor_eight_vs_exact(self):
        for seed in range(4):
            pts = np.random.default_rng(seed).normal(size=(16, 2))
            metric = EuclideanMetric(pts)
            for k in (2, 3):
                _, opt = exact_kcenter(metric, k)
                centers, r = streaming_kcenter(metric, k)
                assert centers.size <= k
                assert r <= 8.0 * opt + 1e-9

    def test_at_most_k_centers(self, medium_metric):
        centers, _ = streaming_kcenter(medium_metric, 7)
        assert 1 <= centers.size <= 7
        assert np.unique(centers).size == centers.size

    def test_radius_reported_truthfully(self, medium_metric):
        centers, r = streaming_kcenter(medium_metric, 7)
        ids = np.arange(medium_metric.n)
        assert r == pytest.approx(float(medium_metric.dist_to_set(ids, centers).max()))

    def test_order_sensitivity_bounded(self, rng):
        """Different arrival orders change the result but stay within the
        factor bound of each other (both are ≤ 8·opt ≥ opt)."""
        pts = rng.normal(size=(200, 2))
        metric = EuclideanMetric(pts)
        _, r1 = streaming_kcenter(metric, 5)
        _, r2 = streaming_kcenter(metric, 5, order=rng.permutation(200))
        assert max(r1, r2) <= 8.0 * max(min(r1, r2), 1e-12)

    def test_duplicates_in_head(self):
        pts = np.concatenate([np.zeros((5, 2)), np.random.default_rng(0).normal(size=(30, 2))])
        metric = EuclideanMetric(pts)
        centers, r = streaming_kcenter(metric, 3)
        assert centers.size <= 3 and np.isfinite(r)

    def test_n_le_k(self, rng):
        metric = EuclideanMetric(rng.normal(size=(4, 2)))
        centers, r = streaming_kcenter(metric, 10)
        assert r == pytest.approx(0.0) or centers.size <= 4

    def test_invalid_order(self, medium_metric):
        with pytest.raises(ValueError, match="permutation"):
            streaming_kcenter(medium_metric, 3, order=np.zeros(5, dtype=int))

    def test_invalid_k(self, medium_metric):
        with pytest.raises(ValueError):
            streaming_kcenter(medium_metric, 0)

    def test_memory_is_bounded(self, rng):
        """The whole point of streaming: never more than k centers kept
        (checked indirectly — the returned set is <= k even on large n)."""
        pts = rng.normal(size=(2000, 2))
        metric = EuclideanMetric(pts)
        centers, r = streaming_kcenter(metric, 6)
        assert centers.size <= 6
        _, opt_ish = streaming_kcenter(metric, 6)  # deterministic repeat
        assert r == opt_ish
