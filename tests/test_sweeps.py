"""Analysis sweeps (repro.sweeps): spec validation, pure scoring and
ranking, the jobs-of-jobs manager end to end, durable analysis stores,
and the byte-identity guarantees the subsystem is built around.

Property tests (hypothesis): the ranking/recommendation is invariant
under the order cells are presented in, and the Pareto frontier matches
an independent brute-force dominance check on small random grids.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.datasets import DatasetRegistry, UnknownDatasetError
from repro.service.jobs import JobManager
from repro.service.store import (
    AnalysisRecord,
    InMemoryAnalysisStore,
    UnknownAnalysisError,
    open_stores,
)
from repro.sweeps import (
    MAX_CELLS,
    SWEEPABLE_SOLVERS,
    AnalysisNotReady,
    SweepManager,
    SweepSpec,
    build_report,
    pareto_frontier,
    quality_ratio,
    rank_cells,
    recommend,
)


def _stack(state_dir=None, workers=2):
    """(datasets, manager, sweeps) on a fresh store bundle."""
    stores = open_stores(state_dir)
    datasets = DatasetRegistry(stores.datasets)
    manager = JobManager(datasets, stores=stores, workers=workers).start()
    return datasets, manager, SweepManager(manager)


def _teardown(manager, sweeps):
    sweeps.stop()
    manager.stop()


@pytest.fixture
def points():
    return np.random.default_rng(11).normal(scale=2.0, size=(64, 2))


class TestSweepSpec:
    def test_scalar_axes_are_promoted(self):
        spec = SweepSpec(datasets="ds-a", solvers="kcenter", ks=4)
        assert spec.datasets == ["ds-a"]
        assert spec.solvers == ["kcenter"]
        assert spec.ks == [4]
        assert spec.cell_count == 1

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            SweepSpec(datasets=["ds-a"], solvers=["nope"], ks=[3])

    def test_ksupplier_not_sweepable(self):
        assert "ksupplier" not in SWEEPABLE_SOLVERS
        with pytest.raises(ValueError, match="not sweepable"):
            SweepSpec(datasets=["ds-a"], solvers=["ksupplier"], ks=[3])

    def test_duplicate_axis_entries_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(datasets=["ds-a"], solvers=["kcenter"], ks=[3, 3])

    def test_cell_cap(self):
        with pytest.raises(ValueError, match=f"{MAX_CELLS}-cell"):
            SweepSpec(
                datasets=["ds-a"],
                solvers=["kcenter"],
                ks=list(range(1, MAX_CELLS + 2)),
            )

    def test_outliers_need_an_outlier_solver(self):
        with pytest.raises(ValueError, match="outlier-capable"):
            SweepSpec(datasets=["ds-a"], solvers=["kcenter"], ks=[3], outliers=2)
        spec = SweepSpec(
            datasets=["ds-a"],
            solvers=["kcenter", "malkomes_outliers"],
            ks=[3],
            outliers=2,
        )
        by_solver = {
            cell["solver"]: spec.cell_job_spec(cell) for cell in spec.grid()
        }
        # the budget rides only on the outlier-capable cells
        assert by_solver["malkomes_outliers"].outliers == 2
        assert by_solver["kcenter"].outliers is None

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ValueError, match="unknown sweep field"):
            SweepSpec.from_dict(
                {"datasets": ["ds-a"], "solvers": ["kcenter"], "ks": [3], "zz": 1}
            )
        with pytest.raises(ValueError, match="at least"):
            SweepSpec.from_dict({"datasets": ["ds-a"], "solvers": ["kcenter"]})

    def test_grid_order_last_axis_fastest(self):
        spec = SweepSpec(
            datasets=["ds-a"], solvers=["kcenter", "gonzalez"], ks=[3], seeds=[0, 1]
        )
        cells = spec.grid()
        assert [c["index"] for c in cells] == [0, 1, 2, 3]
        assert [(c["solver"], c["seed"]) for c in cells] == [
            ("kcenter", 0),
            ("kcenter", 1),
            ("gonzalez", 0),
            ("gonzalez", 1),
        ]
        assert cells[0]["objective"] == "kcenter"

    def test_to_dict_from_dict_roundtrip(self):
        spec = SweepSpec(
            datasets=["ds-a"], solvers=["indyk"], ks=[3, 5], epss=[0.2], name="x"
        )
        assert SweepSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()


class TestScoringPure:
    def test_quality_ratio_orientation(self):
        # kcenter: achieved radius over the optimal/bound denominator
        assert quality_ratio(3.0, 2.0, "kcenter") == pytest.approx(1.5)
        # diversity: optimal/bound numerator over the achieved diversity
        assert quality_ratio(2.0, 3.0, "diversity") == pytest.approx(1.5)

    def test_quality_ratio_degenerate(self):
        assert quality_ratio(0.0, 0.0, "kcenter") == 1.0
        assert quality_ratio(1.0, 0.0, "kcenter") is None  # JSON-safe, ranks last

    def test_rank_ties_break_by_index(self):
        cells = [
            _cell(i, ratio=1.0, rounds=5, words=10, oracle=3) for i in (2, 0, 1)
        ]
        assert rank_cells(cells) == [0, 1, 2]

    def test_failed_cells_excluded_from_ranking(self):
        cells = [
            _cell(0, ratio=1.0, rounds=1, words=1, oracle=1),
            _cell(1, ratio=None, rounds=None, words=None, oracle=None,
                  state="failed"),
        ]
        assert rank_cells(cells) == [0]
        assert pareto_frontier(cells) == [0]


def _cell(index, *, ratio, rounds, words, oracle, state="done"):
    return {
        "index": index,
        "dataset": "ds-a",
        "solver": "kcenter",
        "k": 3,
        "eps": 0.1,
        "partition": "random",
        "trim_mode": "random",
        "seed": 0,
        "objective": "kcenter",
        "state": state,
        "value": ratio,
        "ratio": ratio,
        "reference": 1.0,
        "reference_kind": "exact",
        "rounds": rounds,
        "words": words,
        "oracle_calls": oracle,
        "oracle_evaluations": oracle,
    }


_cells_strategy = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=2_000),
    ),
    min_size=1,
    max_size=24,
)


class TestRankingProperties:
    """Satellite: hypothesis properties of the ranking and frontier."""

    @settings(max_examples=60, deadline=None)
    @given(_cells_strategy, st.randoms(use_true_random=False))
    def test_ranking_invariant_under_presentation_order(self, rows, rng):
        cells = [
            _cell(i, ratio=r, rounds=rd, words=w, oracle=o)
            for i, (r, rd, w, o) in enumerate(rows)
        ]
        shuffled = list(cells)
        rng.shuffle(shuffled)
        assert rank_cells(shuffled) == rank_cells(cells)
        assert sorted(pareto_frontier(shuffled)) == sorted(pareto_frontier(cells))
        spec = {"name": "prop"}
        ranking = rank_cells(cells)
        frontier = pareto_frontier(cells)
        reco = recommend(spec, cells, ranking, frontier)
        reco_shuffled = recommend(
            spec, shuffled, rank_cells(shuffled), pareto_frontier(shuffled)
        )
        assert reco == reco_shuffled
        assert reco["cell"] == ranking[0]

    @settings(max_examples=60, deadline=None)
    @given(_cells_strategy)
    def test_frontier_matches_bruteforce(self, rows):
        cells = [
            _cell(i, ratio=r, rounds=rd, words=w, oracle=o)
            for i, (r, rd, w, o) in enumerate(rows)
        ]
        expected = []
        for c in cells:
            dominated = False
            for d in cells:
                if d is c:
                    continue
                a = (d["ratio"], d["rounds"], d["words"])
                b = (c["ratio"], c["rounds"], c["words"])
                if all(x <= y for x, y in zip(a, b)) and a != b:
                    dominated = True
                    break
            if not dominated:
                expected.append(c["index"])
        assert pareto_frontier(cells) == expected
        # the ranking's head is always on the frontier
        assert rank_cells(cells)[0] in expected


class TestEndToEnd:
    def test_sweep_completes_and_ranks(self, points):
        datasets, manager, sweeps = _stack()
        try:
            ds = datasets.register_points(points)
            spec = SweepSpec(
                datasets=[ds.id], solvers=["kcenter", "gonzalez"], ks=[3, 5]
            )
            record = sweeps.submit(spec)
            record = sweeps.wait(record.id, timeout=120)
            assert record.state == "done"
            report = sweeps.report(record.id)
            assert report["counts"] == {"done": 4}
            assert sorted(report["ranking"]) == [0, 1, 2, 3]
            assert report["recommendation"]["cell"] == report["ranking"][0]
            assert set(report["frontier"]["cells"]) <= set(report["ranking"])
            assert "ratio (lower = better)" in report["ascii_frontier"]
            assert report["spec"] == spec.to_dict()
            for cell in report["cells"]:
                assert cell["state"] == "done"
                assert cell["ratio"] >= 1.0
                assert cell["reference_kind"] in ("exact", "bound")
        finally:
            _teardown(manager, sweeps)

    def test_report_contains_no_volatile_fields(self, points):
        datasets, manager, sweeps = _stack()
        try:
            ds = datasets.register_points(points)
            record = sweeps.submit(
                SweepSpec(datasets=[ds.id], solvers=["gonzalez"], ks=[3])
            )
            record = sweeps.wait(record.id, timeout=60)
            text = json.dumps(record.report)
            for forbidden in ("job-", "trace", "wall_s", "cached",
                              "created_at", "finished_at"):
                assert forbidden not in text
        finally:
            _teardown(manager, sweeps)

    def test_shared_cells_served_from_cache(self, points):
        datasets, manager, sweeps = _stack()
        try:
            ds = datasets.register_points(points)
            spec = SweepSpec(
                datasets=[ds.id], solvers=["gonzalez", "malkomes"], ks=[3, 4]
            )
            first = sweeps.wait(sweeps.submit(spec).id, timeout=120)
            cache = manager.cache.stats()
            assert cache["misses_total"] == 4  # each distinct cell ran once
            # the identical sweep is pure cache hits and finalizes
            # synchronously inside submit()
            second = sweeps.submit(spec)
            assert second.terminal
            assert manager.cache.stats()["hits_total"] >= 4
            assert json.dumps(second.report, sort_keys=True) == json.dumps(
                first.report, sort_keys=True
            )
        finally:
            _teardown(manager, sweeps)

    def test_report_invariant_under_worker_count(self, points):
        """Completion order must not leak into the report: 1 worker
        (grid order) and 3 workers (arbitrary interleave) agree
        byte-for-byte."""
        reports = []
        for workers in (1, 3):
            datasets, manager, sweeps = _stack(workers=workers)
            try:
                ds = datasets.register_points(points)
                spec = SweepSpec(
                    datasets=[ds.id],
                    solvers=["kcenter", "gonzalez", "malkomes"],
                    ks=[3, 5],
                )
                record = sweeps.wait(sweeps.submit(spec).id, timeout=240)
                reports.append(json.dumps(record.report, sort_keys=True))
            finally:
                _teardown(manager, sweeps)
        assert reports[0] == reports[1]

    def test_unknown_dataset_rejected_before_submission(self):
        datasets, manager, sweeps = _stack()
        try:
            with pytest.raises(UnknownDatasetError):
                sweeps.submit(
                    SweepSpec(datasets=["ds-nope"], solvers=["kcenter"], ks=[3])
                )
            assert sweeps.list_records() == ([], None)
            assert manager.stats()["jobs_by_state"]["queued"] == 0
        finally:
            _teardown(manager, sweeps)

    def test_report_before_done_raises(self, points):
        datasets, manager, sweeps = _stack()
        try:
            # a hand-planted running record: deterministic stand-in for
            # "the grid is still draining"
            record = AnalysisRecord(
                id=sweeps.store.next_analysis_id(),
                spec={},
                state="running",
                created_at=0.0,
                cell_job_ids=["job-000001"],
            )
            sweeps.store.create(record)
            with pytest.raises(AnalysisNotReady):
                sweeps.report(record.id)
        finally:
            _teardown(manager, sweeps)

    def test_unknown_analysis_raises(self):
        datasets, manager, sweeps = _stack()
        try:
            with pytest.raises(UnknownAnalysisError):
                sweeps.get("an-999999")
        finally:
            _teardown(manager, sweeps)

    def test_one_trace_spans_the_fanout(self, points):
        datasets, manager, sweeps = _stack()
        try:
            ds = datasets.register_points(points)
            record = sweeps.submit(
                SweepSpec(datasets=[ds.id], solvers=["gonzalez"], ks=[3, 4])
            )
            assert record.trace_id is not None
            for job_id in record.cell_job_ids:
                job = manager.get(job_id)
                assert job.trace.trace_id == record.trace_id
        finally:
            _teardown(manager, sweeps)

    def test_stats_and_metrics(self, points):
        datasets, manager, sweeps = _stack()
        try:
            ds = datasets.register_points(points)
            record = sweeps.submit(
                SweepSpec(datasets=[ds.id], solvers=["gonzalez"], ks=[3])
            )
            sweeps.wait(record.id, timeout=60)
            stats = sweeps.stats()
            assert stats["analyses_submitted_total"] == 1
            assert stats["analyses_by_state"]["done"] == 1
            assert stats["cells_total"]["submitted"] == 1
            assert stats["cells_total"]["done"] == 1
            text = sweeps.sync_metrics().render_prometheus()
            assert "repro_sweeps_submitted_total" in text
            assert 'repro_sweeps_by_state{state="done"} 1' in text
        finally:
            _teardown(manager, sweeps)


class TestDurability:
    def test_sqlite_report_survives_reopen(self, tmp_path, points):
        state = str(tmp_path / "state")
        datasets, manager, sweeps = _stack(state_dir=state)
        try:
            ds = datasets.register_points(points)
            spec = SweepSpec(datasets=[ds.id], solvers=["gonzalez"], ks=[3, 4])
            record = sweeps.wait(sweeps.submit(spec).id, timeout=120)
            expected = json.dumps(record.report, sort_keys=True)
        finally:
            _teardown(manager, sweeps)
        # a brand-new process over the same directory sees the analysis
        datasets2, manager2, sweeps2 = _stack(state_dir=state)
        try:
            revived = sweeps2.get(record.id)
            assert revived.state == "done"
            assert json.dumps(revived.report, sort_keys=True) == expected
            assert revived.cell_job_ids == record.cell_job_ids
        finally:
            _teardown(manager2, sweeps2)

    def test_sqlite_matches_memory_byte_for_byte(self, tmp_path, points):
        outputs = []
        for state_dir in (None, str(tmp_path / "state")):
            datasets, manager, sweeps = _stack(state_dir=state_dir)
            try:
                ds = datasets.register_points(points)
                spec = SweepSpec(
                    datasets=[ds.id], solvers=["kcenter", "gonzalez"], ks=[4]
                )
                record = sweeps.wait(sweeps.submit(spec).id, timeout=120)
                outputs.append(json.dumps(record.report, sort_keys=True))
            finally:
                _teardown(manager, sweeps)
        assert outputs[0] == outputs[1]

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_analysis_store_protocol(self, tmp_path, backend):
        if backend == "memory":
            store = InMemoryAnalysisStore()
        else:
            store = open_stores(str(tmp_path / "s")).analyses
        ids = [store.next_analysis_id() for _ in range(3)]
        assert ids == ["an-000001", "an-000002", "an-000003"]
        for an_id in ids:
            store.create(
                AnalysisRecord(
                    id=an_id, spec={"name": an_id}, state="running",
                    created_at=1.0, cell_job_ids=["job-000001"],
                )
            )
        assert store.get(ids[1]).spec == {"name": ids[1]}
        with pytest.raises(UnknownAnalysisError):
            store.get("an-999999")
        # pagination walk
        page1, cursor = store.list(limit=2)
        assert [r.id for r in page1] == ids[:2] and cursor == ids[1]
        page2, cursor2 = store.list(limit=2, cursor=cursor)
        assert [r.id for r in page2] == ids[2:] and cursor2 is None
        assert store.count_by_state() == {"running": 3}
        # CAS finalize: exactly one winner per record
        rec = store.get(ids[0])
        rec.state = "done"
        rec.report = {"ranking": []}
        assert store.finalize(rec) is not None
        assert store.finalize(rec) is None
        assert store.get(ids[0]).report == {"ranking": []}
        assert store.count_by_state() == {"running": 2, "done": 1}
        done, _ = store.list(state="done")
        assert [r.id for r in done] == [ids[0]]
        store.delete(ids[2])
        assert store.count_by_state() == {"running": 1, "done": 1}

    def test_describe_shape(self):
        record = AnalysisRecord(
            id="an-000007", spec={"ks": [3]}, state="done", created_at=1.0,
            finished_at=2.0, cell_job_ids=["job-000001", "job-000002"],
            report={"ranking": [0]}, trace_id="t" * 32,
        )
        desc = record.describe()
        assert desc["cells"] == 2
        assert "report" not in desc
        assert record.describe(include_report=True)["report"] == {"ranking": [0]}
        assert record.numeric_id == 7
        assert record.terminal


class TestBuildReportWithFailures:
    def test_failed_cells_counted_and_unranked(self):
        spec = SweepSpec(datasets=["ds-a"], solvers=["gonzalez"], ks=[3, 4])
        grid = spec.grid()
        outcomes = [
            {"state": "done", "result": _payload(1.5), "error": None},
            {"state": "failed", "result": None, "error": "boom"},
        ]
        report = build_report(
            spec.to_dict(), grid, outcomes, lambda ds, obj, k: (1.0, "exact")
        )
        assert report["counts"] == {"done": 1, "failed": 1}
        assert report["ranking"] == [0]
        assert report["cells"][1]["error"] == "boom"
        assert report["cells"][1]["ratio"] is None


def _payload(value):
    return {
        "record": {"radius": value, "diversity": value},
        "mpc_stats": {"rounds": 2, "total_words": 10},
        "oracle": {"calls": 5, "evaluations": 50},
    }
