"""Tests for the MPC baselines: Malkomes, Indyk, Ene, sequential
k-supplier reference."""

import numpy as np
import pytest

from repro.baselines.ene import ene_sampling_kcenter
from repro.baselines.exact import exact_kcenter, exact_ksupplier
from repro.baselines.indyk import indyk_diversity
from repro.baselines.ksupplier_seq import hochbaum_shmoys_ksupplier
from repro.baselines.malkomes import malkomes_kcenter, malkomes_kcenter_outliers
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster


class TestMalkomes:
    def test_four_approx_vs_exact(self, rng):
        pts = rng.normal(size=(18, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_kcenter(metric, 3)
        cluster = MPCCluster(metric, 3, seed=0)
        centers, r = malkomes_kcenter(cluster, 3)
        assert centers.size == 3
        assert opt - 1e-9 <= r <= 4.0 * opt + 1e-9

    def test_radius_is_true(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        centers, r = malkomes_kcenter(cluster, 8)
        true_r = float(
            medium_metric.dist_to_set(np.arange(medium_metric.n), centers).max()
        )
        assert r == pytest.approx(true_r)

    def test_round_budget(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        malkomes_kcenter(cluster, 8)
        assert cluster.stats.rounds <= 4  # 2 algorithmic + 2 reporting

    def test_outliers_variant_ignores_noise(self, rng):
        tight = rng.normal(size=(60, 2))
        junk = rng.uniform(400, 500, size=(6, 2))
        metric = EuclideanMetric(np.concatenate([tight, junk]))
        cluster = MPCCluster(metric, 3, seed=0)
        _, r = malkomes_kcenter_outliers(cluster, k=2, z=6)
        assert r < 20.0  # junk at distance ~600 is excluded

    def test_outliers_variant_weights_merge(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        centers, r = malkomes_kcenter_outliers(cluster, 5, 10)
        assert centers.size <= 5 and r > 0


class TestIndyk:
    def test_six_approx_vs_exact(self, rng):
        from repro.baselines.exact import exact_diversity

        pts = rng.normal(size=(16, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_diversity(metric, 3)
        cluster = MPCCluster(metric, 3, seed=0)
        subset, d = indyk_diversity(cluster, 3)
        assert subset.size == 3
        assert opt / 6.0 - 1e-9 <= d <= opt + 1e-9

    def test_k_validation(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        with pytest.raises(ValueError):
            indyk_diversity(cluster, 1)


class TestEne:
    def test_radius_reported_truthfully(self, medium_metric):
        cluster = MPCCluster(medium_metric, 4, seed=0)
        centers, r = ene_sampling_kcenter(cluster, 6)
        true_r = float(
            medium_metric.dist_to_set(np.arange(medium_metric.n), centers).max()
        )
        assert r == pytest.approx(true_r)
        assert centers.size <= 6

    def test_reasonable_on_clustered_data(self, rng):
        from repro.workloads.clustered import separated_clusters

        inst = separated_clusters(400, clusters=5, cluster_radius=1.0, separation=30.0, rng=rng)
        metric = EuclideanMetric(inst.points)
        cluster = MPCCluster(metric, 4, seed=0)
        _, r = ene_sampling_kcenter(cluster, 5)
        # coverage repair guarantees every machine's farthest point is pooled
        assert r < 30.0


class TestSequentialKSupplier:
    def test_three_approx_vs_exact(self, rng):
        pts = rng.normal(size=(16, 2))
        metric = EuclideanMetric(pts)
        C, S = np.arange(10), np.arange(10, 16)
        _, opt = exact_ksupplier(metric, C, S, 2)
        opened, r = hochbaum_shmoys_ksupplier(metric, C, S, 2)
        assert opened.size <= 2
        assert opt - 1e-9 <= r <= 3.0 * opt + 1e-9

    def test_validation(self, rng):
        metric = EuclideanMetric(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            hochbaum_shmoys_ksupplier(metric, [], [5], 1)
        with pytest.raises(ValueError):
            hochbaum_shmoys_ksupplier(metric, [0], [5], 0)

    def test_single_supplier_forced(self, rng):
        metric = EuclideanMetric(rng.normal(size=(10, 2)))
        C, S = np.arange(9), np.array([9])
        opened, r = hochbaum_shmoys_ksupplier(metric, C, S, 3)
        assert np.array_equal(opened, S)
        assert r == pytest.approx(float(metric.dist_to_set(C, S).max()))
