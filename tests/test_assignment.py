"""Tests for cluster-assignment utilities."""

import numpy as np
import pytest

from repro.analysis.assignment import assign_to_centers
from repro.metric.euclidean import EuclideanMetric


@pytest.fixture
def line():
    return EuclideanMetric(np.arange(10, dtype=float).reshape(-1, 1))


class TestAssignment:
    def test_nearest_center_chosen(self, line):
        a = assign_to_centers(line, [2, 7])
        # points 0-4 closer to 2; 5-9 closer to 7
        assert np.array_equal(a.labels[:5], np.zeros(5))
        assert np.array_equal(a.labels[5:], np.ones(5))

    def test_distances_correct(self, line):
        a = assign_to_centers(line, [2, 7])
        assert a.distances[0] == pytest.approx(2.0)
        assert a.distances[9] == pytest.approx(2.0)
        assert a.distances[2] == pytest.approx(0.0)

    def test_radius_matches_metric(self, line):
        a = assign_to_centers(line, [0])
        assert a.radius == pytest.approx(9.0)

    def test_cluster_sizes_sum_to_n(self, line):
        a = assign_to_centers(line, [2, 7])
        assert a.cluster_sizes().sum() == 10

    def test_cluster_radii(self, line):
        a = assign_to_centers(line, [2, 7])
        assert a.cluster_radii()[0] == pytest.approx(2.0)
        assert a.cluster_radii()[1] == pytest.approx(2.0)

    def test_members_partition(self, line):
        a = assign_to_centers(line, [2, 7])
        all_members = np.concatenate([a.members(0), a.members(1)])
        assert np.array_equal(np.sort(all_members), np.arange(10))

    def test_chunked_equals_unchunked(self, rng):
        pts = rng.normal(size=(200, 3))
        m1 = EuclideanMetric(pts)
        m2 = EuclideanMetric(pts)
        m2.chunk_budget = 11
        a1 = assign_to_centers(m1, [3, 50, 100])
        a2 = assign_to_centers(m2, [3, 50, 100])
        assert np.array_equal(a1.labels, a2.labels)
        assert np.allclose(a1.distances, a2.distances)

    def test_empty_centers_rejected(self, line):
        with pytest.raises(ValueError):
            assign_to_centers(line, [])

    def test_integration_with_mpc_kcenter(self, rng):
        from repro.core import mpc_kcenter
        from repro.mpc.cluster import MPCCluster

        metric = EuclideanMetric(rng.normal(size=(200, 2)))
        cluster = MPCCluster(metric, 4, seed=0)
        res = mpc_kcenter(cluster, 5, epsilon=0.3)
        a = assign_to_centers(metric, res.centers)
        assert a.radius == pytest.approx(res.radius)
        assert a.cluster_sizes().sum() == 200
