"""Reproducibility: identical seeds must give identical solutions AND
identical communication traces; different seeds should (generically)
explore different randomness."""

import numpy as np

from repro.core import mpc_diversity, mpc_k_bounded_mis, mpc_kcenter
from repro.mpc.cluster import MPCCluster


def run_kcenter(metric, seed):
    cluster = MPCCluster(metric, 4, seed=seed)
    res = mpc_kcenter(cluster, 8, epsilon=0.2)
    return res, cluster


class TestSameSeed:
    def test_identical_centers_and_radius(self, medium_metric):
        r1, _ = run_kcenter(medium_metric, 7)
        r2, _ = run_kcenter(medium_metric, 7)
        assert np.array_equal(np.sort(r1.centers), np.sort(r2.centers))
        assert r1.radius == r2.radius

    def test_identical_communication_trace(self, medium_metric):
        _, c1 = run_kcenter(medium_metric, 7)
        _, c2 = run_kcenter(medium_metric, 7)
        assert c1.stats.rounds == c2.stats.rounds
        assert c1.stats.total_words == c2.stats.total_words
        for a, b in zip(c1.stats.rounds_log, c2.stats.rounds_log):
            assert np.array_equal(a.sent, b.sent)
            assert np.array_equal(a.received, b.received)

    def test_identical_mis(self, medium_metric):
        out = []
        for _ in range(2):
            cluster = MPCCluster(medium_metric, 4, seed=13)
            res = mpc_k_bounded_mis(cluster, 0.7, k=12)
            out.append(np.sort(res.ids))
        assert np.array_equal(out[0], out[1])

    def test_identical_diversity(self, medium_metric):
        out = []
        for _ in range(2):
            cluster = MPCCluster(medium_metric, 4, seed=13)
            out.append(mpc_diversity(cluster, 8, epsilon=0.2).diversity)
        assert out[0] == out[1]


class TestDifferentSeeds:
    def test_partitions_differ(self, medium_metric):
        c1 = MPCCluster(medium_metric, 4, seed=1)
        c2 = MPCCluster(medium_metric, 4, seed=2)
        assert not all(
            np.array_equal(a.local_ids, b.local_ids)
            for a, b in zip(c1.machines, c2.machines)
        )

    def test_quality_stable_across_seeds(self, medium_metric):
        """Approximation quality must be seed-robust: the spread of radii
        across seeds stays within the 2(1+eps) certified envelope of the
        best observed radius."""
        radii = [run_kcenter(medium_metric, s)[0].radius for s in range(5)]
        assert max(radii) <= 2.0 * 1.2 * min(radii) / 1.0 + 1e-9
