"""Tests for the deterministic fault-injection subsystem (repro.faults).

Covers the :class:`~repro.faults.FaultPlan` unit surface (purity,
serialization, spec parsing, validation), machine-layer injection and
recovery through :meth:`MPCCluster.map_machines`, and the PR's
acceptance bar: with a fixed fault seed that kills process workers and
faults machine tasks, all three solvers complete **bit-identical** to
an undisturbed serial run — results and CountingOracle ledger alike —
and the obs trace records every injection and recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mpc_diversity, mpc_kcenter, mpc_ksupplier
from repro.exceptions import FaultError, MachineFault
from repro.faults import MACHINE_FAULT_RETRIES, FaultPlan
from repro.metric.euclidean import EuclideanMetric
from repro.metric.oracle import CountingOracle
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import ProcessExecutor, SerialExecutor
from repro.obs.export import read_jsonl, to_chrome_trace, write_jsonl
from repro.obs.record import Recorder


class TestFaultPlanValidation:
    def test_defaults_inject_nothing(self):
        plan = FaultPlan()
        assert not plan.worker_active
        assert not plan.machine_active
        assert not plan.service_active
        assert plan.worker_fault(0, 0) is None
        assert plan.machine_faults(0, 0, 0) == 0
        assert plan.service_fault(0) is None

    @pytest.mark.parametrize("field", ["worker_kill", "machine_fault", "service_error"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{field: -0.1})

    def test_worker_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="<= 1"):
            FaultPlan(worker_kill=0.6, worker_corrupt=0.6)

    def test_service_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="<= 1"):
            FaultPlan(service_error=0.7, service_drop=0.7)

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan(worker_fault_attempts=0)
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan(machine_fault_attempts=0)

    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError, match="error_burst"):
            FaultPlan(error_burst=-1)


class TestFaultPlanDeterminism:
    """The rolls are pure functions of (seed, coordinates)."""

    def test_identical_across_instances(self):
        a = FaultPlan(seed=13, worker_kill=0.3, worker_corrupt=0.2, machine_fault=0.25)
        b = FaultPlan.from_dict(a.to_dict())
        for batch in range(20):
            for widx in range(4):
                assert a.worker_fault(batch, widx) == b.worker_fault(batch, widx)
        for rnd in range(20):
            for mid in range(6):
                assert a.machine_faults(rnd, 1, mid) == b.machine_faults(rnd, 1, mid)

    def test_seed_changes_the_pattern(self):
        a = FaultPlan(seed=1, machine_fault=0.5)
        b = FaultPlan(seed=2, machine_fault=0.5)
        pattern = lambda p: [p.machine_faults(r, 1, m) for r in range(30) for m in range(4)]
        assert pattern(a) != pattern(b)

    def test_worker_fault_clears_after_attempts(self):
        plan = FaultPlan(seed=3, worker_kill=1.0, worker_fault_attempts=2)
        assert plan.worker_fault(1, 0, attempt=0) == "kill"
        assert plan.worker_fault(1, 0, attempt=1) == "kill"
        assert plan.worker_fault(1, 0, attempt=2) is None

    def test_rates_are_roughly_calibrated(self):
        plan = FaultPlan(seed=5, machine_fault=0.25)
        hits = sum(
            plan.machine_faults(r, d, m) > 0
            for r in range(50) for d in range(4) for m in range(5)
        )
        assert 0.15 < hits / 1000 < 0.35

    def test_error_burst_hits_first_requests(self):
        plan = FaultPlan(seed=0, error_burst=5)
        assert [plan.service_fault(i) for i in range(5)] == [("error", 429)] * 5
        assert plan.service_fault(5) is None

    def test_service_fault_alternates_statuses(self):
        plan = FaultPlan(seed=11, service_error=1.0)
        statuses = {plan.service_fault(i)[1] for i in range(40)}
        assert statuses == {429, 503}


class TestFaultPlanSpecs:
    def test_kv_spec_round_trip(self):
        plan = FaultPlan.from_spec("seed=7, worker_kill=0.25, machine_fault=0.1, error_burst=8")
        assert plan.seed == 7 and plan.worker_kill == 0.25
        assert plan.machine_fault == 0.1 and plan.error_burst == 8

    def test_json_spec(self):
        plan = FaultPlan(seed=4, service_drop=0.5)
        again = FaultPlan.from_spec(plan.to_json())
        assert again == plan

    def test_dict_and_plan_pass_through(self):
        plan = FaultPlan(seed=9)
        assert FaultPlan.from_spec(plan) is plan
        assert FaultPlan.from_spec({"seed": 9}) == plan
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec("   ") is None

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan field"):
            FaultPlan.from_spec("seed=1,wroker_kill=0.5")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="must be numeric"):
            FaultPlan.from_spec("worker_kill=high")

    def test_bare_word_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_spec("chaos")

    def test_describe_names_active_layers(self):
        assert "no active layers" in FaultPlan().describe()
        text = FaultPlan(worker_kill=0.5, service_drop=0.2).describe()
        assert "worker(" in text and "service(" in text and "machine(" not in text


@pytest.fixture
def pts():
    return np.random.default_rng(42).normal(scale=3.0, size=(150, 2))


class TestMachineFaultInjection:
    """Transient MachineFaults in map_machines tasks: injected at task
    entry, retried up to MACHINE_FAULT_RETRIES, bit-identical results."""

    def run(self, pts, faults=None, recorder=False):
        cluster = MPCCluster(EuclideanMetric(pts), 4, seed=7, faults=faults)
        rec = Recorder.attach(cluster) if recorder else None
        result = mpc_kcenter(cluster, 5, epsilon=0.2)
        return result, cluster, rec

    def test_recovered_run_is_bit_identical(self, pts):
        base, base_cluster, _ = self.run(pts)
        plan = FaultPlan(seed=21, machine_fault=0.2)
        faulted, cluster, rec = self.run(pts, faults=plan, recorder=True)
        assert faulted.radius == base.radius
        assert np.array_equal(faulted.centers, base.centers)
        assert cluster.stats.total_words == base_cluster.stats.total_words
        injected = [e for e in rec.log.faults if e.injected]
        recovered = [e for e in rec.log.faults if not e.injected]
        assert injected and recovered
        assert all(e.layer == "machine" and e.kind == "machine_fault" for e in injected)
        assert all(e.kind == "machine_retry" for e in recovered)
        # every faulted task recovered: one retry event per faulted task
        # (a task's first faulted attempt is the attempt-0 injection)
        assert len(recovered) == sum(1 for e in injected if e.attempt == 0)

    def test_machine_fault_is_a_fault_error(self):
        exc = MachineFault(3, round_no=7, attempt=1)
        assert isinstance(exc, FaultError)
        assert exc.machine_id == 3 and exc.round_no == 7

    def test_persistent_fault_exhausts_retries(self, pts):
        plan = FaultPlan(
            seed=1, machine_fault=1.0,
            machine_fault_attempts=MACHINE_FAULT_RETRIES + 1,
        )
        with pytest.raises(MachineFault):
            self.run(pts, faults=plan)

    def test_fault_persisting_to_the_last_retry_still_recovers(self, pts):
        plan = FaultPlan(
            seed=1, machine_fault=1.0,
            machine_fault_attempts=MACHINE_FAULT_RETRIES,
        )
        base, _, _ = self.run(pts)
        faulted, _, _ = self.run(pts, faults=plan)
        assert faulted.radius == base.radius

    def test_inactive_plan_adds_no_events(self, pts):
        _, _, rec = self.run(pts, faults=FaultPlan(seed=5), recorder=True)
        assert rec.log.faults == []
        assert rec.log.fault_summary() == {"injected": 0, "recovered": 0, "by_kind": {}}


#: the PR's fixed chaos seed: kills forked workers, corrupts payloads,
#: and faults machine tasks, all recoverable within the retry budgets
CHAOS_PLAN = dict(seed=2026, worker_kill=0.2, worker_corrupt=0.1, machine_fault=0.08)


class TestChaosAcceptance:
    """The acceptance bar: a faulted process run — workers killed
    mid-chunk, machine tasks raising transient faults — is bit-identical
    to an undisturbed serial run, including the CountingOracle ledger."""

    def oracle_cluster(self, pts, executor, faults=None):
        oracle = CountingOracle(EuclideanMetric(pts))
        cluster = MPCCluster(oracle, 4, seed=7, executor=executor, faults=faults)
        return cluster, oracle

    def run_pair(self, pts, fn):
        base_cluster, base_oracle = self.oracle_cluster(pts, SerialExecutor())
        base = fn(base_cluster)

        ex = ProcessExecutor(max_workers=3)
        if ex.fallback_reason:
            pytest.skip(ex.fallback_reason)
        plan = FaultPlan(**CHAOS_PLAN)
        cluster, oracle = self.oracle_cluster(pts, ex, faults=plan)
        rec = Recorder.attach(cluster)
        faulted = fn(cluster)

        # the seed really disturbed the run: >=1 worker kill, >=1 machine fault
        kinds = {e.kind for e in rec.log.faults if e.injected}
        assert "worker_kill" in kinds, f"seed injected no worker kills: {kinds}"
        assert "machine_fault" in kinds, f"seed injected no machine faults: {kinds}"
        # ... and recovery never had to leave the fork path
        stats = ex.recovery_stats()
        assert stats["faults_injected"] >= 2
        assert stats["serial_fallbacks"] == 0 and stats["degradations"] == []
        assert stats["chunk_retries"] >= 1
        summary = rec.log.fault_summary()
        assert summary["injected"] > 0 and summary["recovered"] > 0
        # bit-identical oracle ledger
        assert (oracle.calls, oracle.evaluations) == (base_oracle.calls, base_oracle.evaluations)
        ex.shutdown()
        return base, faulted

    def test_kcenter(self, pts):
        base, faulted = self.run_pair(pts, lambda c: mpc_kcenter(c, 5, epsilon=0.2))
        assert faulted.radius == base.radius
        assert np.array_equal(faulted.centers, base.centers)

    def test_diversity(self, pts):
        base, faulted = self.run_pair(pts, lambda c: mpc_diversity(c, 5, epsilon=0.2))
        assert faulted.diversity == base.diversity
        assert np.array_equal(np.sort(faulted.ids), np.sort(base.ids))

    def test_ksupplier(self, pts):
        customers = list(range(0, 150, 2))
        suppliers = list(range(1, 150, 2))
        base, faulted = self.run_pair(
            pts, lambda c: mpc_ksupplier(c, customers, suppliers, 4, epsilon=0.2)
        )
        assert faulted.radius == base.radius
        assert np.array_equal(faulted.suppliers, base.suppliers)


class TestFaultObservability:
    """Fault events survive the export round-trips."""

    def faulted_log(self, pts):
        cluster = MPCCluster(
            EuclideanMetric(pts), 4, seed=7, faults=FaultPlan(seed=21, machine_fault=0.2)
        )
        rec = Recorder.attach(cluster)
        mpc_kcenter(cluster, 5, epsilon=0.2)
        assert rec.log.faults
        return rec.log

    def test_jsonl_round_trip(self, pts, tmp_path):
        log = self.faulted_log(pts)
        path = write_jsonl(log, tmp_path / "run.jsonl")
        again = read_jsonl(path)
        assert len(again.faults) == len(log.faults)
        for a, b in zip(again.faults, log.faults):
            assert (a.layer, a.kind, a.injected, a.round_no, a.target, a.attempt) == (
                b.layer, b.kind, b.injected, b.round_no, b.target, b.attempt
            )
        assert again.fault_summary() == log.fault_summary()

    def test_chrome_trace_carries_fault_instants(self, pts):
        log = self.faulted_log(pts)
        trace = to_chrome_trace(log)
        instants = [
            ev for ev in trace["traceEvents"]
            if ev.get("ph") == "i" and "fault" in ev.get("cat", "")
        ]
        assert len(instants) == len(log.faults)

    def test_run_log_meta_records_the_plan(self, pts):
        # the service runner stamps meta["faults"]; here we check the
        # summary is the chaos suite's acceptance view
        log = self.faulted_log(pts)
        summary = log.fault_summary()
        assert summary["by_kind"]["machine/machine_fault"] == summary["injected"]
        assert summary["by_kind"]["machine/machine_retry"] == summary["recovered"]
