"""The service metrics surface: ``GET /metrics``, the ``/stats``
``metrics`` block, and the chaos reconciliation bar.

The acceptance criterion pinned here: after a fault-injected run the
``repro_faults_injected_total`` / ``repro_faults_recovered_total``
counters on the metrics surface match the executor's own
``recovery_stats()`` exactly — the Prometheus view is the recovery
ledger, not an approximation of it.
"""

import re

import numpy as np
import pytest

from repro import FaultPlan, ProcessExecutor
from repro.service import DatasetRegistry, JobManager, JobSpec, ServiceClient
from repro.service.http import run_in_thread, serve

#: every non-comment exposition line: name{labels} value
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?(\d+(\.\d+)?([eE][+-]?\d+)?|NaN|\+?Inf)$'
)


@pytest.fixture()
def live_server():
    server = serve(port=0, workers=1)
    run_in_thread(server)
    try:
        yield server
    finally:
        server.shutdown_service()


def _run_one_job(client):
    ds = client.register_workload("gaussian", n=300, seed=0)
    job = client.submit(algorithm="kcenter", dataset=ds["id"], k=4,
                        eps=0.3, machines=3, seed=1)
    return client.wait(job["id"], timeout=120)


class TestMetricsEndpoint:
    def test_prometheus_text_is_well_formed(self, live_server):
        client = ServiceClient(live_server.url)
        _run_one_job(client)
        text = client.metrics()
        assert text.endswith("\n")
        seen_types = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                seen_types[name] = kind
            elif line.startswith("#"):
                assert line.startswith("# HELP "), line
            else:
                assert _SAMPLE_RE.match(line), f"malformed sample: {line!r}"
        assert seen_types["repro_jobs_submitted_total"] == "counter"
        assert seen_types["repro_queue_depth"] == "gauge"
        assert seen_types["repro_job_latency_seconds"] == "histogram"
        assert seen_types["repro_solver_runs_total"] == "counter"
        assert 'repro_solver_runs_total{algorithm="kcenter"} 1' in text
        assert 'repro_job_latency_seconds_bucket{algorithm="kcenter",le="+Inf"} 1' in text

    def test_stats_metrics_block_matches_counters(self, live_server):
        client = ServiceClient(live_server.url)
        _run_one_job(client)
        _run_one_job(client)  # identical spec → served from cache
        stats = client.stats()
        counters = stats["metrics"]["counters"]
        assert counters["repro_jobs_submitted_total"][""] == stats["jobs_submitted_total"]
        assert counters["repro_cache_hits_total"][""] == stats["cache"]["hits_total"]
        assert counters["repro_cache_misses_total"][""] == stats["cache"]["misses_total"]
        gauges = stats["metrics"]["gauges"]
        assert gauges["repro_cache_hit_ratio"][""] == stats["cache"]["hit_ratio"]
        assert gauges["repro_cache_entries"][""] == stats["cache"]["entries"]

    def test_metrics_text_agrees_with_stats(self, live_server):
        client = ServiceClient(live_server.url)
        _run_one_job(client)
        stats = client.stats()
        text = client.metrics()
        expected = stats["jobs_submitted_total"]
        assert f"repro_jobs_submitted_total {expected}\n" in text
        assert f"repro_cache_misses_total {stats['cache']['misses_total']}\n" in text


def _fmt(value):
    """A sample value the way the renderer prints it (integers undotted)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _fault_counters(snapshot, family):
    """``{(layer, kind): value}`` from one fault counter family."""
    out = {}
    for label_string, value in snapshot["counters"].get(family, {}).items():
        labels = dict(re.findall(r'(\w+)="([^"]*)"', label_string))
        out[(labels["layer"], labels["kind"])] = value
    return out


class TestChaosReconciliation:
    def test_fault_counters_match_recovery_stats(self, monkeypatch):
        """Acceptance: /metrics fault counters == executor.recovery_stats()."""
        if ProcessExecutor(max_workers=2).fallback_reason:
            pytest.skip("process executor unavailable on this platform")
        # enough forked workers for the chaos seed's coordinates to fire
        monkeypatch.setenv("REPRO_WORKERS", "3")
        datasets = DatasetRegistry()
        manager = JobManager(
            datasets, workers=1, backend="process",
            faults=FaultPlan(seed=2026, worker_kill=0.2, worker_corrupt=0.1,
                             machine_fault=0.08),
        )
        manager.start()
        try:
            points = np.random.default_rng(3).normal(size=(150, 2))
            ds = datasets.register_points(points)
            job = manager.submit(JobSpec(
                algorithm="kcenter", dataset=ds.id, k=5, eps=0.2,
                machines=4, seed=7,
            ))
            manager.wait(job.id, timeout=300)
            assert job.state == "done", job.error
            executor_stats = job.result["recovery"]["executor"]
            assert executor_stats["faults_injected"] >= 1  # the seed really fired

            snap = manager.sync_metrics().snapshot()
            injected = _fault_counters(snap, "repro_faults_injected_total")
            recovered = _fault_counters(snap, "repro_faults_recovered_total")

            injected_executor = sum(
                v for (layer, _), v in injected.items() if layer == "executor"
            )
            assert injected_executor == executor_stats["faults_injected"]
            assert recovered.get(("executor", "chunk_retry"), 0) == (
                executor_stats["chunk_retries"]
            )
            assert recovered.get(("executor", "serial_fallback"), 0) == (
                executor_stats["serial_fallbacks"]
            )
        finally:
            manager.stop()

    def test_http_chaos_counters_reconcile(self, monkeypatch):
        """The same reconciliation holds over the HTTP surface."""
        if ProcessExecutor(max_workers=2).fallback_reason:
            pytest.skip("process executor unavailable on this platform")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        server = serve(
            port=0, workers=1, backend="process",
            faults="seed=2026,worker_kill=0.2,machine_fault=0.08",
        )
        run_in_thread(server)
        try:
            client = ServiceClient(server.url)
            done = _run_one_job(client)
            executor_stats = done["result"]["recovery"]["executor"]
            assert executor_stats["faults_injected"] >= 1
            stats = client.stats()
            injected = _fault_counters(
                stats["metrics"], "repro_faults_injected_total"
            )
            injected_executor = sum(
                v for (layer, _), v in injected.items() if layer == "executor"
            )
            assert injected_executor == executor_stats["faults_injected"]
            text = client.metrics()
            for (layer, kind), value in injected.items():
                sample = (
                    f'repro_faults_injected_total{{layer="{layer}",'
                    f'kind="{kind}"}} {_fmt(value)}'
                )
                assert sample in text, f"missing from /metrics: {sample}"
        finally:
            server.shutdown_service()
