"""Tests for the Levenshtein metric."""

import numpy as np
import pytest

from repro.metric.edit_distance import EditDistanceMetric, levenshtein
from repro.metric.validation import check_metric_axioms


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("a", "b", 1),
            ("ab", "ba", 2),
            ("saturday", "sunday", 3),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetric(self):
        assert levenshtein("hello", "yellow") == levenshtein("yellow", "hello")

    def test_triangle_random(self, rng):
        import string

        words = [
            "".join(rng.choice(list(string.ascii_lowercase), size=rng.integers(1, 8)))
            for _ in range(12)
        ]
        for a in words[:5]:
            for b in words[:5]:
                for c in words[:5]:
                    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestMetric:
    @pytest.fixture
    def metric(self):
        return EditDistanceMetric(
            ["kitten", "sitting", "kitchen", "mitten", "sit", "abba", "xyz"]
        )

    def test_axioms(self, metric):
        check_metric_axioms(metric, sample_size=7)

    def test_pairwise_values(self, metric):
        assert metric.distance(0, 1) == 3.0  # kitten -> sitting
        assert metric.distance(0, 3) == 1.0  # kitten -> mitten

    def test_cache_reuse(self, metric):
        metric.distance(0, 1)
        before = len(metric._cache)
        metric.distance(1, 0)  # symmetric key hit
        assert len(metric._cache) == before

    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError):
            EditDistanceMetric([])

    def test_point_words_positive(self, metric):
        assert metric.point_words() >= 1

    def test_works_with_gmm(self, metric):
        from repro.core.gmm import gmm

        out = gmm(metric, np.arange(metric.n), 3)
        assert out.size == 3

    def test_end_to_end_diversity(self):
        from repro.core.diversity import mpc_diversity
        from repro.mpc.cluster import MPCCluster

        words = [w + str(i % 3) for i, w in enumerate(
            ["alpha", "beta", "gamma", "delta", "epsilon", "zeta",
             "eta", "theta", "iota", "kappa", "lam", "mu"] * 3
        )]
        metric = EditDistanceMetric(words)
        cluster = MPCCluster(metric, 3, seed=0)
        res = mpc_diversity(cluster, 4, epsilon=0.3)
        assert res.size == 4 and res.diversity >= 1.0
