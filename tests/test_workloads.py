"""Tests for the workload generators and the registry."""

import numpy as np
import pytest

from repro.metric.validation import check_metric_axioms
from repro.workloads.adversarial import (
    all_equal_points,
    colinear_chain,
    exponential_spread,
    with_duplicates,
)
from repro.workloads.clustered import separated_clusters
from repro.workloads.graphs import grid_graph_metric, random_geometric_graph_metric
from repro.workloads.outliers import clustered_with_outliers
from repro.workloads.registry import available_workloads, make_workload
from repro.workloads.suppliers import supplier_instance
from repro.workloads.synthetic import (
    anisotropic_blobs,
    gaussian_mixture,
    uniform_ball,
    uniform_cube,
)


class TestSynthetic:
    def test_gaussian_mixture_shape(self, rng):
        pts, labels = gaussian_mixture(200, dim=3, components=5, rng=rng)
        assert pts.shape == (200, 3) and labels.shape == (200,)
        assert labels.min() >= 0 and labels.max() < 5

    def test_gaussian_mixture_deterministic(self):
        a, _ = gaussian_mixture(50, rng=np.random.default_rng(1))
        b, _ = gaussian_mixture(50, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_gaussian_mixture_validation(self, rng):
        with pytest.raises(ValueError):
            gaussian_mixture(0, rng=rng)

    def test_uniform_cube_bounds(self, rng):
        pts = uniform_cube(100, dim=2, side=5.0, rng=rng)
        assert pts.min() >= 0.0 and pts.max() <= 5.0

    def test_uniform_ball_radius(self, rng):
        pts = uniform_ball(500, dim=3, radius=2.0, rng=rng)
        assert np.all(np.linalg.norm(pts, axis=1) <= 2.0 + 1e-9)

    def test_anisotropic_shape(self, rng):
        pts, labels = anisotropic_blobs(100, dim=2, components=3, rng=rng)
        assert pts.shape == (100, 2)


class TestClustered:
    def test_separation_honoured(self, rng):
        inst = separated_clusters(100, clusters=4, separation=10.0, rng=rng)
        C = inst.centers
        D = np.sqrt(((C[:, None] - C[None]) ** 2).sum(-1))
        np.fill_diagonal(D, np.inf)
        assert D.min() >= 10.0

    def test_points_within_cluster_radius(self, rng):
        inst = separated_clusters(100, clusters=4, cluster_radius=1.5, rng=rng)
        d = np.linalg.norm(inst.points - inst.centers[inst.labels], axis=1)
        assert np.all(d <= 1.5 + 1e-9)

    def test_kcenter_upper_bound(self, rng):
        inst = separated_clusters(60, clusters=3, cluster_radius=0.5, rng=rng)
        assert inst.kcenter_upper_bound == 0.5

    def test_invalid_separation(self, rng):
        with pytest.raises(ValueError, match="separation"):
            separated_clusters(10, 2, cluster_radius=5.0, separation=5.0, rng=rng)


class TestAdversarial:
    def test_all_equal(self):
        pts = all_equal_points(10, dim=3, value=2.0)
        assert np.all(pts == 2.0) and pts.shape == (10, 3)

    def test_duplicates_fraction(self, rng):
        base = rng.normal(size=(100, 2))
        out = with_duplicates(base, fraction=0.5, rng=rng)
        assert out.shape[0] == 100
        # at least 50 rows coincide with an earlier row
        uniq = np.unique(out, axis=0).shape[0]
        assert uniq <= 50

    def test_duplicates_zero_fraction(self, rng):
        base = rng.normal(size=(10, 2))
        assert np.array_equal(with_duplicates(base, 0.0, rng), base)

    def test_duplicates_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            with_duplicates(np.zeros((4, 2)), 1.0, rng)

    def test_exponential_spread_growth(self):
        pts = exponential_spread(5, base=2.0)
        assert np.array_equal(pts[:, 0], [1, 2, 4, 8, 16])

    def test_colinear_chain(self):
        pts = colinear_chain(4, step=2.0)
        assert np.array_equal(pts[:, 0], [0, 2, 4, 6])
        assert np.all(pts[:, 1] == 0)


class TestOutliers:
    def test_labels_mark_outliers(self, rng):
        pts, labels = clustered_with_outliers(200, clusters=4, outlier_fraction=0.1, rng=rng)
        assert pts.shape[0] == 200
        assert (labels == -1).sum() == 20

    def test_zero_fraction(self, rng):
        _, labels = clustered_with_outliers(100, clusters=4, outlier_fraction=0.0, rng=rng)
        assert not np.any(labels == -1)

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            clustered_with_outliers(10, 2, outlier_fraction=1.0, rng=rng)


class TestSuppliers:
    @pytest.mark.parametrize("layout", ["uniform", "colocated", "perimeter"])
    def test_layouts(self, rng, layout):
        inst = supplier_instance(100, 40, supplier_layout=layout, rng=rng)
        assert inst.points.shape[0] == 140
        assert inst.customers.size == 100 and inst.suppliers.size == 40
        assert np.intersect1d(inst.customers, inst.suppliers).size == 0

    def test_unknown_layout(self, rng):
        with pytest.raises(ValueError, match="layout"):
            supplier_instance(10, 5, supplier_layout="bogus", rng=rng)


class TestGraphWorkloads:
    def test_grid_metric_distances(self):
        m = grid_graph_metric(3, 3)
        # corner to corner: manhattan distance 4
        assert m.distance(0, 8) == pytest.approx(4.0)
        check_metric_axioms(m, sample_size=9)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_graph_metric(0, 3)

    def test_random_geometric_connected(self, rng):
        m = random_geometric_graph_metric(40, radius=0.3, rng=rng)
        D = m.pairwise(np.arange(40), np.arange(40))
        assert np.all(np.isfinite(D))
        check_metric_axioms(m, sample_size=20)


class TestRegistry:
    def test_all_names_buildable(self):
        for name in available_workloads():
            wl = make_workload(name, 64, seed=1)
            assert wl.n >= 2
            assert wl.metric.n == wl.n

    def test_deterministic(self):
        a = make_workload("gaussian", 50, seed=3)
        b = make_workload("gaussian", 50, seed=3)
        assert np.allclose(
            a.metric.pairwise([0], np.arange(50)),
            b.metric.pairwise([0], np.arange(50)),
        )

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("bogus", 10)

    def test_clustered_notes(self):
        wl = make_workload("clustered", 64, seed=0)
        assert "kcenter_ub" in wl.notes
