"""Statistical verification of the paper's probabilistic lemmas.

These tests reproduce the *lemmas* themselves, not just the algorithms
built on them: fixed graphs, many independent randomness draws (seeded,
so runs are deterministic), and empirical frequencies compared against
the lemma statements with generous margins.

* Lemma 5 — light vertices have true degree < 2δm·ln n (w.h.p.):
  empirically, high-degree vertices almost never classify light.
* Lemma 7 — heavy vertices have true degree > δm·ln n / 2 (w.h.p.):
  empirically, low-degree vertices almost never classify heavy.
* Lemma 8 — the heavy estimate m·|N(v)∩S| concentrates around d(v).
* Lemma 10 — trim keeps a vertex with probability ≥ 1/(5 p_v).
"""

import numpy as np
import pytest

from repro.core.light_heavy import sample_degrees
from repro.core.trim import trim
from repro.metric.euclidean import EuclideanMetric
from repro.workloads.synthetic import gaussian_mixture, uniform_cube

M = 4
DELTA = 2.0


@pytest.fixture(scope="module")
def dense_instance():
    """2000 mixture points: dense cluster cores and sparse tails, so the
    degree distribution spans well below and well above the lemma
    thresholds."""
    pts, _ = gaussian_mixture(
        2000, dim=2, components=5, spread=25.0, sigma=1.0,
        rng=np.random.default_rng(5),
    )
    metric = EuclideanMetric(pts)
    tau = 1.2
    ids = np.arange(2000)
    deg = (metric.count_within(ids, ids, tau) - 1).astype(float)
    return metric, tau, deg


def draw_sample_degrees(metric, tau, seed):
    """One draw of Algorithm 3's sampling step (probability 1/m)."""
    rng = np.random.default_rng(seed)
    ids = np.arange(metric.n)
    S = ids[rng.random(metric.n) < 1.0 / M]
    return sample_degrees(metric, ids, S, tau)


class TestLemma5And7:
    def test_lemma5_high_degree_rarely_light(self, dense_instance):
        metric, tau, deg = dense_instance
        ln_n = np.log(metric.n)
        heavy_thr = DELTA * ln_n                 # Definition 4 threshold
        degree_bound = 2 * DELTA * M * ln_n      # Lemma 5's degree bound
        big = deg >= degree_bound
        assert big.sum() > 50, "instance must contain high-degree vertices"
        violations, total = 0, 0
        for seed in range(20):
            sdeg = draw_sample_degrees(metric, tau, seed)
            light = sdeg < heavy_thr
            violations += int((light & big).sum())
            total += int(big.sum())
        # Lemma 5 says w.h.p. zero; allow a generous empirical 10%
        assert violations / total < 0.10

    def test_lemma7_low_degree_rarely_heavy(self, dense_instance):
        metric, tau, deg = dense_instance
        ln_n = np.log(metric.n)
        heavy_thr = DELTA * ln_n
        degree_floor = DELTA * M * ln_n / 2.0    # Lemma 7's floor
        small = deg <= degree_floor / 2.0        # well below the floor
        assert small.sum() > 50
        violations, total = 0, 0
        for seed in range(20):
            sdeg = draw_sample_degrees(metric, tau, seed)
            heavy = sdeg >= heavy_thr
            violations += int((heavy & small).sum())
            total += int(small.sum())
        assert violations / total < 0.10


class TestLemma8:
    def test_heavy_estimate_concentrates(self, dense_instance):
        """Over repeated draws, the estimate m·|N(v)∩S| is unbiased and
        its relative error shrinks as 1/√d — check the dense tail."""
        metric, tau, deg = dense_instance
        dense = np.where(deg >= 200)[0]
        assert dense.size > 30
        estimates = []
        for seed in range(30):
            sdeg = draw_sample_degrees(metric, tau, seed)
            estimates.append(M * sdeg[dense].astype(float))
        est = np.stack(estimates)
        mean_est = est.mean(axis=0)
        rel_bias = np.abs(mean_est - deg[dense]) / deg[dense]
        assert np.percentile(rel_bias, 95) < 0.10  # unbiased in the mean
        rel_err = np.abs(est - deg[dense][None, :]) / deg[dense][None, :]
        assert np.percentile(rel_err, 95) < 0.35   # per-draw concentration


class TestLemma10:
    def test_trim_survival_probability(self):
        """Pr[v ∈ trim(S)] ≥ 1/(5 p_v) when p_v ≥ (1−ε) d(v)."""
        pts = uniform_cube(60, dim=2, side=4.0, rng=np.random.default_rng(3))
        metric = EuclideanMetric(pts)
        tau = 1.0
        ids = np.arange(60)
        deg = (metric.count_within(ids, ids, tau) - 1).astype(float)
        p = np.maximum(deg, 1.0)  # exact degrees (ε = 0), floored at 1
        q = np.minimum(1.0, 1.0 / (2.0 * p))

        draws = 1500
        rng = np.random.default_rng(11)
        hits = np.zeros(60)
        for _ in range(draws):
            S = ids[rng.random(60) < q]
            tie = rng.random(60)
            kept = trim(metric, S, tau, p, tie)
            hits[kept] += 1
        freq = hits / draws
        floor = 1.0 / (5.0 * p)
        # allow binomial noise: 4 standard errors below the floor
        se = np.sqrt(floor * (1 - floor) / draws)
        ok = freq >= floor - 4 * se
        assert ok.mean() > 0.95, (
            f"Lemma 10 floor violated for {int((~ok).sum())}/60 vertices"
        )
