"""Tests for the sequential baselines: Gonzalez, Hochbaum–Shmoys,
Charikar with outliers, exact brute force, greedy/Luby MIS."""

import numpy as np
import pytest

from repro.baselines.charikar import charikar_kcenter_outliers
from repro.baselines.exact import exact_diversity, exact_kcenter, exact_ksupplier
from repro.baselines.gonzalez import gonzalez_diversity, gonzalez_kcenter
from repro.baselines.greedy_mis import greedy_mis
from repro.baselines.hochbaum_shmoys import candidate_radii, hochbaum_shmoys_kcenter
from repro.baselines.luby import luby_mis
from repro.metric.euclidean import EuclideanMetric


@pytest.fixture
def tiny_metric(rng):
    return EuclideanMetric(rng.normal(size=(15, 2)))


class TestGonzalez:
    def test_two_approx_kcenter(self, tiny_metric):
        for k in (2, 3):
            _, opt = exact_kcenter(tiny_metric, k)
            _, r = gonzalez_kcenter(tiny_metric, k)
            assert opt - 1e-9 <= r <= 2.0 * opt + 1e-9

    def test_two_approx_diversity(self, tiny_metric):
        for k in (2, 3):
            _, opt = exact_diversity(tiny_metric, k)
            _, d = gonzalez_diversity(tiny_metric, k)
            assert opt / 2.0 - 1e-9 <= d <= opt + 1e-9

    def test_diversity_requires_k_ge_2(self, tiny_metric):
        with pytest.raises(ValueError):
            gonzalez_diversity(tiny_metric, 1)

    def test_start_parameter(self, tiny_metric):
        c, _ = gonzalez_kcenter(tiny_metric, 3, start=7)
        assert c[0] == 7


class TestHochbaumShmoys:
    def test_two_approx(self, tiny_metric):
        for k in (2, 3, 4):
            _, opt = exact_kcenter(tiny_metric, k)
            centers, r = hochbaum_shmoys_kcenter(tiny_metric, k)
            assert centers.size <= k
            assert opt - 1e-9 <= r <= 2.0 * opt + 1e-9

    def test_candidate_radii_sorted_unique(self, tiny_metric):
        radii = candidate_radii(tiny_metric)
        assert np.all(np.diff(radii) > 0)

    def test_candidate_radii_size_guard(self, rng):
        m = EuclideanMetric(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="too large"):
            candidate_radii(m, max_points=5)

    def test_invalid_k(self, tiny_metric):
        with pytest.raises(ValueError):
            hochbaum_shmoys_kcenter(tiny_metric, 0)


class TestCharikarOutliers:
    def test_outliers_ignored(self, rng):
        """Tight cluster + far-away junk: with z = #junk the radius must
        reflect only the cluster."""
        cluster_pts = rng.normal(size=(30, 2)) * 0.5
        junk = rng.uniform(500, 600, size=(5, 2))
        metric = EuclideanMetric(np.concatenate([cluster_pts, junk]))
        _, r = charikar_kcenter_outliers(metric, k=1, z=5)
        assert r < 10.0

    def test_z_zero_covers_everything(self, tiny_metric):
        centers, r = charikar_kcenter_outliers(tiny_metric, k=3, z=0)
        true_r = float(
            tiny_metric.dist_to_set(np.arange(tiny_metric.n), centers).max()
        )
        assert r == pytest.approx(true_r)

    def test_three_approx_with_z_zero(self, tiny_metric):
        _, opt = exact_kcenter(tiny_metric, 3)
        _, r = charikar_kcenter_outliers(tiny_metric, 3, 0)
        assert r <= 3.0 * opt + 1e-9

    def test_weighted_variant(self, rng):
        pts = rng.normal(size=(20, 2))
        metric = EuclideanMetric(pts)
        w = np.ones(20)
        w[0] = 10.0
        centers, r = charikar_kcenter_outliers(metric, 2, 3, weights=w)
        assert centers.size <= 2 and r >= 0

    def test_invalid_args(self, tiny_metric):
        with pytest.raises(ValueError):
            charikar_kcenter_outliers(tiny_metric, 0, 1)
        with pytest.raises(ValueError):
            charikar_kcenter_outliers(tiny_metric, 1, -1)


class TestExact:
    def test_kcenter_optimality_cross_check(self, rng):
        """Exact must never exceed any heuristic's radius."""
        pts = rng.normal(size=(12, 2))
        m = EuclideanMetric(pts)
        _, opt = exact_kcenter(m, 3)
        _, g = gonzalez_kcenter(m, 3)
        _, hs = hochbaum_shmoys_kcenter(m, 3)
        assert opt <= g + 1e-9 and opt <= hs + 1e-9

    def test_diversity_optimality_cross_check(self, rng):
        pts = rng.normal(size=(12, 2))
        m = EuclideanMetric(pts)
        _, opt = exact_diversity(m, 3)
        _, g = gonzalez_diversity(m, 3)
        assert opt >= g - 1e-9

    def test_budget_guard(self, rng):
        m = EuclideanMetric(rng.normal(size=(40, 2)))
        with pytest.raises(ValueError, match="budget"):
            exact_diversity(m, 15, max_subsets=1000)

    def test_ksupplier_exact(self, rng):
        pts = rng.normal(size=(12, 2))
        m = EuclideanMetric(pts)
        C, S = np.arange(8), np.arange(8, 12)
        opened, r = exact_ksupplier(m, C, S, 2)
        assert opened.size == 2 and np.isin(opened, S).all()
        # check optimality by enumeration
        from itertools import combinations

        best = min(
            float(m.pairwise(C, list(sub)).min(axis=1).max())
            for sub in combinations(S, 2)
        )
        assert r == pytest.approx(best)

    def test_kcenter_k_equals_n(self, rng):
        m = EuclideanMetric(rng.normal(size=(6, 2)))
        _, opt = exact_kcenter(m, 6)
        assert opt == pytest.approx(0.0)


class TestMIS:
    def test_greedy_is_maximal_independent(self, rng):
        pts = rng.normal(size=(50, 2))
        m = EuclideanMetric(pts)
        tau = 0.7
        mis = greedy_mis(m, np.arange(50), tau)
        D = m.pairwise(mis, mis)
        np.fill_diagonal(D, np.inf)
        assert D.min() > tau
        assert float(m.dist_to_set(np.arange(50), mis).max()) <= tau

    def test_greedy_limit(self, rng):
        pts = rng.uniform(0, 100, size=(50, 2))
        m = EuclideanMetric(pts)
        mis = greedy_mis(m, np.arange(50), 0.1, limit=5)
        assert mis.size == 5

    def test_greedy_shuffled_order(self, rng):
        pts = rng.normal(size=(30, 2))
        m = EuclideanMetric(pts)
        a = greedy_mis(m, np.arange(30), 0.5)
        b = greedy_mis(m, np.arange(30), 0.5, rng=np.random.default_rng(1))
        # both must be valid MIS (sizes may differ)
        for mis in (a, b):
            assert float(m.dist_to_set(np.arange(30), mis).max()) <= 0.5

    def test_luby_is_maximal_independent(self, rng):
        pts = rng.normal(size=(60, 2))
        m = EuclideanMetric(pts)
        tau = 0.6
        mis, rounds = luby_mis(m, np.arange(60), tau, rng=np.random.default_rng(3))
        D = m.pairwise(mis, mis)
        np.fill_diagonal(D, np.inf)
        assert D.min() > tau
        assert float(m.dist_to_set(np.arange(60), mis).max()) <= tau
        assert rounds >= 1

    def test_luby_empty_input(self, tiny_metric):
        mis, rounds = luby_mis(tiny_metric, [], 1.0)
        assert mis.size == 0 and rounds == 0
