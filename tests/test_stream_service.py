"""Service-level tests for append chains + warm-start jobs.

Drives the whole streaming pipeline the way a client would: the
``POST /v1/datasets/<id>/append`` and ``GET .../chain`` routes, the
``warm_start`` JobSpec field, the drift report in the result payload,
cache separation between parent/child and warm/cold, the new metrics,
and the cross-backend determinism of the final drift report.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import (
    DatasetRegistry,
    JobManager,
    JobSpec,
    ServiceClient,
    ServiceError,
    serve,
)
from repro.service.http import run_in_thread


@pytest.fixture
def server():
    srv = serve(port=0, workers=1, backend="serial")
    run_in_thread(srv)
    yield srv
    srv.shutdown_service()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=60.0)


@pytest.fixture
def batches():
    rng = np.random.default_rng(42)
    return [rng.normal(scale=3.0, size=(60, 2)) for _ in range(3)]


class TestAppendRoutes:
    def test_append_and_chain_over_http(self, client, batches):
        base = client.register_points(batches[0])
        child = client.append_dataset(base["id"], batches[1])
        assert child["kind"] == "append" and child["n"] == 120
        assert child["params"]["parent"] == base["id"]

        grand = client.append_dataset(child["id"], batches[2])
        chain = client.resolve_chain(grand["id"])
        assert [d["id"] for d in chain] == [base["id"], child["id"], grand["id"]]

    def test_append_idempotent_over_http(self, client, batches):
        base = client.register_points(batches[0])
        first = client.append_dataset(base["id"], batches[1])
        second = client.append_dataset(base["id"], batches[1])
        assert first["id"] == second["id"]

    def test_append_unknown_dataset_404(self, client, batches):
        with pytest.raises(ServiceError) as exc:
            client.append_dataset("ds-missing", batches[0])
        assert exc.value.status == 404

    def test_append_metric_mismatch_409(self, client, batches):
        base = client.register_points(batches[0], metric="euclidean")
        with pytest.raises(ServiceError) as exc:
            client.append_dataset(base["id"], batches[1], metric="manhattan")
        assert exc.value.status == 409
        assert exc.value.code == "metric_mismatch"

    def test_append_workload_not_appendable_409(self, client, batches):
        ds = client.register_workload("gaussian", 80, seed=0)
        with pytest.raises(ServiceError) as exc:
            client.append_dataset(ds["id"], batches[0])
        assert exc.value.status == 409
        assert exc.value.code == "not_appendable"

    def test_append_rejects_unknown_fields(self, client, batches):
        base = client.register_points(batches[0])
        with pytest.raises(ServiceError) as exc:
            client._request(
                "POST",
                f"/datasets/{base['id']}/append",
                {"points": [[0.0, 0.0]], "zap": 1},
            )
        assert exc.value.status == 400

    def test_appended_metric_counter(self, server, client, batches):
        base = client.register_points(batches[0])
        client.append_dataset(base["id"], batches[1])
        dump = server.manager.metrics.render_prometheus()
        assert "repro_datasets_appended_total 1" in dump


class TestWarmJobs:
    def test_warm_job_reports_drift(self, client, batches):
        base = client.register_points(batches[0])
        child = client.append_dataset(base["id"], batches[1])
        done = client.wait(
            client.submit(
                algorithm="kcenter", dataset=child["id"], k=5, seed=0,
                machines=4, warm_start=True,
            )["id"]
        )
        assert done["state"] == "done"
        payload = done["result"]
        drift = payload["drift"]
        assert drift["appended"] == 60
        assert 0.0 <= drift["center_overlap"] <= 1.0
        assert drift["objective"] == payload["record"]["radius"]
        assert drift["drift_ratio"] == pytest.approx(
            drift["objective"] / payload["warm_start"]["parent"]["objective"]
        )
        assert payload["warm_start"]["parent"]["dataset"] == base["id"]
        assert payload["warm_start"]["parent"]["n"] == 60

    def test_warm_on_non_chained_dataset_400(self, client, batches):
        base = client.register_points(batches[0])
        with pytest.raises(ServiceError) as exc:
            client.submit(
                algorithm="kcenter", dataset=base["id"], k=4, warm_start=True
            )
        assert exc.value.status == 400

    def test_warm_and_cold_cached_separately(self, client, batches):
        base = client.register_points(batches[0])
        child = client.append_dataset(base["id"], batches[1])
        spec = dict(algorithm="kcenter", dataset=child["id"], k=5, seed=0,
                    machines=4)
        cold = client.wait(client.submit(**spec)["id"])
        warm = client.wait(client.submit(warm_start=True, **spec)["id"])
        # the warm job ran its own solve; it must not be served the
        # cold result (the payloads differ at least in the drift report)
        assert "drift" not in cold["result"]
        assert "drift" in warm["result"]

        # resubmitting each mode hits its own cache entry
        again_cold = client.submit(**spec)
        again_warm = client.submit(warm_start=True, **spec)
        assert again_cold["cached"] is True
        assert again_warm["cached"] is True
        assert again_warm["result"] == warm["result"]
        assert again_cold["result"] == cold["result"]

    def test_cache_never_cross_serves_parent_and_child(self, client, batches):
        base = client.register_points(batches[0])
        child = client.append_dataset(base["id"], batches[1])
        spec = dict(algorithm="kcenter", k=5, seed=0, machines=4)
        on_parent = client.wait(client.submit(dataset=base["id"], **spec)["id"])
        on_child = client.submit(dataset=child["id"], **spec)
        # same spec, different dataset version: must not be a cache hit
        assert on_child["cached"] is False
        on_child = client.wait(on_child["id"])
        assert (
            on_child["result"]["fingerprint"]
            != on_parent["result"]["fingerprint"]
        )

    def test_warm_job_resolves_parent_transitively(self, client, batches):
        """A warm job on a grandchild whose ancestors were never solved
        resolves the whole chain (each link warm on its own parent)."""
        base = client.register_points(batches[0])
        child = client.append_dataset(base["id"], batches[1])
        grand = client.append_dataset(child["id"], batches[2])
        done = client.wait(
            client.submit(
                algorithm="kcenter", dataset=grand["id"], k=5, seed=0,
                machines=4, warm_start=True,
            )["id"],
            timeout=120.0,
        )
        assert done["state"] == "done"
        assert done["result"]["drift"]["appended"] == 60
        assert done["result"]["warm_start"]["parent"]["n"] == 120

    def test_warm_jobs_metric_counter(self, server, client, batches):
        base = client.register_points(batches[0])
        child = client.append_dataset(base["id"], batches[1])
        client.wait(
            client.submit(
                algorithm="diversity", dataset=child["id"], k=5, seed=0,
                machines=4, warm_start=True,
            )["id"]
        )
        dump = server.manager.metrics.render_prometheus()
        assert "repro_warm_start_jobs_total 1" in dump
        assert "repro_warm_start_drift_ratio" in dump


class TestDriftDeterminism:
    @staticmethod
    def _run_chain(batches, backend):
        registry = DatasetRegistry()
        manager = JobManager(registry, workers=1, backend=backend).start()
        try:
            ds = registry.register_points(batches[0])
            reports = []
            for delta in batches[1:]:
                ds = registry.append(ds.id, delta)
                job = manager.submit(
                    JobSpec(
                        algorithm="kcenter", dataset=ds.id, k=5, seed=0,
                        machines=4, warm_start=True,
                    )
                )
                manager.wait(job.id)
                assert job.state.value == "done", job.error
                payload = job.result
                reports.append(
                    {
                        "fingerprint": payload["fingerprint"],
                        "record": {
                            key: payload["record"][key]
                            for key in ("centers", "radius", "tau",
                                        "coreset_value")
                        },
                        "oracle": payload["oracle"],
                        "drift": payload["drift"],
                    }
                )
            return json.dumps(reports, sort_keys=True)
        finally:
            manager.stop()

    def test_drift_reports_byte_identical_across_backends(self, batches):
        serial = self._run_chain(batches, "serial")
        thread = self._run_chain(batches, "thread")
        assert serial == thread
