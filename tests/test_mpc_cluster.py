"""Tests for the MPC cluster: rounds, delivery, accounting, limits."""

import numpy as np
import pytest

from repro.exceptions import (
    CommunicationLimitExceeded,
    MemoryLimitExceeded,
    UnknownPointError,
)
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.limits import Limits
from repro.mpc.message import Ids, PointBatch


@pytest.fixture
def metric(rng):
    return EuclideanMetric(rng.normal(size=(40, 2)))


@pytest.fixture
def cluster(metric):
    return MPCCluster(metric, num_machines=4, seed=0)


class TestConstruction:
    def test_machine_count(self, cluster):
        assert cluster.m == 4 and len(cluster.machines) == 4

    def test_partition_covers_input(self, cluster):
        all_ids = np.concatenate([mach.local_ids for mach in cluster.machines])
        assert np.array_equal(np.sort(all_ids), np.arange(40))

    def test_custom_partition(self, metric):
        parts = [np.arange(0, 20), np.arange(20, 40)]
        c = MPCCluster(metric, 2, partition=parts)
        assert np.array_equal(c.machines[0].local_ids, parts[0])

    def test_partition_size_mismatch(self, metric):
        with pytest.raises(ValueError, match="partition size"):
            MPCCluster(metric, 3, partition=[np.arange(40)])

    def test_zero_machines_rejected(self, metric):
        with pytest.raises(ValueError):
            MPCCluster(metric, 0)

    def test_central_is_machine_zero(self, cluster):
        assert cluster.central is cluster.machines[0]


class TestMessaging:
    def test_send_and_step_delivers(self, cluster):
        cluster.send(1, 2, 42.0, tag="x")
        inboxes = cluster.step()
        assert len(inboxes[2]) == 1
        assert inboxes[2][0].payload == 42.0
        assert inboxes[2][0].tag == "x"
        assert inboxes[0] == [] and inboxes[1] == []

    def test_step_advances_round(self, cluster):
        assert cluster.round_no == 0
        cluster.step()
        assert cluster.round_no == 1

    def test_messages_not_delivered_before_step(self, cluster):
        ids = cluster.machines[0].local_ids[:1]
        cluster.send(0, 1, PointBatch(ids))
        assert not cluster.machines[1].knows(ids)  # still in flight
        inboxes = cluster.step()
        assert len(inboxes[1]) == 1
        assert cluster.machines[1].knows(ids)

    def test_pointbatch_teaches_receiver(self, cluster):
        src_ids = cluster.machines[1].local_ids[:3]
        assert not cluster.machines[2].knows(src_ids)
        cluster.send(1, 2, PointBatch(src_ids))
        cluster.step()
        assert cluster.machines[2].knows(src_ids)

    def test_nested_pointbatch_teaches_receiver(self, cluster):
        src_ids = cluster.machines[1].local_ids[:2]
        cluster.send(1, 2, {"data": (PointBatch(src_ids), 1.0)})
        cluster.step()
        assert cluster.machines[2].knows(src_ids)

    def test_strict_sender_must_know_points(self, cluster):
        foreign = cluster.machines[2].local_ids[:1]
        with pytest.raises(UnknownPointError):
            cluster.send(1, 0, PointBatch(foreign))

    def test_ids_payload_not_checked(self, cluster):
        foreign = cluster.machines[2].local_ids[:1]
        cluster.send(1, 0, Ids(foreign))  # bare references are fine
        cluster.step()

    def test_machine_id_validation(self, cluster):
        with pytest.raises(ValueError):
            cluster.send(0, 9, 1.0)

    def test_broadcast_reaches_everyone_else(self, cluster):
        cluster.broadcast(1, 3.0)
        inboxes = cluster.step()
        for i in range(4):
            assert len(inboxes[i]) == (0 if i == 1 else 1)

    def test_gather_to_central_sorted_by_src(self, cluster):
        inbox = cluster.gather_to_central({i: float(i) for i in range(4)})
        assert [msg.src for msg in inbox] == [0, 1, 2, 3]

    def test_all_to_all_points(self, cluster):
        batches = {i: cluster.machines[i].local_ids[:2] for i in range(4)}
        cluster.all_to_all_points(batches)
        union = np.concatenate(list(batches.values()))
        for mach in cluster.machines:
            assert mach.knows(union)


class TestAccounting:
    def test_scalar_word_charged_both_sides(self, cluster):
        cluster.send(1, 2, 5.0)
        cluster.step()
        r = cluster.stats.rounds_log[-1]
        assert r.sent[1] == 1 and r.received[2] == 1
        assert r.sent[0] == 0

    def test_pointbatch_words(self, cluster, metric):
        ids = cluster.machines[1].local_ids[:3]
        cluster.send(1, 0, PointBatch(ids))
        cluster.step()
        r = cluster.stats.rounds_log[-1]
        assert r.sent[1] == 3 * (1 + metric.point_words())

    def test_totals_accumulate(self, cluster):
        cluster.send(0, 1, 1.0)
        cluster.step()
        cluster.send(0, 1, np.zeros(5))
        cluster.step()
        assert cluster.stats.total_words == 6
        assert cluster.stats.rounds == 2

    def test_max_machine_total(self, cluster):
        cluster.send(0, 1, np.zeros(10))
        cluster.step()
        assert cluster.stats.max_machine_total == 10
        per = cluster.stats.per_machine_totals()
        assert per[0] == 10 and per[1] == 10 and per[2] == 0

    def test_summary_keys(self, cluster):
        cluster.step()
        s = cluster.stats.summary()
        for key in (
            "machines",
            "rounds",
            "total_words",
            "max_machine_words_per_round",
            "max_machine_total_words",
            "peak_known_points",
        ):
            assert key in s

    def test_self_message_counts_once_per_side(self, cluster):
        cluster.send(1, 1, 2.0)
        cluster.step()
        stats = cluster.stats.rounds_log[-1]
        assert stats.sent[1] == 1 and stats.received[1] == 1


class TestLimits:
    def test_comm_limit_trips(self, metric):
        c = MPCCluster(metric, 2, seed=0, limits=Limits(comm_words_per_round=3))
        c.send(0, 1, np.zeros(10))
        with pytest.raises(CommunicationLimitExceeded):
            c.step()

    def test_comm_limit_allows_under(self, metric):
        c = MPCCluster(metric, 2, seed=0, limits=Limits(comm_words_per_round=100))
        c.send(0, 1, np.zeros(10))
        c.step()

    def test_memory_limit_trips_on_learn(self, metric):
        # partitions hold ~20 points => 40 words; cap at 45 and ship 5 points
        c = MPCCluster(metric, 2, seed=0, limits=Limits(memory_words=45))
        ids = c.machines[0].local_ids[:5]
        c.send(0, 1, PointBatch(ids))
        with pytest.raises(MemoryLimitExceeded):
            c.step()

    def test_memory_limit_at_construction(self, metric):
        with pytest.raises(MemoryLimitExceeded):
            MPCCluster(metric, 2, seed=0, limits=Limits(memory_words=1))

    def test_theory_limits_factory(self):
        lim = Limits.theory(n=1000, m=8, k=10, dim=2)
        assert lim.memory_words > 0 and lim.comm_words_per_round > 0


class TestDeterminism:
    def test_same_seed_same_partition(self, metric):
        a = MPCCluster(metric, 4, seed=9)
        b = MPCCluster(metric, 4, seed=9)
        for x, y in zip(a.machines, b.machines):
            assert np.array_equal(x.local_ids, y.local_ids)

    def test_same_seed_same_machine_rng(self, metric):
        a = MPCCluster(metric, 4, seed=9)
        b = MPCCluster(metric, 4, seed=9)
        assert a.machines[2].rng.random() == b.machines[2].rng.random()

    def test_different_seed_differs(self, metric):
        a = MPCCluster(metric, 4, seed=1)
        b = MPCCluster(metric, 4, seed=2)
        assert not all(
            np.array_equal(x.local_ids, y.local_ids)
            for x, y in zip(a.machines, b.machines)
        )
