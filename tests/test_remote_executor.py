"""Tests for the remote execution backend (repro.mpc.remote).

The contract under test is the same one the process backend carries:
remote runs — healthy, faulted, or degraded — must be bit-identical to
serial runs, CountingOracle ledger included.  On top of that, the
protocol edges the issue calls out: truncated frames, workers that
accept then hang past the lease, duplicate results after a re-dispatch
(first-writer-wins), and dataset-cache misses on restarted workers.

Everything runs against in-process :class:`WorkerAgent` instances on
ephemeral loopback ports — real sockets, no subprocesses.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.api import solve_kcenter
from repro.faults import FaultPlan
from repro.metric.euclidean import EuclideanMetric
from repro.metric.oracle import CountingOracle
from repro.mpc.cluster import MPCCluster
from repro.mpc.remote import (
    REMOTE_WORKERS_ENV_VAR,
    ProtocolError,
    RemoteExecutor,
    WorkerAgent,
    parse_worker_addresses,
    recv_msg,
    send_msg,
)


@pytest.fixture
def agents():
    """Three live in-process worker agents; stopped at teardown."""
    pool = [WorkerAgent() for _ in range(3)]
    addrs = [a.start() for a in pool]
    yield pool, addrs
    for a in pool:
        a.stop()


@pytest.fixture
def points(rng):
    return rng.normal(scale=3.0, size=(240, 2))


def serial_baseline(points, *, k=4, seed=7, eps=0.3):
    from repro.mpc.executor import SerialExecutor

    oracle = CountingOracle(EuclideanMetric(points))
    cluster = MPCCluster(oracle, 4, seed=seed, executor=SerialExecutor())
    res = solve_kcenter(k=k, eps=eps, cluster=cluster)
    return res, oracle


def remote_run(points, addrs, *, k=4, seed=7, eps=0.3, faults=None, **kw):
    oracle = CountingOracle(EuclideanMetric(points))
    executor = RemoteExecutor(addrs, **kw)
    cluster = MPCCluster(
        oracle, 4, seed=seed, executor=executor, faults=faults
    )
    res = solve_kcenter(k=k, eps=eps, cluster=cluster)
    executor.shutdown()
    return res, oracle, executor


def assert_identical(res_a, oracle_a, res_b, oracle_b):
    assert res_a.radius == res_b.radius
    assert np.array_equal(np.sort(res_a.centers), np.sort(res_b.centers))
    assert res_a.rounds == res_b.rounds
    assert oracle_a.calls == oracle_b.calls
    assert oracle_a.evaluations == oracle_b.evaluations


class TestAddressParsing:
    def test_string_list_and_tuples(self):
        assert parse_worker_addresses("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse_worker_addresses(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
        assert parse_worker_addresses(None) == []
        assert parse_worker_addresses("") == []

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_worker_addresses("nocolon")
        with pytest.raises(ValueError, match="port"):
            parse_worker_addresses("host:notaport")
        with pytest.raises(ValueError, match="out of range"):
            parse_worker_addresses("host:70000")
        with pytest.raises(ValueError, match="out of range"):
            parse_worker_addresses("host:0")

    def test_zero_port_allowed_for_listen(self):
        assert parse_worker_addresses(
            "127.0.0.1:0", allow_zero_port=True
        ) == [("127.0.0.1", 0)]

    def test_env_var_default(self, monkeypatch, agents):
        _pool, addrs = agents
        spec = ",".join(f"{h}:{p}" for h, p in addrs)
        monkeypatch.setenv(REMOTE_WORKERS_ENV_VAR, spec)
        ex = RemoteExecutor()
        assert ex.fallback_reason is None
        assert len(ex._workers) == 3

    def test_no_workers_means_immediate_fallback(self, monkeypatch):
        monkeypatch.delenv(REMOTE_WORKERS_ENV_VAR, raising=False)
        ex = RemoteExecutor()
        assert ex.fallback_reason is not None
        # the ladder still computes correctly
        assert ex.map_indexed(lambda i: i * i, 4) == [0, 1, 4, 9]

    def test_max_workers_caps_addresses(self, agents):
        _pool, addrs = agents
        ex = RemoteExecutor(addrs, max_workers=2)
        assert len(ex._workers) == 2


class TestBitIdentity:
    def test_clean_run_matches_serial(self, points, agents):
        _pool, addrs = agents
        ser, ser_oracle = serial_baseline(points)
        rem, rem_oracle, ex = remote_run(points, addrs)
        assert_identical(ser, ser_oracle, rem, rem_oracle)
        rec = ex.recovery_stats()
        assert rec["workers_lost"] == 0
        assert rec["dispatched_chunks"] > 0
        # the dataset shipped once per worker, not once per chunk
        assert rec["datasets_shipped"] == 3

    def test_chaos_run_matches_serial(self, points, agents):
        """Seeded drop + kill faults: survivors absorb the work and the
        result (ledger included) still matches serial — the acceptance
        scenario of the issue, in-process."""
        _pool, addrs = agents
        ser, ser_oracle = serial_baseline(points)
        plan = FaultPlan(seed=0, remote_kill=0.04, remote_drop=0.06)
        rem, rem_oracle, ex = remote_run(points, addrs, faults=plan)
        assert_identical(ser, ser_oracle, rem, rem_oracle)
        rec = ex.recovery_stats()
        assert rec["faults_injected"] > 0
        assert rec["redispatched_chunks"] > 0

    def test_pool_loss_degrades_and_matches_serial(self, points, agents):
        """Killing every agent mid-run forces the local ladder; the
        reasons land in recovery_stats() and the result is unchanged."""
        pool, addrs = agents
        ser, ser_oracle = serial_baseline(points)
        plan = FaultPlan(seed=1, remote_kill=1.0, remote_fault_attempts=99)
        rem, rem_oracle, ex = remote_run(points, addrs, faults=plan)
        assert_identical(ser, ser_oracle, rem, rem_oracle)
        assert ex.fallback_reason is not None
        assert "remote pool lost" in ex.fallback_reason
        rec = ex.recovery_stats()
        assert rec["workers_lost"] == 3
        assert rec["local_fallbacks"] + rec["serial_fallbacks"] >= 1
        assert rec["degradations"]
        status = ex.pool_status()
        assert status["alive"] == 0
        assert all(not w["alive"] for w in status["workers"].values())

    def test_unreachable_pool_degrades(self, points):
        # grab a port that is certainly closed
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        ser, ser_oracle = serial_baseline(points)
        rem, rem_oracle, ex = remote_run(
            points, [("127.0.0.1", port)], connect_timeout_s=0.2
        )
        assert_identical(ser, ser_oracle, rem, rem_oracle)
        assert ex.fallback_reason is not None


class TestProtocolEdges:
    def test_truncated_frame_raises_protocol_error(self, agents):
        pool, addrs = agents
        with socket.create_connection(addrs[0]) as sock:
            send_msg(sock, {"op": "ping"})
            sock.settimeout(2.0)
            # read only half the reply, then reuse the raw tail: the
            # driver-side reader must fail loudly, not hang or return junk
            header = sock.recv(8)
            (length,) = struct.unpack("!Q", header)
            assert length > 0
        # a server that closes mid-frame produces ProtocolError
        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)

        def half_reply():
            conn, _ = srv.accept()
            recv_msg(conn)
            blob = pickle.dumps({"ok": True})
            conn.sendall(struct.pack("!Q", len(blob)) + blob[: len(blob) // 2])
            conn.close()

        t = threading.Thread(target=half_reply, daemon=True)
        t.start()
        with socket.create_connection(srv.getsockname()) as sock:
            sock.settimeout(2.0)
            send_msg(sock, {"op": "ping"})
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_msg(sock)
        srv.close()

    def test_oversized_header_rejected(self):
        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)

        def huge_header():
            conn, _ = srv.accept()
            conn.sendall(struct.pack("!Q", 1 << 62))
            time.sleep(0.2)
            conn.close()

        threading.Thread(target=huge_header, daemon=True).start()
        with socket.create_connection(srv.getsockname()) as sock:
            sock.settimeout(2.0)
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_msg(sock)
        srv.close()

    def test_agent_survives_garbage_request(self, agents):
        pool, addrs = agents
        with socket.create_connection(addrs[0]) as sock:
            sock.sendall(struct.pack("!Q", 7) + b"garbage")
        # agent dropped the bad connection but still answers pings
        with socket.create_connection(addrs[0]) as sock:
            sock.settimeout(2.0)
            send_msg(sock, {"op": "ping"})
            assert recv_msg(sock)["ok"] is True

    def test_hung_worker_forfeits_lease_and_chunk_redispatches(
        self, points, agents
    ):
        """A worker that passes the ping handshake, accepts its chunk,
        then hangs without heartbeating: the lease expires, the chunk
        re-dispatches to the survivors, and the result stays
        bit-identical to serial."""
        released = threading.Event()

        class HangingAgent(WorkerAgent):
            def _handle_run(self, conn, request):
                released.wait(30.0)  # never heartbeats, never replies

        pool, addrs = agents
        hung = HangingAgent()
        hung_addr = hung.start()
        try:
            ser, ser_oracle = serial_baseline(points)
            rem, rem_oracle, ex = remote_run(
                points,
                [hung_addr] + [tuple(a) for a in addrs],
                lease_s=0.3,
                chunk_timeout_s=5.0,
            )
            assert_identical(ser, ser_oracle, rem, rem_oracle)
            rec = ex.recovery_stats()
            assert rec["workers_lost"] == 1
            assert rec["redispatched_chunks"] >= 1
            dead = [
                w for w in ex.pool_status()["workers"].values()
                if not w["alive"]
            ]
            assert len(dead) == 1
            assert "lease expired" in dead[0]["reason"]
        finally:
            released.set()
            hung.stop()

    def test_duplicate_late_result_first_writer_wins(self, agents):
        """A worker whose chunk outlives the deadline (while still
        heartbeating) is abandoned and the chunk re-dispatched; when the
        slow original finally answers, the reaper routes it into the
        first-writer-wins gate and it is counted as a duplicate, not
        stored twice."""
        pool, addrs = agents
        # pick a seed where exactly one of the three first-batch chunk
        # slots draws the delay, so the other two workers survive
        for seed in range(64):
            plan = FaultPlan(
                seed=seed, remote_delay=0.34, remote_delay_s=1.5
            )
            rolls = [plan.remote_fault(1, s) for s in range(3)]
            if rolls.count("delay") == 1:
                break
        else:  # pragma: no cover - 64 seeds always suffice
            pytest.fail("no seed produced exactly one delayed slot")

        ex = RemoteExecutor(
            [tuple(a) for a in addrs],
            faults=plan,
            lease_s=5.0,  # heartbeats keep the lease warm during the delay
            chunk_timeout_s=0.5,  # ... but the chunk deadline still trips
        )
        out = ex.map_indexed(lambda i: i * 11, 6)
        assert out == [i * 11 for i in range(6)]
        rec = ex.recovery_stats()
        assert rec["redispatched_chunks"] >= 1
        assert rec["workers_lost"] == 1
        dead = [
            w for w in ex.pool_status()["workers"].values() if not w["alive"]
        ]
        assert "deadline exceeded" in dead[0]["reason"]
        # the abandoned original lands ~1.5s in; wait for the reaper
        deadline = time.monotonic() + 8.0
        while time.monotonic() < deadline and ex.duplicate_results == 0:
            time.sleep(0.05)
        assert ex.duplicate_results >= 1
        # first-writer-wins: the salvaged duplicate did not corrupt the
        # already-returned batch
        assert out == [i * 11 for i in range(6)]
        ex.shutdown()

    def test_dataset_cache_miss_on_restarted_worker(self, points, agents):
        """Stop + restart an agent on the same port between two batches:
        its cache is cold, the driver re-ships on need_dataset, and the
        second solve still matches serial."""
        pool, addrs = agents
        oracle = CountingOracle(EuclideanMetric(points))
        executor = RemoteExecutor([tuple(a) for a in addrs])
        cluster = MPCCluster(oracle, 4, seed=7, executor=executor)
        res1 = solve_kcenter(k=4, eps=0.3, cluster=cluster)
        shipped_before = executor.datasets_shipped
        assert shipped_before == 3

        # restart agent 0 in place: same port, empty dataset cache
        pool[0].stop()
        fresh = WorkerAgent(addrs[0][0], addrs[0][1])
        for _ in range(20):
            try:
                fresh.start()
                break
            except OSError:
                time.sleep(0.1)
        pool[0] = fresh

        oracle2 = CountingOracle(EuclideanMetric(points))
        cluster2 = MPCCluster(oracle2, 4, seed=7, executor=executor)
        res2 = solve_kcenter(k=4, eps=0.3, cluster=cluster2)
        assert res2.radius == res1.radius
        assert np.array_equal(np.sort(res2.centers), np.sort(res1.centers))
        # the restarted worker was re-shipped exactly once more
        assert executor.datasets_shipped == shipped_before + 1
        ser, ser_oracle = serial_baseline(points)
        assert res2.radius == ser.radius
        assert oracle2.calls == ser_oracle.calls
        assert oracle2.evaluations == ser_oracle.evaluations
        executor.shutdown()


class TestEffectiveWorkersReporting:
    def test_surviving_pool_size_reported(self, points, agents):
        pool, addrs = agents
        plan = FaultPlan(seed=0, remote_kill=0.04, remote_drop=0.06)
        _res, _oracle, ex = remote_run(points, addrs, faults=plan)
        rec = ex.recovery_stats()
        lost = rec["workers_lost"]
        assert lost >= 1
        assert rec["effective_workers"] == ex.effective_workers()
        if lost < 3:
            # survivors: the report is the surviving pool, not the ctor size
            assert ex.effective_workers() == 3 - lost
            assert ex.effective_workers(1) == 1
        else:
            # whole pool gone: the local ladder answers instead
            assert ex.effective_workers() >= 1

    def test_process_executor_reports_losses(self):
        """Satellite 1: ProcessExecutor must report the surviving count
        after permanent chunk death, not the ctor value."""
        from repro.mpc.executor import ProcessExecutor

        ex = ProcessExecutor(max_workers=4, chunk_retries=0)
        if ex.fallback_reason:
            pytest.skip(ex.fallback_reason)
        assert ex.effective_workers() == 4
        assert ex.recovery_stats()["workers_lost"] == 0

        driver_pid = os.getpid()

        def die(i):
            import os as _os

            if i % 2 == 0:
                if _os.getpid() != driver_pid:
                    _os._exit(3)  # crash the forked worker only
                raise RuntimeError("still broken in the serial re-run")
            return i

        # crashes burn the (zero) retry budget; the serial re-run then
        # surfaces the real error, and the loss is visible afterwards
        with pytest.raises(RuntimeError, match="serial re-run"):
            ex.map_indexed(die, 8)
        rec = ex.recovery_stats()
        assert rec["workers_lost"] >= 1
        assert rec["effective_workers"] == ex.effective_workers()
        assert ex.effective_workers() < 4
        ex.shutdown()

    def test_worker_agent_slots_honor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        agent = WorkerAgent()
        assert agent.slots == 5
        monkeypatch.delenv("REPRO_WORKERS")
        assert WorkerAgent(slots=2).slots == 2


class TestFaultPlanRemoteLayer:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(remote_drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(remote_drop=0.6, remote_kill=0.6)
        with pytest.raises(ValueError):
            FaultPlan(remote_delay=0.1, remote_delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(remote_fault_attempts=0)

    def test_deterministic_and_clears_after_attempts(self):
        plan = FaultPlan(seed=3, remote_drop=0.5, remote_fault_attempts=1)
        rolls = [plan.remote_fault(1, c) for c in range(32)]
        assert rolls == [plan.remote_fault(1, c) for c in range(32)]
        assert any(r == "drop" for r in rolls)
        assert any(r is None for r in rolls)
        # attempt >= remote_fault_attempts: the retry must run clean
        assert all(
            plan.remote_fault(1, c, attempt=1) is None for c in range(32)
        )

    def test_roundtrip_and_describe(self):
        plan = FaultPlan(seed=9, remote_kill=0.2, remote_delay=0.1)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.remote_kill == 0.2
        assert clone.remote_delay == 0.1
        assert "remote(" in plan.describe()
        assert plan.remote_active
        assert not FaultPlan().remote_active


class TestAgentLifecycle:
    def test_shutdown_agents(self, agents):
        pool, addrs = agents
        ex = RemoteExecutor([tuple(a) for a in addrs])
        ex.shutdown_agents()
        assert all(not w.alive for w in ex._workers)
        for host, port in addrs:
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=0.5)

    def test_version_handshake_present_in_ping(self, agents):
        import sys

        _pool, addrs = agents
        with socket.create_connection(addrs[0]) as sock:
            sock.settimeout(2.0)
            send_msg(sock, {"op": "ping"})
            reply = recv_msg(sock)
        assert tuple(reply["python"]) == tuple(sys.version_info[:2])
        assert reply["slots"] >= 1
