"""End-to-end property-based tests (hypothesis): the theorem contracts
hold on arbitrary small instances, not just the fixtures we chose."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.validation import (
    verify_diversity_solution,
    verify_k_bounded_mis,
    verify_kcenter_solution,
)
from repro.baselines.exact import exact_diversity, exact_kcenter
from repro.core import mpc_diversity, mpc_k_bounded_mis, mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster

small_points = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(6, 16), st.just(2)),
    elements=st.floats(-20, 20, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=25, deadline=None)
@given(pts=small_points, tau=st.floats(0.05, 10.0), k=st.integers(1, 6), seed=st.integers(0, 50))
def test_kbounded_mis_contract_property(pts, tau, k, seed):
    """Definition 1 holds for arbitrary points, thresholds, k, and seeds."""
    metric = EuclideanMetric(pts)
    m = min(3, metric.n)
    cluster = MPCCluster(metric, m, seed=seed)
    res = mpc_k_bounded_mis(cluster, tau, k)
    verify_k_bounded_mis(metric, res, np.arange(metric.n))


@settings(max_examples=15, deadline=None)
@given(pts=small_points, k=st.integers(1, 4), seed=st.integers(0, 20))
def test_kcenter_factor_property(pts, k, seed):
    """Theorem 17's 2(1+ε) factor versus the exact optimum."""
    metric = EuclideanMetric(pts)
    if k > metric.n:
        return
    _, opt = exact_kcenter(metric, k)
    cluster = MPCCluster(metric, min(3, metric.n), seed=seed)
    eps = 0.25
    res = mpc_kcenter(cluster, k, epsilon=eps)
    verify_kcenter_solution(metric, res.centers, k, res.radius)
    assert res.radius <= 2.0 * (1.0 + eps) * opt + 1e-7 * (1.0 + opt)


@settings(max_examples=15, deadline=None)
@given(pts=small_points, k=st.integers(2, 4), seed=st.integers(0, 20))
def test_diversity_factor_property(pts, k, seed):
    """Theorem 3's 2(1+ε) factor versus the exact optimum."""
    metric = EuclideanMetric(pts)
    if k > metric.n:
        return
    _, opt = exact_diversity(metric, k)
    cluster = MPCCluster(metric, min(3, metric.n), seed=seed)
    eps = 0.25
    res = mpc_diversity(cluster, k, epsilon=eps)
    verify_diversity_solution(metric, res.ids, k, res.diversity)
    assert res.diversity >= opt / (2.0 * (1.0 + eps)) - 1e-7 * (1.0 + opt)
    assert res.diversity <= opt + 1e-7 * (1.0 + opt)


@settings(max_examples=20, deadline=None)
@given(
    pts=small_points,
    seed=st.integers(0, 30),
    m=st.integers(1, 4),
)
def test_communication_ledger_invariants_property(pts, seed, m):
    """Accounting invariants: sent totals equal received totals every
    round; rounds in the log match the cluster clock."""
    metric = EuclideanMetric(pts)
    m = min(m, metric.n)
    cluster = MPCCluster(metric, m, seed=seed)
    mpc_k_bounded_mis(cluster, 1.0, 3)
    assert cluster.stats.rounds == cluster.round_no
    for r in cluster.stats.rounds_log:
        assert r.sent.sum() == r.received.sum()
        assert (r.sent >= 0).all() and (r.received >= 0).all()
