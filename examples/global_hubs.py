"""Placing k global distribution hubs among world cities under the
great-circle metric — k-center on the sphere, where flat Euclidean
distances would be wrong by thousands of kilometres near the poles and
across the antimeridian.

Uses a synthetic world-cities gazetteer (real data is unavailable
offline; the generator reproduces the continent/metro clustering
signature — see repro/workloads/geo.py).

Run:  python examples/global_hubs.py
"""

from __future__ import annotations

import numpy as np

from repro import MPCCluster, mpc_kcenter
from repro.analysis.lower_bounds import kcenter_lower_bound
from repro.analysis.reports import format_table
from repro.baselines import gonzalez_kcenter
from repro.workloads import world_cities_metric


def main() -> None:
    rng = np.random.default_rng(17)
    metric, labels = world_cities_metric(2500, rng=rng)
    k = 12

    cluster = MPCCluster(metric, num_machines=10, seed=17)
    res = mpc_kcenter(cluster, k=k, epsilon=0.1)
    _, gmm_r = gonzalez_kcenter(metric, k)
    lb = kcenter_lower_bound(metric, k)

    print(
        format_table(
            [
                {
                    "algorithm": "MPC k-center (2+eps)",
                    "worst city-to-hub distance (km)": res.radius,
                    "ratio vs LB": res.radius / lb,
                    "rounds": res.rounds,
                },
                {
                    "algorithm": "sequential GMM (2-approx)",
                    "worst city-to-hub distance (km)": gmm_r,
                    "ratio vs LB": gmm_r / lb,
                    "rounds": 0,
                },
            ],
            title=f"global hub placement: {metric.n} cities, k={k} hubs (haversine)",
        )
    )
    hubs = metric.points.data[res.centers]
    print("\nhub coordinates (lat, lon):")
    for lat, lon in hubs:
        print(f"  {lat:8.2f}, {lon:8.2f}")
    print(f"\ncertified optimum lower bound: {lb:.0f} km")


if __name__ == "__main__":
    main()
