"""Selecting k maximally-distinct log templates by edit distance.

A monitoring pipeline wants k representative alert templates that are
as different from each other as possible, so a human scanning them sees
the full variety of failure modes — k-diversity maximization under the
Levenshtein metric.  No coordinates exist here; the algorithms only
ever call the distance oracle, exactly the paper's model.

Run:  python examples/log_template_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import EditDistanceMetric, MPCCluster, mpc_diversity
from repro.analysis.reports import format_table
from repro.baselines import gonzalez_diversity


def synth_templates(rng: np.random.Generator, n: int = 240) -> list[str]:
    """Mutated variants of a handful of base alert templates."""
    bases = [
        "connection timeout to host {} after {} retries",
        "disk usage on volume {} exceeded {} percent",
        "failed to authenticate user {} from address {}",
        "queue {} depth above threshold {} messages",
        "tls certificate for {} expires in {} days",
        "gc pause of {} ms detected on node {}",
    ]
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    out = []
    for i in range(n):
        base = bases[int(rng.integers(0, len(bases)))]
        s = base.format(
            "".join(rng.choice(list(alphabet), size=4)),
            int(rng.integers(1, 999)),
        )
        # random character noise to simulate template drift
        chars = list(s)
        for _ in range(int(rng.integers(0, 4))):
            pos = int(rng.integers(0, len(chars)))
            chars[pos] = str(rng.choice(list(alphabet)))
        out.append("".join(chars))
    return out


def main() -> None:
    rng = np.random.default_rng(9)
    templates = synth_templates(rng)
    metric = EditDistanceMetric(templates)
    k = 6

    cluster = MPCCluster(metric, num_machines=4, seed=9)
    res = mpc_diversity(cluster, k=k, epsilon=0.25)
    _, gmm_div = gonzalez_diversity(metric, k)

    print(
        format_table(
            [
                {
                    "algorithm": "MPC diversity (2+eps)",
                    "min pairwise edit distance": res.diversity,
                    "rounds": res.rounds,
                },
                {
                    "algorithm": "sequential GMM (2-approx)",
                    "min pairwise edit distance": gmm_div,
                    "rounds": 0,
                },
            ],
            title=f"log template selection ({metric.n} templates, k={k})",
        )
    )
    print("\nselected templates:")
    for i in res.ids:
        print(f"  - {templates[int(i)]}")


if __name__ == "__main__":
    main()
