"""Anatomy of a run: watch the paper's machinery work, step by step.

Walks one MPC k-center execution with full instrumentation:

1. the per-machine GMM coresets and the 4-approximation r;
2. the threshold ladder the binary search probes;
3. inside one k-bounded MIS run — light/heavy split, sampling,
   edge decay per round (the Theorem 13 mechanism);
4. where every word of communication went, by message tag.

Run:  python examples/anatomy_of_a_run.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import EuclideanMetric, MPCCluster, TheoryConstants, mpc_kcenter
from repro.analysis.reports import format_table
from repro.core.degree_approx import mpc_degree_approximation
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.core.kcenter import mpc_kcenter_coreset
from repro.mpc.trace import MessageTrace
from repro.workloads import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(1)
    points, _ = gaussian_mixture(1200, dim=2, components=10, rng=rng)
    metric = EuclideanMetric(points)
    k, eps, m = 10, 0.25, 6
    constants = TheoryConstants.practical()

    # ---- stage 1: the two-round coreset (lines 1-3 of Algorithm 5) --------
    cluster = MPCCluster(metric, m, seed=1)
    Q, r = mpc_kcenter_coreset(cluster, k)
    print(f"stage 1 — coreset: |Q| = {Q.size}, r = r(V, Q) = {r:.4f}")
    print(f"  guarantee: r*/1 <= r <= 4 r*  =>  r* in [{r/4:.4f}, {r:.4f}]")

    # ---- stage 2: the descending threshold ladder --------------------------
    t = int(math.ceil(math.log(4.0) / math.log1p(eps))) + 1
    taus = [r / (1.0 + eps) ** i for i in range(t + 1)]
    print(f"\nstage 2 — ladder: {t + 1} thresholds from {taus[0]:.4f} down to {taus[-1]:.4f}")
    print(f"  binary search will probe O(log t) = ~{max(1, int(math.log2(t)))+1} of them")

    # ---- stage 3: one k-bounded MIS probe, fully instrumented --------------
    tau_mid = taus[t // 2]
    cluster = MPCCluster(metric, m, seed=1)
    deg = mpc_degree_approximation(cluster, tau_mid, k + 1, constants)
    print(f"\nstage 3 — degree approximation at tau = {tau_mid:.4f}:")
    print(
        f"  sample size {deg.sample_size}, light {deg.light_count} / "
        f"heavy {deg.heavy_count}, light path taken: {deg.light_path_taken}"
    )

    # unbounded k forces the loop to exhaust the graph, exposing the
    # full Theorem 13 edge-decay trace (with k = 11 it exits in round 1)
    cluster = MPCCluster(metric, m, seed=1)
    mis = mpc_k_bounded_mis(cluster, tau_mid, 10**6, constants, instrument=True)
    rows = [
        {
            "outer round": i + 1,
            "active edges before": mis.edge_trace[i],
            "after": mis.edge_trace[i + 1] if i + 1 < len(mis.edge_trace) else 0,
            "decay": (
                mis.edge_trace[i] / max(1, mis.edge_trace[i + 1])
                if i + 1 < len(mis.edge_trace)
                else float("inf")
            ),
        }
        for i in range(max(0, len(mis.edge_trace) - 1))
    ]
    print(
        format_table(
            rows,
            title=f"  edge decay inside the MIS (terminated via {mis.terminated_via}, "
            f"|MIS| = {mis.size})",
        )
    )

    # ---- stage 4: the full pipeline with message tracing -------------------
    cluster = MPCCluster(metric, m, seed=1)
    trace = cluster.obs.add(MessageTrace())
    result = mpc_kcenter(cluster, k, epsilon=eps, constants=constants)
    trace.detach()
    print(
        format_table(
            [
                {"message tag": tag, "words": words}
                for tag, words in list(trace.words_by_tag().items())[:8]
            ],
            title=f"\nstage 4 — where the {trace.total_words()} words went "
            f"(radius {result.radius:.4f} <= tau_j {result.tau:.4f}, "
            f"{result.rounds} rounds)",
        )
    )


if __name__ == "__main__":
    main()
