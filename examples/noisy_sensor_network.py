"""Robustness on contaminated data: place k base stations for a sensor
field whose readings contain background noise (outliers).

Shows the clean-data MPC (2+ε) k-center being dragged by outliers, the
outlier-aware Malkomes et al. 13-approximation variant recovering the
cluster structure, and the sequential Charikar 3-approximation as the
quality reference.  This reproduces the paper's related-work context:
the outlier variants exist precisely because min-max objectives are
brittle under contamination.

Run:  python examples/noisy_sensor_network.py
"""

from __future__ import annotations

import numpy as np

from repro import EuclideanMetric, MPCCluster, mpc_kcenter
from repro.analysis.reports import format_table
from repro.baselines import charikar_kcenter_outliers, malkomes_kcenter_outliers
from repro.workloads import clustered_with_outliers


def main() -> None:
    rng = np.random.default_rng(23)
    n, clusters, z = 800, 6, 40
    points, labels = clustered_with_outliers(
        n, clusters=clusters, outlier_fraction=z / n, rng=rng
    )
    metric = EuclideanMetric(points)
    k = clusters

    # clean-data algorithm: must cover the outliers too
    cluster_a = MPCCluster(metric, num_machines=6, seed=23)
    clean = mpc_kcenter(cluster_a, k=k, epsilon=0.15)

    # outlier-aware MPC baseline (13-approx) and sequential reference (3-approx)
    cluster_b = MPCCluster(metric, num_machines=6, seed=23)
    _, malk_r = malkomes_kcenter_outliers(cluster_b, k, z)
    _, char_r = charikar_kcenter_outliers(metric, k, z)

    rows = [
        {
            "algorithm": "MPC k-center 2+eps (covers outliers)",
            "radius": clean.radius,
            "ignores outliers": False,
        },
        {
            "algorithm": "Malkomes et al. MPC with outliers (13-approx)",
            "radius": malk_r,
            "ignores outliers": True,
        },
        {
            "algorithm": "Charikar sequential with outliers (3-approx)",
            "radius": char_r,
            "ignores outliers": True,
        },
    ]
    print(
        format_table(
            rows,
            title=f"sensor field: n={n}, {clusters} clusters, {z} noise points, k={k}",
        )
    )
    print(
        "\nexpected shape: the clean-data radius is inflated by the noise; "
        "outlier-aware rows sit near the true cluster radius (1.0)"
    )


if __name__ == "__main__":
    main()
