"""Facility location with the (3+ε)-approximation MPC k-supplier
algorithm: open k warehouses (suppliers) so that the farthest store
(customer) is as close as possible to an open warehouse.

Compares the MPC result against the sequential Hochbaum–Shmoys
3-approximation reference and the certified instance lower bound.

Run:  python examples/facility_location.py
"""

from __future__ import annotations

import numpy as np

from repro import EuclideanMetric, MPCCluster, mpc_ksupplier
from repro.analysis.lower_bounds import ksupplier_lower_bound
from repro.analysis.reports import format_table
from repro.baselines import hochbaum_shmoys_ksupplier
from repro.workloads import supplier_instance


def main() -> None:
    rng = np.random.default_rng(11)
    inst = supplier_instance(
        n_customers=900, n_suppliers=300, supplier_layout="uniform", rng=rng
    )
    metric = EuclideanMetric(inst.points)
    k = 9

    cluster = MPCCluster(metric, num_machines=6, seed=11)
    ours = mpc_ksupplier(cluster, inst.customers, inst.suppliers, k=k, epsilon=0.15)

    _, hs_radius = hochbaum_shmoys_ksupplier(metric, inst.customers, inst.suppliers, k)
    lb = ksupplier_lower_bound(metric, inst.customers, inst.suppliers, k)

    rows = [
        {
            "algorithm": "MPC k-supplier (3+eps)",
            "service radius": ours.radius,
            "ratio vs LB": ours.radius / lb,
            "warehouses opened": ours.size,
            "rounds": ours.rounds,
        },
        {
            "algorithm": "Hochbaum-Shmoys (3-approx, sequential)",
            "service radius": hs_radius,
            "ratio vs LB": hs_radius / lb,
            "warehouses opened": k,
            "rounds": 0,
        },
    ]
    print(
        format_table(
            rows,
            title=f"facility location: {inst.customers.size} stores, "
            f"{inst.suppliers.size} candidate warehouses, k={k}",
        )
    )
    print(f"\ncertified lower bound on the optimal radius: {lb:.4f}")
    print(f"theorem guarantee: radius <= 3(1+0.15) * r* = {3 * 1.15 * lb:.4f} (vs LB)")


if __name__ == "__main__":
    main()
