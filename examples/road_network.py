"""k-center on a road network: place k depots on a (simulated) road
graph so the farthest intersection is as close as possible *along the
roads* — a metric with no coordinates, where Euclidean shortcuts would
cheat through buildings.

The paper's guarantees hold in any metric space; this example runs the
MPC pipeline on a shortest-path metric (own Dijkstra, built from a
random geometric "road" graph) and also demonstrates the dominating-set
application from the paper's conclusion: cover every intersection
within a service distance τ.

Run:  python examples/road_network.py
"""

from __future__ import annotations

import numpy as np

from repro import MPCCluster, mpc_dominating_set, mpc_kcenter
from repro.analysis.reports import format_table
from repro.baselines import gonzalez_kcenter, greedy_dominating_set
from repro.core.dominating_set import verify_dominating_set
from repro.workloads import random_geometric_graph_metric


def main() -> None:
    rng = np.random.default_rng(5)
    metric = random_geometric_graph_metric(600, radius=0.08, rng=rng)
    k = 8

    # --- k depots minimizing worst road distance ---------------------------
    cluster = MPCCluster(metric, num_machines=6, seed=5)
    res = mpc_kcenter(cluster, k=k, epsilon=0.2)
    _, gmm_r = gonzalez_kcenter(metric, k)
    print(
        format_table(
            [
                {
                    "algorithm": "MPC k-center (2+eps)",
                    "worst road distance": res.radius,
                    "rounds": res.rounds,
                },
                {
                    "algorithm": "sequential GMM (2-approx)",
                    "worst road distance": gmm_r,
                    "rounds": 0,
                },
            ],
            title=f"depot placement on a road network ({metric.n} intersections, k={k})",
        )
    )

    # --- dominating set: cover everything within service distance tau ------
    tau = 2.0 * res.radius / 3.0
    cluster2 = MPCCluster(metric, num_machines=6, seed=5)
    ds = mpc_dominating_set(cluster2, tau)
    verify_dominating_set(metric, ds.ids, tau)
    greedy = greedy_dominating_set(metric, tau)
    print()
    print(
        format_table(
            [
                {
                    "algorithm": "MPC MIS-based dominating set",
                    "stations": ds.size,
                    "certified ratio <=": ds.certified_ratio,
                    "rounds": ds.rounds,
                },
                {
                    "algorithm": "greedy set cover (sequential)",
                    "stations": int(greedy.size),
                    "certified ratio <=": greedy.size / max(1, ds.lower_bound),
                    "rounds": 0,
                },
            ],
            title=f"service stations covering every intersection within tau={tau:.3f}",
        )
    )
    print(f"\ncertified lower bound on the optimum: {ds.lower_bound} stations")


if __name__ == "__main__":
    main()
