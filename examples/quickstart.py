"""Quickstart: cluster a point set with the MPC (2+ε)-approximation
k-center algorithm and compare against the sequential optimum-factor
GMM baseline.

The one-call facade (``solve_kcenter``) assembles the metric, the
machine partition, and the execution backend internally; pass
``backend="process"`` to fan the per-machine work out to forked
workers (same results bit-for-bit, same seed).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EuclideanMetric, solve_kcenter
from repro.analysis.lower_bounds import kcenter_lower_bound
from repro.analysis.reports import format_table
from repro.baselines import gonzalez_kcenter
from repro.workloads import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(42)
    points, _ = gaussian_mixture(n=2000, dim=2, components=10, rng=rng)
    k = 10

    # --- the paper's algorithm on a simulated 8-machine MPC cluster -------
    result = solve_kcenter(points, k=k, eps=0.1, machines=8, seed=42)

    # --- sequential reference (2-approximation, sees all data at once) ----
    metric = EuclideanMetric(points)
    _, gmm_radius = gonzalez_kcenter(metric, k)

    lb = kcenter_lower_bound(metric, k)
    rows = [
        {
            "algorithm": "MPC k-center (2+eps)",
            "radius": result.radius,
            "ratio vs LB (<= true ratio bound)": result.radius / lb,
            "rounds": result.rounds,
            "max machine words": result.stats["max_machine_total_words"],
        },
        {
            "algorithm": "sequential GMM (2-approx)",
            "radius": gmm_radius,
            "ratio vs LB (<= true ratio bound)": gmm_radius / lb,
            "rounds": 0,
            "max machine words": 0,
        },
    ]
    print(format_table(rows, title=f"k-center, n={metric.n}, k={k}, m=8"))
    print(
        f"\ncertified optimum lower bound: {lb:.4f}"
        f"\ntheorem guarantee: radius <= 2(1+0.1) * r* = {2.2 * lb:.4f} (vs LB)"
    )
    assert result.radius <= 2.0 * (1.0 + 0.1) * gmm_radius + 1e-9, "2+eps bound violated"


if __name__ == "__main__":
    main()
