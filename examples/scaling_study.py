"""Scaling study: how rounds and per-machine communication behave as
the number of machines m grows (the paper: O(1) rounds and Õ(mk)
communication per machine for m = n^γ).

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import EuclideanMetric, MPCCluster, mpc_kcenter
from repro.analysis.reports import format_table
from repro.workloads import gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(3)
    n, k = 4096, 12
    points, _ = gaussian_mixture(n=n, dim=2, components=16, rng=rng)
    metric = EuclideanMetric(points)

    rows = []
    for m in (2, 4, 8, 16, 32):
        cluster = MPCCluster(metric, num_machines=m, seed=3)
        result = mpc_kcenter(cluster, k=k, epsilon=0.2)
        s = cluster.stats
        rows.append(
            {
                "machines m": m,
                "gamma (m=n^g)": math.log(m) / math.log(n),
                "radius": result.radius,
                "rounds": s.rounds,
                "max words/machine/round": s.max_machine_words,
                "max words/machine total": s.max_machine_total,
                "mk*ln(n) envelope": int(m * k * math.log(n)),
            }
        )
    print(format_table(rows, title=f"MPC k-center scaling, n={n}, k={k}, eps=0.2"))
    print(
        "\nexpected shape: radius flat (quality is m-independent); "
        "communication tracks the m*k*ln(n) envelope"
    )


if __name__ == "__main__":
    main()
