"""Diversified retrieval: pick k maximally spread items from a corpus.

The k-diversity objective (maximize the minimum pairwise distance) is
the classic "result diversification" primitive in information
retrieval: given feature embeddings of candidate documents, return k
results that are far apart from each other.  This example embeds a
synthetic topic-mixture corpus, runs the paper's (2+ε)-approximation
MPC algorithm, and compares against the 6-approximation composable
coreset of Indyk et al. that it supersedes.

Run:  python examples/diversified_retrieval.py
"""

from __future__ import annotations

import numpy as np

from repro import AngularMetric, MPCCluster, mpc_diversity
from repro.analysis.reports import format_table
from repro.baselines import gonzalez_diversity, indyk_diversity


def synth_corpus(n: int, topics: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """Unit-norm "document embeddings": topic directions + noise."""
    directions = rng.normal(size=(topics, dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    assignment = rng.integers(0, topics, size=n)
    emb = directions[assignment] + 0.15 * rng.normal(size=(n, dim))
    emb /= np.linalg.norm(emb, axis=1, keepdims=True)
    return emb


def main() -> None:
    rng = np.random.default_rng(7)
    corpus = synth_corpus(n=1500, topics=12, dim=16, rng=rng)
    metric = AngularMetric(corpus)  # angular distance is a true metric
    k = 12

    cluster = MPCCluster(metric, num_machines=6, seed=7)
    ours = mpc_diversity(cluster, k=k, epsilon=0.15)

    cluster_b = MPCCluster(metric, num_machines=6, seed=7)
    _, indyk_div = indyk_diversity(cluster_b, k)

    _, gmm_div = gonzalez_diversity(metric, k)

    rows = [
        {"algorithm": "MPC diversity (2+eps)", "min pairwise angle (rad)": ours.diversity},
        {"algorithm": "Indyk et al. coreset (6-approx)", "min pairwise angle (rad)": indyk_div},
        {"algorithm": "sequential GMM (2-approx)", "min pairwise angle (rad)": gmm_div},
    ]
    print(format_table(rows, title=f"diversified retrieval, n={metric.n}, k={k}"))
    print(f"\nMPC rounds used: {ours.rounds}")
    print("higher is better; the 2+eps algorithm should match or beat the 6-approx coreset")


if __name__ == "__main__":
    main()
