"""F2 — simulator scaling: wall-clock and oracle complexity vs n.

Series reproduced: the simulated MPC pipeline's cost (wall-clock and
distance-oracle evaluations) scales near-linearly in n at fixed m and k,
versus the sequential GMM baseline — evidence that the reproduction is
usable at the data scales the MPC model targets.  This is the only
experiment whose primary axis is *time*, so it uses pytest-benchmark's
timing machinery directly.
"""

from __future__ import annotations

import pytest

from repro.baselines.gonzalez import gonzalez_kcenter
from repro.core.kcenter import mpc_kcenter
from repro.metric.oracle import CountingOracle
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

K, M = 8, 8
SIZES = [256, 1024, 4096]


@pytest.mark.parametrize("n", SIZES)
def test_f2_mpc_kcenter_scaling(benchmark, n):
    wl = make_workload("gaussian", n, seed=0)
    oracle = CountingOracle(wl.metric)

    def run():
        oracle.reset()
        cluster = MPCCluster(oracle, M, seed=0)
        return mpc_kcenter(cluster, K, epsilon=0.2)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.radius > 0
    benchmark.extra_info["n"] = n
    benchmark.extra_info["oracle_evaluations"] = oracle.evaluations


@pytest.mark.parametrize("n", SIZES)
def test_f2_sequential_gmm_scaling(benchmark, n):
    wl = make_workload("gaussian", n, seed=0)
    oracle = CountingOracle(wl.metric)

    def run():
        oracle.reset()
        return gonzalez_kcenter(oracle, K)

    _, radius = benchmark.pedantic(run, rounds=2, iterations=1)
    assert radius > 0
    benchmark.extra_info["n"] = n
    benchmark.extra_info["oracle_evaluations"] = oracle.evaluations


def test_f2_oracle_complexity_near_linear(benchmark, show):
    """Oracle evaluations of the MPC pipeline grow sub-quadratically in n."""

    def run() -> list[dict]:
        rows = []
        for n in SIZES:
            wl = make_workload("gaussian", n, seed=0)
            oracle = CountingOracle(wl.metric)
            cluster = MPCCluster(oracle, M, seed=0)
            mpc_kcenter(cluster, K, epsilon=0.2)
            rows.append({"n": n, "oracle evals": oracle.evaluations,
                         "evals/n": oracle.evaluations / n})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.analysis.reports import format_table

    show(format_table(rows, title="F2 oracle evaluations vs n (MPC k-center)"))
    # 16x more points must cost far less than 256x more evaluations
    growth = rows[-1]["oracle evals"] / rows[0]["oracle evals"]
    assert growth < (SIZES[-1] / SIZES[0]) ** 1.7
