"""F1 — ε-sweep (Theorems 3, 17, 18).

Series reproduced: as ε shrinks, (a) the approximation guarantee
2(1+ε) / 3(1+ε) tightens and measured quality tracks it, and (b) the
threshold ladder grows like O(log 1/ε), so rounds grow logarithmically
— the exact trade-off the theorems price in.
"""

from __future__ import annotations

from repro.analysis.lower_bounds import kcenter_lower_bound
from repro.analysis.reports import format_table
from repro.analysis.theory import ladder_length
from repro.core.diversity import mpc_diversity
from repro.core.kcenter import mpc_kcenter
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

N, K, M = 1024, 8, 8
EPSILONS = [1.0, 0.5, 0.25, 0.1, 0.05]


def run_sweep() -> list[dict]:
    wl = make_workload("gaussian", N, seed=0)
    lb = kcenter_lower_bound(wl.metric, K)
    rows = []
    for eps in EPSILONS:
        cluster = MPCCluster(wl.metric, M, seed=0)
        kc = mpc_kcenter(cluster, K, epsilon=eps)
        cluster = MPCCluster(wl.metric, M, seed=0)
        dv = mpc_diversity(cluster, K, epsilon=eps)
        rows.append(
            {
                "epsilon": eps,
                "kcenter ratio_vs_LB": kc.radius / lb,
                "kcenter guarantee": 2 * (1 + eps),
                "kcenter rounds": kc.rounds,
                "diversity value": dv.diversity,
                "diversity rounds": dv.rounds,
                "ladder length O(log 1/eps)": ladder_length(eps),
            }
        )
    return rows


def test_f1_eps_sweep(benchmark, show):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    show(format_table(rows, title=f"F1 epsilon sweep (n={N}, k={K}, m={M})"))
    # quality never degrades as eps shrinks beyond the guarantee slack:
    # every measured ratio must sit under its own 2(1+eps) * (LB slack 2)
    for r in rows:
        assert r["kcenter ratio_vs_LB"] <= 2.0 * r["kcenter guarantee"] + 1e-9
    # the ladder length (and with it the probe count) grows as eps shrinks
    lengths = [r["ladder length O(log 1/eps)"] for r in rows]
    assert lengths == sorted(lengths)
    # diversity value is monotone non-decreasing as the ladder refines...
    # (not strictly guaranteed per-instance; assert the endpoints ordering)
    assert rows[-1]["diversity value"] >= 0.5 * rows[0]["diversity value"]
    benchmark.extra_info["rows"] = rows
