"""T2 — k-diversity approximation quality (Theorem 3).

Claims reproduced: the MPC (2+ε) algorithm achieves diversity ≥
div*/(2(1+ε)); its lines 1–3 side product is a 4-approximation; both
beat the Indyk et al. 6-approximation composable coreset the paper
supersedes.  Ratios are optimum/achieved (≥ 1, smaller is better),
measured against the GMM-based certified upper bound; on the small
instance the exact optimum is used.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import aggregate, run_trials
from repro.analysis.lower_bounds import diversity_upper_bound
from repro.analysis.reports import format_table
from repro.baselines.exact import exact_diversity
from repro.baselines.gonzalez import gonzalez_diversity
from repro.baselines.indyk import indyk_diversity
from repro.core.diversity import mpc_diversity
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

from conftest import SEEDS

N, K, M, EPS = 1024, 8, 8, 0.1
WORKLOADS = ["gaussian", "uniform", "anisotropic"]


def run_workload(workload: str) -> list[dict]:
    def trial(seed: int) -> dict:
        wl = make_workload(workload, N, seed=seed)
        ub = diversity_upper_bound(wl.metric, K)
        out = {}

        cluster = MPCCluster(wl.metric, M, seed=seed)
        res = mpc_diversity(cluster, K, epsilon=EPS)
        out["mpc_2eps"] = ub / res.diversity
        out["coreset_4"] = ub / res.coreset_value

        cluster = MPCCluster(wl.metric, M, seed=seed)
        _, d = indyk_diversity(cluster, K)
        out["indyk_6"] = ub / d

        _, d = gonzalez_diversity(wl.metric, K)
        out["gmm_seq_2"] = ub / d
        return out

    agg = aggregate(run_trials(trial, SEEDS))
    return [
        {
            "workload": workload,
            "algorithm": name,
            "UB/achieved(mean)": agg[key]["mean"],
            "UB/achieved(max)": agg[key]["max"],
            "guarantee": guar,
        }
        for name, key, guar in [
            ("MPC diversity (paper, 2+eps)", "mpc_2eps", 2 * (1 + EPS)),
            ("lines 1-3 coreset (paper, 4)", "coreset_4", 4.0),
            ("Indyk et al. coreset (6)", "indyk_6", 6.0),
            ("GMM sequential (2)", "gmm_seq_2", 2.0),
        ]
    ]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_t2_diversity_quality(benchmark, show, workload):
    rows = benchmark.pedantic(run_workload, args=(workload,), rounds=1, iterations=1)
    show(
        format_table(
            rows, title=f"T2 k-diversity quality — {workload} (n={N}, k={K}, m={M})"
        )
    )
    by_alg = {r["algorithm"]: r for r in rows}
    # the achieved diversity can never beat the certified upper bound
    for r in rows:
        assert r["UB/achieved(mean)"] >= 1.0 - 1e-9
    # the ladder output improves on (or matches) both coresets
    assert (
        by_alg["MPC diversity (paper, 2+eps)"]["UB/achieved(mean)"]
        <= by_alg["Indyk et al. coreset (6)"]["UB/achieved(mean)"] + 1e-9
    )
    benchmark.extra_info.update({r["algorithm"]: r["UB/achieved(mean)"] for r in rows})


def test_t2_exact_small_instance(benchmark, show):
    """Exact-optimum variant at n=18 where brute force is feasible."""

    def run() -> dict:
        rng = np.random.default_rng(7)
        metric = EuclideanMetric(rng.normal(size=(18, 2)))
        _, opt = exact_diversity(metric, 4)
        cluster = MPCCluster(metric, 3, seed=7)
        res = mpc_diversity(cluster, 4, epsilon=EPS)
        cluster2 = MPCCluster(metric, 3, seed=7)
        _, d_indyk = indyk_diversity(cluster2, 4)
        return {"opt": opt, "mpc": res.diversity, "indyk": d_indyk}

    vals = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        format_table(
            [
                {
                    "quantity": "optimum (exact)",
                    "value": vals["opt"],
                    "ratio": 1.0,
                },
                {
                    "quantity": "MPC 2+eps",
                    "value": vals["mpc"],
                    "ratio": vals["opt"] / vals["mpc"],
                },
                {
                    "quantity": "Indyk 6-approx",
                    "value": vals["indyk"],
                    "ratio": vals["opt"] / vals["indyk"],
                },
            ],
            title="T2b diversity vs exact optimum (n=18, k=4)",
        )
    )
    assert vals["opt"] / vals["mpc"] <= 2 * (1 + EPS) + 1e-9
