"""T6 — partition robustness.

The paper's guarantees are worst-case over the initial data partition
("the input set V is initially partitioned into m subsets", §2 — no
distributional assumption).  This experiment runs the full k-center
pipeline under benign through hostile partitioners, including the
adversarial one that co-locates whole ground-truth clusters on single
machines (the regime where per-machine GMM sees no global structure),
and checks quality stays inside the guarantee everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.core.kcenter import mpc_kcenter
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.partition import (
    adversarial_partition,
    block_partition,
    random_partition,
    skewed_partition,
)
from repro.workloads.clustered import separated_clusters

from conftest import SEEDS

N, K, M, EPS = 1024, 8, 8, 0.1


def run_experiment() -> list[dict]:
    rows = []
    partitioners = {
        "random": lambda n, m, labels, rng: random_partition(n, m, rng),
        "block": lambda n, m, labels, rng: block_partition(n, m, rng),
        "skewed": lambda n, m, labels, rng: skewed_partition(n, m, rng),
        "adversarial (cluster/machine)": lambda n, m, labels, rng: adversarial_partition(
            n, m, labels, rng
        ),
    }
    for name, maker in partitioners.items():
        ratios, comms, rounds = [], [], []
        for seed in SEEDS:
            rng = np.random.default_rng(seed)
            inst = separated_clusters(
                N, clusters=K, cluster_radius=1.0, separation=20.0, rng=rng
            )
            metric = EuclideanMetric(inst.points)
            parts = maker(N, M, inst.labels, rng)
            cluster = MPCCluster(metric, M, partition=parts, seed=seed)
            res = mpc_kcenter(cluster, K, epsilon=EPS)
            # the instance certifies r* <= cluster_radius = 1.0
            ratios.append(res.radius / inst.kcenter_upper_bound)
            comms.append(cluster.stats.max_machine_words)
            rounds.append(res.rounds)
        rows.append(
            {
                "partitioner": name,
                "radius/r*_UB (mean)": float(np.mean(ratios)),
                "radius/r*_UB (max)": float(np.max(ratios)),
                "guarantee 2(1+eps)": 2 * (1 + EPS),
                "max words/machine/round": int(np.max(comms)),
                "rounds (mean)": float(np.mean(rounds)),
            }
        )
    return rows


def test_t6_partition_robustness(benchmark, show):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        format_table(
            rows,
            title=f"T6 partition robustness — k-center on {K} separated clusters "
            f"(n={N}, m={M}, eps={EPS})",
        )
    )
    for r in rows:
        # hard theorem check: against the *certified* optimum upper bound
        assert r["radius/r*_UB (max)"] <= 2 * (1 + EPS) + 1e-9, r["partitioner"]
    benchmark.extra_info["rows"] = rows
