"""X1 — dominating set via k-bounded MIS (the paper's conclusion claim).

Claim reproduced: "we have been able to use the k-bounded MIS
successfully to obtain ... a constant-factor approximation to the
minimum dominating set in graphs with bounded neighborhood
independence, ... in constant number of MPC rounds."

Measured: the MIS-based MPC dominating set versus the sequential greedy
set-cover baseline and a certified packing lower bound, on geometric
threshold graphs (neighborhood independence ρ ≤ 6 in the plane).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.baselines.greedy_dominating import greedy_dominating_set
from repro.core.dominating_set import (
    mpc_dominating_set,
    neighborhood_independence,
    verify_dominating_set,
)
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

from conftest import SEEDS

N, M = 1000, 4
TAUS = [0.4, 0.8, 1.6]


def run_experiment() -> list[dict]:
    rows = []
    for tau in TAUS:
        sizes, greedy_sizes, lbs, rounds = [], [], [], []
        rho = 0
        for seed in SEEDS:
            wl = make_workload("uniform", N, seed=seed)
            cluster = MPCCluster(wl.metric, M, seed=seed)
            ds = mpc_dominating_set(cluster, tau)
            verify_dominating_set(wl.metric, ds.ids, tau)
            sizes.append(ds.size)
            lbs.append(ds.lower_bound)
            rounds.append(ds.rounds)
            greedy_sizes.append(int(greedy_dominating_set(wl.metric, tau).size))
            rho = max(rho, neighborhood_independence(wl.metric, tau, sample=40))
        rows.append(
            {
                "tau": tau,
                "MPC DS size (mean)": float(np.mean(sizes)),
                "greedy DS size (mean)": float(np.mean(greedy_sizes)),
                "packing LB (mean)": float(np.mean(lbs)),
                "certified ratio (max)": max(
                    s / max(1, lb) for s, lb in zip(sizes, lbs)
                ),
                "rho (neighborhood indep.)": rho,
                "rounds (mean)": float(np.mean(rounds)),
            }
        )
    return rows


def test_x1_dominating_set(benchmark, show):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        format_table(
            rows,
            title=f"X1 dominating set via k-bounded MIS (n={N}, m={M}, uniform plane)",
        )
    )
    for r in rows:
        # constant factor: the MIS-based DS stays within rho times the
        # greedy baseline (greedy >= OPT), and rho is a plane constant
        assert (
            r["MPC DS size (mean)"]
            <= r["rho (neighborhood indep.)"] * r["greedy DS size (mean)"] + 1e-9
        )
        assert r["rho (neighborhood indep.)"] <= 6
        # constant rounds at this scale
        assert r["rounds (mean)"] < 120
    benchmark.extra_info["rows"] = rows
