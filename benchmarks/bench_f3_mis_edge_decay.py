"""F3 — the Theorem 13 mechanism: active-edge decay per MIS round.

Series reproduced: Theorem 13 proves the edge count of the active graph
drops by a factor ≥ √m/5 per outer round w.h.p., which is what makes
the round count O(1/γ).  We instrument Algorithm 4 on dense geometric
threshold graphs and report the per-round decay factors.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.reports import format_table
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

N = 1500
MACHINES = [4, 16]


def run_decay(m: int) -> list[dict]:
    wl = make_workload("uniform", N, seed=0)
    cluster = MPCCluster(wl.metric, m, seed=0)
    # huge k forces the loop to run until the graph is exhausted,
    # exposing the full decay trace
    res = mpc_k_bounded_mis(cluster, tau=1.2, k=10**6, instrument=True)
    trace = [e for e in res.edge_trace]
    rows = []
    for i in range(len(trace) - 1):
        if trace[i] == 0:
            break
        decay = trace[i] / max(trace[i + 1], 1)
        rows.append(
            {
                "machines": m,
                "round": i + 1,
                "edges before": trace[i],
                "edges after": trace[i + 1],
                "decay factor": decay,
                "theorem floor sqrt(m)/5": math.sqrt(m) / 5.0,
            }
        )
    return rows


@pytest.mark.parametrize("m", MACHINES)
def test_f3_edge_decay(benchmark, show, m):
    rows = benchmark.pedantic(run_decay, args=(m,), rounds=1, iterations=1)
    show(format_table(rows, title=f"F3 edge decay per MIS round (n={N}, m={m})"))
    assert rows, "instrumentation must record at least one decaying round"
    # geometric decay overall: the whole trace collapses within few rounds
    assert len(rows) <= 25
    # mean decay beats the theorem floor (which holds w.h.p. per round)
    decays = [r["decay factor"] for r in rows]
    geo_mean = math.exp(sum(math.log(d) for d in decays) / len(decays))
    assert geo_mean >= math.sqrt(m) / 5.0
    benchmark.extra_info["decays"] = decays
