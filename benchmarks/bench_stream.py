"""S3 — warm-start re-solve vs cold solve across an append chain.

Builds a seeded trajectory arrival stream (``repro.workloads.
trajectory_stream``), grows an append chain one batch at a time, and
re-solves every chained version twice: **cold** (from scratch, the
only option before incremental datasets) and **warm** (reusing the
previous version's centers as GMM state, what a ``warm_start`` job
does).  For each version the artifact records oracle calls /
evaluations, wall-clock, the drift report, and — because the MIS
ladder dominates total evaluations at small n — the *coreset-stage*
evaluation counts, where the composable-coreset warm start saves
≈ k·base_n distance evaluations per machine sweep.

Run standalone (CI runs it at toy scale)::

    python benchmarks/bench_stream.py                     # full, n=4000
    python benchmarks/bench_stream.py --n 400 --out results/smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.reports import format_table  # noqa: E402
from repro.api import build_cluster  # noqa: E402
from repro.core import WarmStart, mpc_kcenter, mpc_kcenter_coreset  # noqa: E402
from repro.metric.euclidean import EuclideanMetric  # noqa: E402
from repro.metric.oracle import CountingOracle  # noqa: E402
from repro.service.runner import drift_report  # noqa: E402
from repro.workloads.trajectories import trajectory_stream  # noqa: E402


def _solve(points, *, k, machines, seed, eps, warm_start=None):
    """One measured solver run → (result, ledger row)."""
    oracle = CountingOracle(EuclideanMetric(points))
    cluster = build_cluster(metric=oracle, machines=machines, seed=seed)
    t0 = time.perf_counter()
    res = mpc_kcenter(cluster, k, epsilon=eps, warm_start=warm_start)
    wall = time.perf_counter() - t0
    return res, {
        "wall_s": wall,
        "oracle_calls": int(oracle.calls),
        "oracle_evaluations": int(oracle.evaluations),
        "radius": float(res.radius),
        "centers": sorted(int(c) for c in res.centers),
    }


def _coreset_evals(points, *, k, machines, seed, warm_start=None) -> int:
    """Oracle evaluations of the two-round coreset stage alone."""
    oracle = CountingOracle(EuclideanMetric(points))
    cluster = build_cluster(metric=oracle, machines=machines, seed=seed)
    mpc_kcenter_coreset(cluster, k, warm_start=warm_start)
    return int(oracle.evaluations)


def run(n: int, appends: int, k: int, machines: int, seed: int,
        eps: float) -> dict:
    batches = trajectory_stream(
        n, batches=appends + 1, rng=np.random.default_rng(seed)
    )
    versions = []
    prev_warm_res = None
    prev_n = 0
    for v in range(appends + 1):
        points = np.vstack(batches[: v + 1])
        row: dict = {"version": v, "n": len(points)}
        cold_res, cold = _solve(points, k=k, machines=machines, seed=seed,
                                eps=eps)
        row["cold"] = cold
        if v > 0:
            ws = WarmStart(
                base_n=prev_n,
                centers=np.asarray(prev_warm_res.centers, dtype=np.int64),
                objective=float(prev_warm_res.radius),
            )
            warm_res, warm = _solve(points, k=k, machines=machines,
                                    seed=seed, eps=eps, warm_start=ws)
            row["warm"] = warm
            row["drift"] = drift_report(
                warm_res.centers,
                float(warm_res.radius),
                parent_centers=ws.centers,
                parent_objective=ws.objective,
                appended=len(points) - prev_n,
            )
            row["savings"] = {
                "evaluations": cold["oracle_evaluations"]
                - warm["oracle_evaluations"],
                "evaluations_pct": 100.0
                * (1.0 - warm["oracle_evaluations"] / cold["oracle_evaluations"]),
                "coreset_evaluations_cold": _coreset_evals(
                    points, k=k, machines=machines, seed=seed
                ),
                "coreset_evaluations_warm": _coreset_evals(
                    points, k=k, machines=machines, seed=seed, warm_start=ws
                ),
            }
            prev_warm_res = warm_res
        else:
            prev_warm_res = cold_res
        prev_n = len(points)
        versions.append(row)
    return {
        "bench": "stream_warm_vs_cold",
        "params": {"n": n, "appends": appends, "k": k,
                   "machines": machines, "seed": seed, "epsilon": eps},
        "versions": versions,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=4000)
    ap.add_argument("--appends", type=int, default=3)
    ap.add_argument("--k", type=int, default=8)
    ap.add_argument("--machines", type=int, default=8)
    ap.add_argument("--epsilon", type=float, default=0.2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument(
        "--out", default=None,
        help="JSON artifact path (default: benchmarks/results/BENCH_stream.json)",
    )
    args = ap.parse_args(argv)

    report = run(args.n, args.appends, args.k, args.machines, args.seed,
                 args.epsilon)

    rows = []
    for ver in report["versions"]:
        if "warm" not in ver:
            rows.append({
                "version": ver["version"], "n": ver["n"], "mode": "cold",
                "evals": ver["cold"]["oracle_evaluations"],
                "wall_s": f"{ver['cold']['wall_s']:.3f}",
                "saved": "-", "coreset_saved": "-", "drift": "-",
            })
            continue
        sav = ver["savings"]
        coreset_pct = 100.0 * (
            1.0
            - sav["coreset_evaluations_warm"] / sav["coreset_evaluations_cold"]
        )
        rows.append({
            "version": ver["version"], "n": ver["n"], "mode": "warm",
            "evals": ver["warm"]["oracle_evaluations"],
            "wall_s": f"{ver['warm']['wall_s']:.3f}",
            "saved": f"{sav['evaluations_pct']:.1f}%",
            "coreset_saved": f"{coreset_pct:.1f}%",
            "drift": f"{ver['drift']['drift_ratio']:.4f}",
        })
    print(format_table(rows, title="S3 — warm-start vs cold re-solve"))

    for ver in report["versions"][1:]:
        assert (
            ver["warm"]["oracle_evaluations"]
            < ver["cold"]["oracle_evaluations"]
        ), f"warm must beat cold at version {ver['version']}"

    out = args.out or str(
        Path(__file__).resolve().parent / "results" / "BENCH_stream.json"
    )
    Path(out).parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
