"""F5 — threaded local-compute executor (repro-infrastructure series).

Not a paper claim: this measures the simulator itself.  Per-machine
local work inside an MPC round is embarrassingly parallel, and the
numpy kernels release the GIL, so a thread pool can overlap them.  The
bench verifies the threaded executor is a bit-identical drop-in and
reports the wall-clock effect.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.reports import format_table
from repro.core.kcenter import mpc_kcenter
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import SerialExecutor, ThreadedExecutor
from repro.workloads.registry import make_workload

N, K, M = 4096, 8, 16


def run_comparison() -> list[dict]:
    wl = make_workload("gaussian", N, seed=0)
    rows = []
    results = {}
    for name, executor in [
        ("serial", SerialExecutor()),
        ("threaded(8)", ThreadedExecutor(max_workers=8)),
    ]:
        cluster = MPCCluster(wl.metric, M, seed=0, executor=executor)
        t0 = time.perf_counter()
        res = mpc_kcenter(cluster, K, epsilon=0.2)
        dt = time.perf_counter() - t0
        results[name] = res
        rows.append(
            {
                "executor": name,
                "workers": executor.effective_workers(M),
                "cpu_count": os.cpu_count(),
                "wall-clock (s)": dt,
                "radius": res.radius,
                "rounds": res.rounds,
            }
        )
    # drop-in check: identical outputs
    assert results["serial"].radius == results["threaded(8)"].radius
    assert np.array_equal(
        np.sort(results["serial"].centers), np.sort(results["threaded(8)"].centers)
    )
    return rows


def test_f5_parallel_executor(benchmark, show):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    show(
        format_table(
            rows, title=f"F5 executor comparison (n={N}, k={K}, m={M})", precision=3
        )
    )
    # identical quality is asserted inside; timing is informational
    assert all(r["radius"] > 0 for r in rows)
    benchmark.extra_info["rows"] = [
        {k: v for k, v in r.items()} for r in rows
    ]
