"""T8 — the price of 2+ε: quality vs communication vs rounds.

The paper improves the factor from 4 to 2+ε at the cost of more rounds
(the MIS ladder) and more communication (degree approximation).  This
experiment quantifies that trade for a downstream user deciding between
the two-round 4-approximation coreset and the full ladder: radius,
total words, per-machine peak, and rounds, side by side.
"""

from __future__ import annotations

from repro.analysis.experiments import aggregate, run_trials
from repro.analysis.lower_bounds import kcenter_lower_bound
from repro.analysis.reports import format_table
from repro.baselines.malkomes import malkomes_kcenter
from repro.core.kcenter import mpc_kcenter
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

from conftest import SEEDS

N, K, M = 2048, 8, 8
EPSILONS = [0.5, 0.1]


def run_experiment() -> list[dict]:
    rows = []

    def malkomes_trial(seed: int) -> dict:
        wl = make_workload("gaussian", N, seed=seed)
        lb = kcenter_lower_bound(wl.metric, K)
        cluster = MPCCluster(wl.metric, M, seed=seed)
        _, r = malkomes_kcenter(cluster, K)
        return {
            "ratio": r / lb,
            "rounds": cluster.stats.rounds,
            "total_words": cluster.stats.total_words,
            "peak": cluster.stats.max_machine_words,
        }

    agg = aggregate(run_trials(malkomes_trial, SEEDS))
    rows.append(
        {
            "algorithm": "Malkomes coreset (4-approx)",
            "ratio_vs_LB": agg["ratio"]["mean"],
            "rounds": agg["rounds"]["mean"],
            "total words": int(agg["total_words"]["mean"]),
            "peak words/machine/round": int(agg["peak"]["mean"]),
        }
    )

    for eps in EPSILONS:

        def ladder_trial(seed: int, eps=eps) -> dict:
            wl = make_workload("gaussian", N, seed=seed)
            lb = kcenter_lower_bound(wl.metric, K)
            cluster = MPCCluster(wl.metric, M, seed=seed)
            res = mpc_kcenter(cluster, K, epsilon=eps)
            return {
                "ratio": res.radius / lb,
                "rounds": cluster.stats.rounds,
                "total_words": cluster.stats.total_words,
                "peak": cluster.stats.max_machine_words,
            }

        agg = aggregate(run_trials(ladder_trial, SEEDS))
        rows.append(
            {
                "algorithm": f"paper ladder (2+eps, eps={eps})",
                "ratio_vs_LB": agg["ratio"]["mean"],
                "rounds": agg["rounds"]["mean"],
                "total words": int(agg["total_words"]["mean"]),
                "peak words/machine/round": int(agg["peak"]["mean"]),
            }
        )
    return rows


def test_t8_price_of_approximation(benchmark, show):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        format_table(
            rows,
            title=f"T8 price of 2+eps — quality vs cost (n={N}, k={K}, m={M}, gaussian)",
        )
    )
    by = {r["algorithm"]: r for r in rows}
    coreset = by["Malkomes coreset (4-approx)"]
    tight = by[f"paper ladder (2+eps, eps={EPSILONS[-1]})"]
    # the ladder buys strictly better (or equal) quality...
    assert tight["ratio_vs_LB"] <= coreset["ratio_vs_LB"] + 1e-9
    # ...and pays in rounds, exactly as the theory prices it
    assert tight["rounds"] > coreset["rounds"]
    benchmark.extra_info["rows"] = rows
