"""Service throughput bench — concurrent jobs through the HTTP stack.

Not a paper claim: this measures the job service end to end — HTTP
parsing, queueing, the worker pool, the solver, and the result cache —
under a concurrent :class:`~repro.service.client.ServiceClient` load.
Two phases over the same workload dataset:

* **cold** — every job has a distinct seed, so each one runs the
  solver; this is queue + solver throughput.
* **hot** — the cold specs are resubmitted verbatim, so every job is a
  cache hit served at submission time; this is the HTTP + cache floor.

Per phase it reports p50/p95 client-observed job latency and jobs/sec.
The committed artifact (``benchmarks/results/BENCH_service.json``) is
the perf baseline CI compares against: rerun with ``--baseline`` to
fail (exit 1) when cold-phase throughput regresses by more than
``--tolerance`` (default 30%).

Run standalone (CI runs it at toy scale)::

    python benchmarks/bench_service_throughput.py                  # full
    python benchmarks/bench_service_throughput.py --jobs 8 --n 400 \
        --baseline benchmarks/results/BENCH_service.json

Regenerate the committed baseline (see docs/performance.md)::

    python benchmarks/bench_service_throughput.py \
        --out benchmarks/results/BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.reports import format_table  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.http import run_in_thread, serve  # noqa: E402


def _git_sha() -> str:
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[idx])


def run_phase(client: ServiceClient, specs: list, concurrency: int,
              timeout: float) -> dict:
    """Submit every spec through ``concurrency`` client threads.

    Latency is client-observed: submit → terminal state (a cache hit is
    terminal at submission, so the hot phase measures one round trip).
    """

    def one(spec: dict) -> float:
        t0 = time.perf_counter()
        job = client.submit(**spec)
        if job["state"] not in ("done", "failed", "cancelled"):
            job = client.wait(job["id"], timeout=timeout)
        latency = time.perf_counter() - t0
        if job["state"] != "done":
            raise RuntimeError(f"job ended {job['state']}: {job.get('error')}")
        return latency

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        latencies = sorted(pool.map(one, specs))
    wall = time.perf_counter() - t0
    return {
        "jobs": len(specs),
        "wall_s": wall,
        "jobs_per_s": len(specs) / wall if wall > 0 else 0.0,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p95_s": _percentile(latencies, 0.95),
    }


def compare_to_baseline(artifact: dict, baseline_path: Path,
                        tolerance: float) -> int:
    """0 if cold throughput is within ``tolerance`` of the baseline."""
    baseline = json.loads(baseline_path.read_text())
    base_rate = baseline["phases"]["cold"]["jobs_per_s"]
    new_rate = artifact["phases"]["cold"]["jobs_per_s"]
    floor = base_rate * (1.0 - tolerance)
    verdict = "OK" if new_rate >= floor else "REGRESSION"
    print(
        f"perf check vs {baseline_path.name} "
        f"(baseline sha {baseline['meta'].get('git_sha', '?')[:12]}): "
        f"cold {new_rate:.2f} jobs/s vs baseline {base_rate:.2f} "
        f"(floor {floor:.2f} at tolerance {tolerance:.0%}) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000, help="dataset size")
    ap.add_argument("--k", type=int, default=8)
    ap.add_argument("--epsilon", type=float, default=0.2)
    ap.add_argument("--machines", type=int, default=4)
    ap.add_argument("--jobs", type=int, default=24,
                    help="jobs per phase (distinct seeds in the cold phase)")
    ap.add_argument("--concurrency", type=int, default=8,
                    help="concurrent client threads")
    ap.add_argument("--workers", type=int, default=2,
                    help="service worker pool size")
    ap.add_argument("--timeout", type=float, default=300.0)
    ap.add_argument(
        "--out", default=None,
        help="JSON artifact path (default: benchmarks/results/BENCH_service.json)",
    )
    ap.add_argument(
        "--baseline", default=None,
        help="committed artifact to compare against; exits 1 on regression",
    )
    ap.add_argument("--tolerance", type=float, default=0.3,
                    help="allowed cold-throughput drop vs the baseline")
    args = ap.parse_args(argv)

    server = serve(port=0, workers=args.workers, backend="serial",
                   queue_limit=max(64, 2 * args.jobs),
                   max_history=max(1024, 4 * args.jobs))
    run_in_thread(server)
    try:
        client = ServiceClient(server.url, timeout=30.0)
        ds = client.register_workload("gaussian", args.n, seed=0)
        specs = [
            dict(algorithm="kcenter", dataset=ds["id"], k=args.k,
                 eps=args.epsilon, machines=args.machines, seed=seed)
            for seed in range(args.jobs)
        ]
        cold = run_phase(client, specs, args.concurrency, args.timeout)
        hot = run_phase(client, specs, args.concurrency, args.timeout)
        stats = client.stats()
    finally:
        server.shutdown_service()

    cache = stats["cache"]
    assert cache["hits_total"] >= args.jobs, (
        f"hot phase should be cache-served, saw {cache['hits_total']} hits"
    )

    rows = [dict(phase=name, **phase) for name, phase in
            (("cold", cold), ("hot", hot))]
    print(
        format_table(
            [
                {
                    "phase": r["phase"],
                    "jobs": r["jobs"],
                    "wall-clock (s)": r["wall_s"],
                    "jobs/s": r["jobs_per_s"],
                    "p50 latency (s)": r["latency_p50_s"],
                    "p95 latency (s)": r["latency_p95_s"],
                }
                for r in rows
            ],
            title=(
                f"service throughput — n={args.n}, k={args.k}, "
                f"jobs={args.jobs}, concurrency={args.concurrency}, "
                f"workers={args.workers}, cpus={os.cpu_count()}"
            ),
            precision=3,
        )
    )
    print(f"\ncache after both phases: {cache['hits_total']} hits / "
          f"{cache['misses_total']} misses "
          f"(hit ratio {cache['hit_ratio']:.2f})")

    artifact = {
        "meta": {
            "bench": "bench_service_throughput",
            "n": args.n,
            "k": args.k,
            "epsilon": args.epsilon,
            "machines": args.machines,
            "jobs": args.jobs,
            "concurrency": args.concurrency,
            "workers": args.workers,
            # the pool size the service actually ran with (worker threads
            # are the unit of job parallelism, not cpu cores)
            "effective_workers": stats["workers"],
            "cpu_count": os.cpu_count(),
            "workers_env": os.environ.get("REPRO_WORKERS") or None,
            "platform": sys.platform,
            "python": sys.version.split()[0],
            "git_sha": _git_sha(),
        },
        "phases": {"cold": cold, "hot": hot},
        "cache": cache,
    }
    out = Path(
        args.out
        or Path(__file__).resolve().parent / "results" / "BENCH_service.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {out}")

    if args.baseline:
        return compare_to_baseline(artifact, Path(args.baseline), args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
