"""Service throughput bench — concurrent jobs through the HTTP stack.

Not a paper claim: this measures the job service end to end — HTTP
parsing, queueing, the worker pool, the solver, and the result cache —
under a concurrent :class:`~repro.service.client.ServiceClient` load.
Two phases over the same workload dataset:

* **cold** — every job has a distinct seed, so each one runs the
  solver; this is queue + solver throughput.
* **hot** — the cold specs are resubmitted verbatim, so every job is a
  cache hit served at submission time; this is the HTTP + cache floor.

Per phase it reports p50/p95 client-observed job latency and jobs/sec.
The committed artifact (``benchmarks/results/BENCH_service.json``) is
the perf baseline CI compares against: rerun with ``--baseline`` to
fail (exit 1) when cold-phase throughput regresses by more than
``--tolerance`` (default 30%).

``--sweep`` adds an **analysis sweep** section: one sweep grid is
posted to ``/v1/analyses`` cold (every cell runs the solver), then
resubmitted verbatim (every cell is a cache hit and the analysis
finalizes at submission); the artifact's ``"sweep"`` block reports
cells/sec for both passes plus the cache-dedup ratio, and the bench
fails if the two reports are not byte-identical.

``--scale 1,2`` adds a third section: a **multi-process scaling
curve**.  For each point the bench starts one ``--role frontend``
server on a fresh SQLite state directory, spawns that many
``repro serve --role worker`` *processes* against the same directory,
and replays the cold workload through the shared queue.  This is the
deployment shape ``docs/persistence.md`` describes, measured; the
curve lands under ``"scaling"`` in the artifact (informational — the
regression gate only reads the in-process cold phase).

Run standalone (CI runs it at toy scale)::

    python benchmarks/bench_service_throughput.py                  # full
    python benchmarks/bench_service_throughput.py --jobs 8 --n 400 \
        --baseline benchmarks/results/BENCH_service.json

Regenerate the committed baseline (see docs/performance.md)::

    python benchmarks/bench_service_throughput.py --scale 1,2 --sweep \
        --out benchmarks/results/BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.reports import format_table  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.http import run_in_thread, serve  # noqa: E402


def _git_sha() -> str:
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[idx])


def run_phase(client: ServiceClient, specs: list, concurrency: int,
              timeout: float) -> dict:
    """Submit every spec through ``concurrency`` client threads.

    Latency is client-observed: submit → terminal state (a cache hit is
    terminal at submission, so the hot phase measures one round trip).
    """

    def one(spec: dict) -> float:
        t0 = time.perf_counter()
        job = client.submit(**spec)
        if job["state"] not in ("done", "failed", "cancelled"):
            job = client.wait(job["id"], timeout=timeout)
        latency = time.perf_counter() - t0
        if job["state"] != "done":
            raise RuntimeError(f"job ended {job['state']}: {job.get('error')}")
        return latency

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        latencies = sorted(pool.map(one, specs))
    wall = time.perf_counter() - t0
    return {
        "jobs": len(specs),
        "wall_s": wall,
        "jobs_per_s": len(specs) / wall if wall > 0 else 0.0,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p95_s": _percentile(latencies, 0.95),
    }


def run_sweep_bench(client: ServiceClient, dataset_id: str,
                    args: argparse.Namespace) -> dict:
    """One analysis sweep, cold then resubmitted: cells/sec + cache dedup.

    The cold pass fans the grid out through the worker pool (every cell
    is a distinct cache key, chosen not to collide with the job phases);
    the hot pass resubmits the identical spec, so every cell is served
    from the result cache and the analysis finalizes at submission.  The
    dedup ratio is the fraction of all submitted cells answered by the
    cache — 0.5 here, by construction, and the two reports must be
    byte-identical.
    """
    spec = dict(
        datasets=[dataset_id],
        solvers=["kcenter", "gonzalez", "malkomes"],
        ks=[args.k],
        epss=[args.epsilon],
        seeds=[777, 778],
        machines=args.machines,
        name="bench-sweep",
    )
    before = client.stats()["cache"]

    t0 = time.perf_counter()
    record = client.submit_analysis(**spec)
    done = client.wait_analysis(record["id"], timeout=args.timeout)
    cold_wall = time.perf_counter() - t0
    if done["state"] != "done":
        raise RuntimeError(f"cold sweep ended {done['state']}: {done.get('error')}")
    cells = int(record["cells"])
    report = client.analysis_report(record["id"])

    t0 = time.perf_counter()
    again = client.submit_analysis(**spec)
    done2 = client.wait_analysis(again["id"], timeout=args.timeout)
    hot_wall = time.perf_counter() - t0
    if done2["state"] != "done":
        raise RuntimeError(f"hot sweep ended {done2['state']}: {done2.get('error')}")
    report2 = client.analysis_report(again["id"])
    identical = json.dumps(report, sort_keys=True) == json.dumps(report2, sort_keys=True)
    if not identical:
        raise RuntimeError("resubmitted sweep report is not byte-identical")

    after = client.stats()["cache"]
    hits = after["hits_total"] - before["hits_total"]
    misses = after["misses_total"] - before["misses_total"]
    submitted = hits + misses
    return {
        "cells": cells,
        "cold": {"wall_s": cold_wall,
                 "cells_per_s": cells / cold_wall if cold_wall > 0 else 0.0},
        "hot": {"wall_s": hot_wall,
                "cells_per_s": cells / hot_wall if hot_wall > 0 else 0.0},
        "cache_dedup_ratio": hits / submitted if submitted else 0.0,
        "reports_identical": identical,
    }


def _spawn_worker(state_dir: str, backend: str) -> subprocess.Popen:
    """One ``repro serve --role worker`` process on the shared state dir."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--role", "worker", "--state-dir", state_dir,
            "--workers", "1", "--backend", backend,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_scale_point(worker_procs: int, args: argparse.Namespace,
                    seed_base: int) -> dict:
    """Cold throughput with 1 frontend + ``worker_procs`` worker processes.

    A fresh state directory per point keeps the shared result cache from
    serving one point's jobs to the next; ``seed_base`` keeps specs
    distinct across points anyway, so every job really runs the solver.
    """
    with tempfile.TemporaryDirectory(prefix="bench-scale-") as state_dir:
        server = serve(
            port=0, workers=0, backend=args.backend, role="frontend",
            state_dir=state_dir, queue_limit=max(64, 2 * args.jobs),
            max_history=max(1024, 4 * args.jobs),
        )
        run_in_thread(server)
        workers = [_spawn_worker(state_dir, args.backend)
                   for _ in range(worker_procs)]
        try:
            client = ServiceClient(server.url, timeout=30.0)
            ds = client.register_workload("gaussian", args.n, seed=0)
            # warmup: one job per worker, outside the timed window, so
            # interpreter start-up does not pollute the curve
            warm = [
                client.submit(algorithm="kcenter", dataset=ds["id"],
                              k=args.k, eps=args.epsilon,
                              machines=args.machines,
                              seed=seed_base + 9000 + i)
                for i in range(max(2, worker_procs))
            ]
            for job in warm:
                client.wait(job["id"], timeout=args.timeout)
            specs = [
                dict(algorithm="kcenter", dataset=ds["id"], k=args.k,
                     eps=args.epsilon, machines=args.machines,
                     seed=seed_base + i)
                for i in range(args.jobs)
            ]
            phase = run_phase(client, specs, args.concurrency, args.timeout)
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                proc.wait(timeout=30)
            server.shutdown_service()
    return {"worker_procs": worker_procs, **phase}


def compare_to_baseline(artifact: dict, baseline_path: Path,
                        tolerance: float) -> int:
    """0 if cold throughput is within ``tolerance`` of the baseline."""
    baseline = json.loads(baseline_path.read_text())
    base_rate = baseline["phases"]["cold"]["jobs_per_s"]
    new_rate = artifact["phases"]["cold"]["jobs_per_s"]
    floor = base_rate * (1.0 - tolerance)
    verdict = "OK" if new_rate >= floor else "REGRESSION"
    print(
        f"perf check vs {baseline_path.name} "
        f"(baseline sha {baseline['meta'].get('git_sha', '?')[:12]}): "
        f"cold {new_rate:.2f} jobs/s vs baseline {base_rate:.2f} "
        f"(floor {floor:.2f} at tolerance {tolerance:.0%}) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000, help="dataset size")
    ap.add_argument("--k", type=int, default=8)
    ap.add_argument("--epsilon", type=float, default=0.2)
    ap.add_argument("--machines", type=int, default=4)
    ap.add_argument("--jobs", type=int, default=24,
                    help="jobs per phase (distinct seeds in the cold phase)")
    ap.add_argument("--concurrency", type=int, default=8,
                    help="concurrent client threads")
    ap.add_argument("--workers", type=int, default=2,
                    help="service worker pool size")
    ap.add_argument("--backend", default="serial",
                    help="execution backend for every measured server")
    ap.add_argument(
        "--sweep", action="store_true",
        help="also measure an analysis sweep (POST /v1/analyses): cold "
        "cells/sec, cache-served cells/sec, and the cache-dedup ratio",
    )
    ap.add_argument(
        "--scale", default=None, metavar="N,N,...",
        help="also measure a multi-process scaling curve: for each N, "
        "1 frontend + N worker processes over a shared SQLite state dir",
    )
    ap.add_argument("--timeout", type=float, default=300.0)
    ap.add_argument(
        "--out", default=None,
        help="JSON artifact path (default: benchmarks/results/BENCH_service.json)",
    )
    ap.add_argument(
        "--baseline", default=None,
        help="committed artifact to compare against; exits 1 on regression",
    )
    ap.add_argument("--tolerance", type=float, default=0.3,
                    help="allowed cold-throughput drop vs the baseline")
    args = ap.parse_args(argv)

    server = serve(port=0, workers=args.workers, backend=args.backend,
                   queue_limit=max(64, 2 * args.jobs),
                   max_history=max(1024, 4 * args.jobs))
    run_in_thread(server)
    try:
        client = ServiceClient(server.url, timeout=30.0)
        ds = client.register_workload("gaussian", args.n, seed=0)
        specs = [
            dict(algorithm="kcenter", dataset=ds["id"], k=args.k,
                 eps=args.epsilon, machines=args.machines, seed=seed)
            for seed in range(args.jobs)
        ]
        cold = run_phase(client, specs, args.concurrency, args.timeout)
        hot = run_phase(client, specs, args.concurrency, args.timeout)
        stats = client.stats()
        # the sweep pass reuses the same server but tracks its own cache
        # deltas, so it runs after the job-phase stats snapshot
        sweep = run_sweep_bench(client, ds["id"], args) if args.sweep else None
    finally:
        server.shutdown_service()

    cache = stats["cache"]
    assert cache["hits_total"] >= args.jobs, (
        f"hot phase should be cache-served, saw {cache['hits_total']} hits"
    )

    rows = [dict(phase=name, **phase) for name, phase in
            (("cold", cold), ("hot", hot))]
    print(
        format_table(
            [
                {
                    "phase": r["phase"],
                    "jobs": r["jobs"],
                    "wall-clock (s)": r["wall_s"],
                    "jobs/s": r["jobs_per_s"],
                    "p50 latency (s)": r["latency_p50_s"],
                    "p95 latency (s)": r["latency_p95_s"],
                }
                for r in rows
            ],
            title=(
                f"service throughput — n={args.n}, k={args.k}, "
                f"jobs={args.jobs}, concurrency={args.concurrency}, "
                f"workers={args.workers}, cpus={os.cpu_count()}"
            ),
            precision=3,
        )
    )
    print(f"\ncache after both phases: {cache['hits_total']} hits / "
          f"{cache['misses_total']} misses "
          f"(hit ratio {cache['hit_ratio']:.2f})")

    if sweep is not None:
        print(
            format_table(
                [
                    {
                        "pass": name,
                        "cells": sweep["cells"],
                        "wall-clock (s)": sweep[name]["wall_s"],
                        "cells/s": sweep[name]["cells_per_s"],
                    }
                    for name in ("cold", "hot")
                ],
                title="analysis sweep — one grid cold, then cache-served",
                precision=3,
            )
        )
        print(f"sweep cache-dedup ratio: {sweep['cache_dedup_ratio']:.2f} "
              f"(reports byte-identical: {sweep['reports_identical']})")

    scaling = []
    if args.scale:
        counts = [int(tok) for tok in args.scale.split(",") if tok.strip()]
        for i, count in enumerate(counts):
            scaling.append(run_scale_point(count, args, seed_base=(i + 1) * 100000))
        print(
            format_table(
                [
                    {
                        "worker procs": p["worker_procs"],
                        "jobs": p["jobs"],
                        "wall-clock (s)": p["wall_s"],
                        "jobs/s": p["jobs_per_s"],
                        "p50 latency (s)": p["latency_p50_s"],
                        "p95 latency (s)": p["latency_p95_s"],
                    }
                    for p in scaling
                ],
                title=(
                    "multi-process scaling — 1 frontend + N workers, "
                    "shared SQLite state dir"
                ),
                precision=3,
            )
        )

    artifact = {
        "meta": {
            "bench": "bench_service_throughput",
            "n": args.n,
            "k": args.k,
            "epsilon": args.epsilon,
            "machines": args.machines,
            "jobs": args.jobs,
            "concurrency": args.concurrency,
            "workers": args.workers,
            # the pool size the service actually ran with (worker threads
            # are the unit of job parallelism, not cpu cores)
            "effective_workers": stats["workers"],
            "cpu_count": os.cpu_count(),
            "workers_env": os.environ.get("REPRO_WORKERS") or None,
            "platform": sys.platform,
            "python": sys.version.split()[0],
            "git_sha": _git_sha(),
        },
        "phases": {"cold": cold, "hot": hot},
        "sweep": sweep,
        "scaling": scaling,
        "cache": cache,
    }
    out = Path(
        args.out
        or Path(__file__).resolve().parent / "results" / "BENCH_service.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {out}")

    if args.baseline:
        return compare_to_baseline(artifact, Path(args.baseline), args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
