"""F6 — metric-kernel microbenchmarks (repro infrastructure).

Times one `pairwise` block per metric at a fixed size, so kernel
regressions show up in benchmark diffs.  The Euclidean expanded-norm
kernel is the hot path of every experiment; the others bound what
"expensive metric" means for the executor guidance in
docs/performance.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metric.cosine import AngularMetric
from repro.metric.euclidean import EuclideanMetric
from repro.metric.hamming import HammingMetric
from repro.metric.haversine import HaversineMetric
from repro.metric.lp import ChebyshevMetric, ManhattanMetric

N = 1024
I = np.arange(N // 2)
J = np.arange(N // 2, N)


def _points(kind: str) -> np.ndarray:
    rng = np.random.default_rng(0)
    if kind == "latlon":
        return np.stack(
            [rng.uniform(-80, 80, N), rng.uniform(-180, 180, N)], axis=1
        )
    if kind == "categorical":
        return rng.integers(0, 5, size=(N, 8)).astype(float)
    return rng.normal(size=(N, 8))


METRICS = {
    "euclidean": lambda: EuclideanMetric(_points("real")),
    "manhattan": lambda: ManhattanMetric(_points("real")),
    "chebyshev": lambda: ChebyshevMetric(_points("real")),
    "angular": lambda: AngularMetric(_points("real")),
    "hamming": lambda: HammingMetric(_points("categorical")),
    "haversine": lambda: HaversineMetric(_points("latlon")),
}


@pytest.mark.parametrize("name", sorted(METRICS))
def test_f6_pairwise_kernel(benchmark, name):
    metric = METRICS[name]()
    out = benchmark(lambda: metric.pairwise(I, J))
    assert out.shape == (I.size, J.size)
    assert np.all(out >= 0)
    benchmark.extra_info["metric"] = name
    benchmark.extra_info["cells"] = int(I.size) * int(J.size)
