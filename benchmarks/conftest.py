"""Shared helpers for the benchmark harness.

Each bench file regenerates one experiment from DESIGN.md's index
(T1–T5 comparison tables, F1–F4 trend series, A1 ablations).  The paper
itself publishes no empirical tables — these reproduce its *theorem-level
claims* (see EXPERIMENTS.md for the claim ↔ measurement mapping).

Conventions:

* every experiment prints its table via
  :func:`repro.analysis.reports.format_table` (captured with ``-s``);
* quality numbers are averaged over seeds via
  :mod:`repro.analysis.experiments`;
* hard assertions encode the theorem bounds, so the harness doubles as
  a long-form correctness gate;
* ``benchmark.pedantic(..., rounds=1)`` hosts each experiment so
  ``pytest benchmarks/ --benchmark-only`` selects and times them.
"""

from __future__ import annotations

import subprocess
from functools import lru_cache
from pathlib import Path

import pytest

#: seeds used for every averaged experiment row
SEEDS = (0, 1, 2)

#: where per-test JSON artifacts land (one file per bench test)
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@lru_cache(maxsize=1)
def repo_sha() -> str:
    """The repo's HEAD commit, or ``"unknown"`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except Exception:
        return "unknown"


@pytest.fixture
def show():
    """Print an experiment table (visible with ``-s`` / in bench logs)."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show


@pytest.fixture(autouse=True)
def _save_artifact(request):
    """Persist each bench test's ``benchmark.extra_info`` as JSON under
    ``benchmarks/results/`` so runs are diffable and plottable."""
    yield
    bm = request.node.funcargs.get("benchmark")
    extra = getattr(bm, "extra_info", None) if bm is not None else None
    if not extra:
        return
    from repro.analysis.io import write_json

    RESULTS_DIR.mkdir(exist_ok=True)
    safe = (
        request.node.name.replace("/", "_").replace("[", "_").replace("]", "")
    )
    rows = [dict(extra)]
    # phase breakdowns recorded by the bench (repro.obs) travel in the
    # meta block next to the provenance stamp, not in the data rows
    meta = {"test": request.node.name, "git_sha": repo_sha()}
    phases = rows[0].pop("obs_phases", None)
    if phases is not None:
        meta["phases"] = phases
    write_json(rows, RESULTS_DIR / f"{safe}.json", meta=meta)
