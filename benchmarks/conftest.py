"""Shared helpers for the benchmark harness.

Each bench file regenerates one experiment from DESIGN.md's index
(T1–T5 comparison tables, F1–F4 trend series, A1 ablations).  The paper
itself publishes no empirical tables — these reproduce its *theorem-level
claims* (see EXPERIMENTS.md for the claim ↔ measurement mapping).

Conventions:

* every experiment prints its table via
  :func:`repro.analysis.reports.format_table` (captured with ``-s``);
* quality numbers are averaged over seeds via
  :mod:`repro.analysis.experiments`;
* hard assertions encode the theorem bounds, so the harness doubles as
  a long-form correctness gate;
* ``benchmark.pedantic(..., rounds=1)`` hosts each experiment so
  ``pytest benchmarks/ --benchmark-only`` selects and times them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: seeds used for every averaged experiment row
SEEDS = (0, 1, 2)

#: where per-test JSON artifacts land (one file per bench test)
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def show():
    """Print an experiment table (visible with ``-s`` / in bench logs)."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show


@pytest.fixture(autouse=True)
def _save_artifact(request):
    """Persist each bench test's ``benchmark.extra_info`` as JSON under
    ``benchmarks/results/`` so runs are diffable and plottable."""
    yield
    bm = request.node.funcargs.get("benchmark")
    extra = getattr(bm, "extra_info", None) if bm is not None else None
    if not extra:
        return
    from repro.analysis.io import write_json

    RESULTS_DIR.mkdir(exist_ok=True)
    safe = (
        request.node.name.replace("/", "_").replace("[", "_").replace("]", "")
    )
    write_json([dict(extra)], RESULTS_DIR / f"{safe}.json", meta={"test": request.node.name})
