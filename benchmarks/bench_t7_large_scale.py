"""T7 — large-scale soak: the full pipeline at n = 16,384, m = 32.

A single headline configuration at the scale the MPC model targets:
quality versus the certified bound, round count, per-machine
communication versus the Õ(mk) envelope, and wall-clock — all in one
run, with every theorem assertion active.
"""

from __future__ import annotations

import math
import time

from repro.analysis.lower_bounds import kcenter_lower_bound
from repro.analysis.reports import format_table
from repro.analysis.theory import communication_bound_words
from repro.core.kcenter import mpc_kcenter
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

N, M, K, EPS = 16_384, 32, 32, 0.1


def run_soak() -> dict:
    wl = make_workload("gaussian", N, seed=0)
    lb = kcenter_lower_bound(wl.metric, K)
    cluster = MPCCluster(wl.metric, M, seed=0)
    t0 = time.perf_counter()
    res = mpc_kcenter(cluster, K, epsilon=EPS)
    wall = time.perf_counter() - t0
    envelope = communication_bound_words(N, M, K, point_words=wl.metric.point_words())
    return {
        "n": N,
        "m": M,
        "k": K,
        "gamma (m=n^g)": math.log(M) / math.log(N),
        "radius/LB": res.radius / lb,
        "guarantee": 2 * (1 + EPS),
        "rounds": res.rounds,
        "max words/machine/round": cluster.stats.max_machine_words,
        "mk*ln(n)*d envelope": int(envelope),
        "comm ratio": cluster.stats.max_machine_words / envelope,
        "wall-clock (s)": wall,
    }


def test_t7_large_scale_soak(benchmark, show):
    row = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    show(format_table([row], title="T7 large-scale soak (MPC k-center)"))
    assert row["radius/LB"] <= 2 * (1 + EPS) * 2.0  # LB slack ≤ 2
    assert row["comm ratio"] <= 60.0
    assert row["rounds"] < 300
    benchmark.extra_info.update(row)
