"""A1 — ablations of the design choices DESIGN.md calls out.

1. **trim tie-breaking** — the paper-literal strict rule returns the
   *empty set* whenever a sample is connected with tied priorities (the
   primitive-level livelock); at the algorithm level singleton samples
   still make progress, so the observable symptom is wasted rounds, not
   a hard stall.  Both levels are measured.
2. **pruning step (Theorem 14)** — with the pruning step disabled, the
   central machine ingests every sample and per-round communication
   blows up; with it on, the communication cap holds.  (The light path
   is switched off so the pruning branch is actually reached.)
3. **ladder vs coreset** — the full (2+ε) ladder improves on the
   two-round 4-approximation coreset start (and never regresses).
4. **degree approximation inside the MIS** — replacing approximate
   degrees by the trivial all-equal priorities (δ→0 forces everything
   heavy with coarse estimates) still terminates but with a worse
   round count on sparse graphs, showing why Algorithm 3 exists.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.lower_bounds import kcenter_lower_bound
from repro.analysis.reports import format_table
from repro.constants import TheoryConstants
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.core.kcenter import mpc_kcenter, mpc_kcenter_coreset
from repro.exceptions import ConvergenceError
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload


def ring_metric(n: int) -> EuclideanMetric:
    """n points on a circle — a 2-regular threshold graph at the chord
    distance, the canonical priority-tie instance."""
    theta = 2 * np.pi * np.arange(n) / n
    return EuclideanMetric(np.stack([np.cos(theta), np.sin(theta)], axis=1))


def run_tiebreak() -> dict:
    from repro.core.trim import trim

    n = 120
    metric = ring_metric(n)
    chord = float(metric.distance(0, 1)) * 1.01  # adjacent chords only

    # primitive level: a connected sample with tied priorities
    p = np.full(n, 2.0)  # the ring's true degrees — all equal
    tie = np.random.default_rng(0).random(n)
    prim = {
        "paper kept": int(trim(metric, np.arange(n), chord, p, mode="paper").size),
        "random kept": int(trim(metric, np.arange(n), chord, p, tie, mode="random").size),
    }

    # algorithm level: outer rounds to a maximal MIS under each rule
    alg_rows = []
    for mode in ("paper", "random"):
        cluster = MPCCluster(metric, 4, seed=0)
        try:
            res = mpc_k_bounded_mis(
                cluster, chord, k=10**6, trim_mode=mode, max_outer_rounds=60
            )
            alg_rows.append(
                {"trim mode": mode, "MIS size": res.size, "rounds": res.rounds}
            )
        except ConvergenceError:
            alg_rows.append(
                {"trim mode": mode, "MIS size": 0, "rounds": cluster.round_no}
            )
    return {"primitive": prim, "algorithm": alg_rows}


def test_a1_trim_tiebreak(benchmark, show):
    out = benchmark.pedantic(run_tiebreak, rounds=1, iterations=1)
    show(
        format_table(
            [out["primitive"]],
            title="A1.1a trim on a connected tied-priority sample (ring, n=120)",
        )
    )
    show(format_table(out["algorithm"], title="A1.1b k-bounded MIS under each trim rule"))
    # the primitive-level livelock: the literal rule keeps nothing
    assert out["primitive"]["paper kept"] == 0
    assert out["primitive"]["random kept"] >= 1
    # both full-algorithm runs terminate (singleton samples rescue 'paper'),
    # and the random rule is never slower
    by_mode = {r["trim mode"]: r for r in out["algorithm"]}
    assert by_mode["random"]["MIS size"] >= 1
    assert by_mode["random"]["rounds"] <= by_mode["paper"]["rounds"] + 1e-9


def run_pruning() -> list[dict]:
    # sparse graph: every degree ~0 so q_v = 1 and the expected sample
    # size is ~n >> 10 k ln n — exactly the regime the pruning step guards.
    # the light path is disabled (huge blowup) so the pruning branch runs.
    wl = make_workload("uniform", 1500, seed=0)
    constants = TheoryConstants(delta=2.0, light_blowup=1e9)
    tau = 0.02
    rows = []
    for prune in (True, False):
        cluster = MPCCluster(wl.metric, 4, seed=0)
        res = mpc_k_bounded_mis(
            cluster, tau, k=8, constants=constants, enable_pruning=prune
        )
        rows.append(
            {
                "pruning": prune,
                "terminated via": res.terminated_via,
                "max words/machine/round": cluster.stats.max_machine_words,
                "total words": cluster.stats.total_words,
            }
        )
    return rows


def test_a1_pruning(benchmark, show):
    rows = benchmark.pedantic(run_pruning, rounds=1, iterations=1)
    show(format_table(rows, title="A1.2 pruning step on a near-empty graph (n=1500, k=8)"))
    with_p = next(r for r in rows if r["pruning"])
    without = next(r for r in rows if not r["pruning"])
    assert with_p["terminated via"] == "size_k_pruning"
    # pruning must cut the per-round communication substantially
    assert with_p["max words/machine/round"] < without["max words/machine/round"]


def run_ladder_vs_coreset() -> list[dict]:
    rows = []
    for workload in ("gaussian", "clustered"):
        wl = make_workload(workload, 1024, seed=0)
        lb = kcenter_lower_bound(wl.metric, 8)
        cluster = MPCCluster(wl.metric, 8, seed=0)
        _, r4 = mpc_kcenter_coreset(cluster, 8)
        cluster = MPCCluster(wl.metric, 8, seed=0)
        res = mpc_kcenter(cluster, 8, epsilon=0.1)
        rows.append(
            {
                "workload": workload,
                "coreset 4-approx radius": r4,
                "ladder 2+eps radius": res.radius,
                "improvement": r4 / res.radius if res.radius else 1.0,
                "ratio_vs_LB (ladder)": res.radius / lb,
            }
        )
    return rows


def test_a1_ladder_vs_coreset(benchmark, show):
    rows = benchmark.pedantic(run_ladder_vs_coreset, rounds=1, iterations=1)
    show(format_table(rows, title="A1.3 full ladder vs two-round coreset (k-center)"))
    for r in rows:
        # the ladder never does worse than its own starting value
        assert r["ladder 2+eps radius"] <= r["coreset 4-approx radius"] + 1e-9


def run_degree_approx_ablation() -> list[dict]:
    """Coarse degrees (tiny δ ⇒ everything 'heavy' with noisy estimates)
    versus the proper split, on a mid-density graph."""
    wl = make_workload("gaussian", 1024, seed=0)
    tau = 1.0
    rows = []
    for label, constants in [
        ("paper split (practical δ)", TheoryConstants.practical()),
        ("coarse (δ→0: all heavy, noisy)", TheoryConstants(delta=1e-6, light_blowup=1e9)),
    ]:
        cluster = MPCCluster(wl.metric, 8, seed=0)
        res = mpc_k_bounded_mis(cluster, tau, k=10**6, constants=constants)
        rows.append(
            {
                "degree mode": label,
                "MIS size": res.size,
                "rounds": res.rounds,
                "total words": cluster.stats.total_words,
            }
        )
    return rows


def test_a1_degree_approx(benchmark, show):
    rows = benchmark.pedantic(run_degree_approx_ablation, rounds=1, iterations=1)
    show(format_table(rows, title="A1.4 degree-approximation ablation (maximal MIS)"))
    # both must produce a valid maximal MIS of similar size
    sizes = [r["MIS size"] for r in rows]
    assert min(sizes) >= 1


def run_round_compression() -> list[dict]:
    """Algorithm 4 compresses m Luby-style elimination rounds into one
    MPC round at the central machine.  Compare its *outer* round count
    against plain sequential Luby on the same graph."""
    from repro.baselines.luby import luby_mis

    rows = []
    for workload, tau in [("uniform", 0.8), ("gaussian", 1.0)]:
        wl = make_workload(workload, 1200, seed=0)
        cluster = MPCCluster(wl.metric, 8, seed=0)
        res = mpc_k_bounded_mis(cluster, tau, k=10**6, instrument=True)
        _, luby_rounds = luby_mis(
            wl.metric, np.arange(wl.n), tau, rng=np.random.default_rng(0)
        )
        rows.append(
            {
                "workload": workload,
                "tau": tau,
                "Alg 4 outer rounds": max(0, len(res.edge_trace) - 1),
                "Alg 4 MPC rounds": res.rounds,
                "plain Luby rounds": luby_rounds,
                "MIS size (Alg 4)": res.size,
            }
        )
    return rows


def test_a1_round_compression(benchmark, show):
    rows = benchmark.pedantic(run_round_compression, rounds=1, iterations=1)
    show(
        format_table(
            rows,
            title="A1.5 round compression: Algorithm 4 vs plain Luby (n=1200, m=8)",
        )
    )
    for r in rows:
        assert r["MIS size (Alg 4)"] >= 1
        # Luby needs O(log n) elimination rounds; Alg 4's central machine
        # replays m of them per MPC round, so the MPC interaction count is
        # a small constant multiple of Luby's, not larger by design
        assert r["plain Luby rounds"] >= 1
