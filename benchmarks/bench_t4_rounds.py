"""T4 — round complexity (Theorems 13 & 15, O(1/γ) for m = n^γ).

Claim reproduced: the number of MPC rounds used by the k-bounded MIS
(and by the full k-center pipeline) stays bounded — and does not *grow*
— as the machine count m increases; Theorem 13 predicts fewer outer
rounds for larger γ (edges decay by √m/5 per round).
"""

from __future__ import annotations

import math

from repro.analysis.experiments import aggregate, run_trials
from repro.analysis.reports import format_table
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.core.kcenter import mpc_kcenter
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

from conftest import SEEDS

N, K = 2048, 8
MACHINES = [2, 4, 8, 16]


def run_sweep() -> list[dict]:
    rows = []
    for m in MACHINES:
        def trial(seed: int, m=m) -> dict:
            wl = make_workload("gaussian", N, seed=seed)
            # a mid-ladder threshold where the MIS actually has to work
            tau = 1.0
            cluster = MPCCluster(wl.metric, m, seed=seed)
            res = mpc_k_bounded_mis(cluster, tau, K + 1)
            out = {"mis_rounds": res.rounds}

            cluster = MPCCluster(wl.metric, m, seed=seed)
            kc = mpc_kcenter(cluster, K, epsilon=0.1)
            out["kcenter_rounds"] = kc.rounds
            return out

        agg = aggregate(run_trials(trial, SEEDS))
        rows.append(
            {
                "machines m": m,
                "gamma (m=n^g)": math.log(m) / math.log(N),
                "MIS rounds (mean)": agg["mis_rounds"]["mean"],
                "MIS rounds (max)": agg["mis_rounds"]["max"],
                "k-center rounds (mean)": agg["kcenter_rounds"]["mean"],
            }
        )
    return rows


def test_t4_rounds_vs_machines(benchmark, show):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    show(format_table(rows, title=f"T4 rounds vs machines (n={N}, k={K})"))
    # Theorem 15: round counts stay bounded; they must not blow up with m.
    mis_rounds = [r["MIS rounds (max)"] for r in rows]
    assert max(mis_rounds) <= 4 * max(1.0, min(mis_rounds))
    # k-center = O(log 1/eps) MIS probes, each O(1) rounds: a generous
    # absolute sanity ceiling confirms "constant rounds" at this scale
    assert all(r["k-center rounds (mean)"] < 300 for r in rows)
    benchmark.extra_info["rows"] = rows
