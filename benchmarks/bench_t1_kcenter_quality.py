"""T1 — k-center approximation quality (Theorem 17).

Claim reproduced: the MPC (2+ε) algorithm's radius is within 2(1+ε) of
optimal, strictly better than the Malkomes et al. 4-approximation's
worst case, and comparable to the sequential GMM 2-approximation even
though no machine ever sees the whole input.

Rows: algorithm × workload, values averaged over seeds, ratios against
the certified instance lower bound (an upper bound on the true ratio).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import aggregate, run_trials
from repro.analysis.lower_bounds import kcenter_lower_bound
from repro.analysis.reports import format_table
from repro.baselines.ene import ene_sampling_kcenter
from repro.baselines.gonzalez import gonzalez_kcenter
from repro.baselines.malkomes import malkomes_kcenter
from repro.baselines.streaming import streaming_kcenter
from repro.core.kcenter import mpc_kcenter
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

from conftest import SEEDS

N, K, M, EPS = 1024, 8, 8, 0.1

WORKLOADS = ["gaussian", "uniform", "clustered", "duplicates"]


def run_workload(workload: str) -> list[dict]:
    def trial(seed: int) -> dict:
        wl = make_workload(workload, N, seed=seed)
        lb = kcenter_lower_bound(wl.metric, K)
        out = {}

        cluster = MPCCluster(wl.metric, M, seed=seed)
        res = mpc_kcenter(cluster, K, epsilon=EPS)
        out["mpc_2eps"] = res.radius / lb
        out["mpc_rounds"] = res.rounds

        cluster = MPCCluster(wl.metric, M, seed=seed)
        _, r = malkomes_kcenter(cluster, K)
        out["malkomes_4"] = r / lb

        cluster = MPCCluster(wl.metric, M, seed=seed)
        _, r = ene_sampling_kcenter(cluster, K)
        out["ene_sampling"] = r / lb

        _, r = gonzalez_kcenter(wl.metric, K)
        out["gmm_seq_2"] = r / lb

        _, r = streaming_kcenter(
            wl.metric, K, order=np.random.default_rng(seed).permutation(wl.n)
        )
        out["streaming_8"] = r / lb
        return out

    agg = aggregate(run_trials(trial, SEEDS))
    return [
        {
            "workload": workload,
            "algorithm": name,
            "ratio_vs_LB(mean)": agg[key]["mean"],
            "ratio_vs_LB(max)": agg[key]["max"],
            "guarantee": guar,
        }
        for name, key, guar in [
            ("MPC k-center (paper, 2+eps)", "mpc_2eps", 2 * (1 + EPS)),
            ("Malkomes et al. (MPC, 4)", "malkomes_4", 4.0),
            ("Ene et al.-style sampling", "ene_sampling", float("nan")),
            ("GMM sequential (2)", "gmm_seq_2", 2.0),
            ("CCFM streaming doubling (8)", "streaming_8", 8.0),
        ]
    ]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_t1_kcenter_quality(benchmark, show, workload):
    rows = benchmark.pedantic(run_workload, args=(workload,), rounds=1, iterations=1)
    show(format_table(rows, title=f"T1 k-center quality — {workload} (n={N}, k={K}, m={M})"))
    by_alg = {r["algorithm"]: r for r in rows}
    # Theorem 17: the ratio vs LB bounds the true ratio from above, and the
    # LB satisfies LB <= r*, so ratio_vs_LB can exceed 2(1+eps) only through
    # LB slack; GMM's certified factor-2 output gives the scale-free check:
    mpc = by_alg["MPC k-center (paper, 2+eps)"]["ratio_vs_LB(max)"]
    gmm = by_alg["GMM sequential (2)"]["ratio_vs_LB(max)"]
    # radius_mpc <= 2(1+eps)·r* and radius_gmm >= r*  =>  mpc/gmm <= 2(1+eps)
    assert mpc <= 2 * (1 + EPS) * gmm / 1.0 + 1e-9
    benchmark.extra_info.update({r["algorithm"]: r["ratio_vs_LB(mean)"] for r in rows})
