"""T5 — per-machine communication and memory (Theorems 9, 15, 17).

Claim reproduced: the worst per-machine communication of the full
k-center pipeline stays within a constant multiple of the Õ(mk)
envelope (m·k·ln n·point_words) as n, m, and k sweep — i.e. the
measured/envelope ratio stays flat instead of growing.  Memory is
checked against the Õ(n/m + mk) envelope, with per-round received
words + the local partition as the working-set proxy.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.analysis.theory import communication_bound_words, memory_bound_words
from repro.core.kcenter import mpc_kcenter
from repro.mpc.cluster import MPCCluster
from repro.obs import Recorder
from repro.workloads.registry import make_workload


def phase_breakdown(n: int, m: int, k: int, seed: int = 0) -> list[dict]:
    """Per-phase words/rounds for one representative pipeline run,
    recorded through the observability layer (repro.obs)."""
    wl = make_workload("gaussian", n, seed=seed)
    cluster = MPCCluster(wl.metric, m, seed=seed)
    rec = Recorder.attach(cluster, capture_messages=False)
    mpc_kcenter(cluster, k, epsilon=0.1)
    rec.detach()
    return rec.log.phase_summary()


def measure(n: int, m: int, k: int, seed: int = 0) -> dict:
    wl = make_workload("gaussian", n, seed=seed)
    cluster = MPCCluster(wl.metric, m, seed=seed)
    mpc_kcenter(cluster, k, epsilon=0.1)
    stats = cluster.stats
    pw = wl.metric.point_words()
    envelope = communication_bound_words(n, m, k, point_words=pw)
    # memory proxy: local partition + the largest single-round received load
    part_words = int(max(cluster.partition_sizes()) * pw)
    max_recv = max((int(r.received.max()) for r in stats.rounds_log), default=0)
    mem_envelope = memory_bound_words(n, m, k, point_words=pw)
    return {
        "n": n,
        "m": m,
        "k": k,
        "max words/machine/round": stats.max_machine_words,
        "comm envelope m*k*ln(n)*d": int(envelope),
        "comm ratio": stats.max_machine_words / envelope,
        "memory proxy (words)": part_words + max_recv,
        "mem envelope": int(mem_envelope),
        "mem ratio": (part_words + max_recv) / mem_envelope,
    }


def run_sweeps() -> dict:
    n_rows = [measure(n, 8, 8) for n in (512, 1024, 2048, 4096)]
    m_rows = [measure(2048, m, 8) for m in (2, 4, 8, 16)]
    k_rows = [measure(2048, 8, k) for k in (4, 8, 16)]
    return {"n": n_rows, "m": m_rows, "k": k_rows}


def test_t5_communication_envelopes(benchmark, show):
    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    for name, rows in sweeps.items():
        show(format_table(rows, title=f"T5 communication/memory — sweep over {name}"))
    # flatness: across each sweep, the measured/envelope ratio must not
    # grow by more than a small constant factor end-to-end
    for name, rows in sweeps.items():
        ratios = [r["comm ratio"] for r in rows]
        assert max(ratios) <= 60.0, f"comm ratio blew up in the {name} sweep: {ratios}"
        mem_ratios = [r["mem ratio"] for r in rows]
        assert max(mem_ratios) <= 60.0, f"memory ratio blew up in the {name} sweep"
    # growing n at fixed m,k must not grow the per-machine communication
    # super-logarithmically: compare largest-n to smallest-n measured words
    n_rows = sweeps["n"]
    growth = (
        n_rows[-1]["max words/machine/round"] / n_rows[0]["max words/machine/round"]
    )
    assert growth <= 16.0
    benchmark.extra_info["sweeps"] = {
        name: [r["comm ratio"] for r in rows] for name, rows in sweeps.items()
    }
    # conftest lifts this into the artifact's meta block, next to git_sha
    benchmark.extra_info["obs_phases"] = phase_breakdown(2048, 8, 8)
