"""F4 — degree-approximation accuracy (Lemmas 5–8, Theorem 9).

Series reproduced: heavy vertices get (1±ε)-style multiplicative
estimates that tighten as density (hence expected sample degree) grows;
light vertices are computed exactly; the light path fires exactly when
the light population crosses the 2δmk·ln n trigger.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.constants import TheoryConstants
from repro.core.degree_approx import mpc_degree_approximation
from repro.core.threshold_graph import ThresholdGraphView
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

N, M, K = 2000, 4, 8
TAUS = [0.5, 1.5, 3.0, 6.0]  # sparse → dense on the gaussian workload


def run_accuracy() -> list[dict]:
    wl = make_workload("gaussian", N, seed=0)
    constants = TheoryConstants(delta=2.0, light_blowup=1e9)  # exact path always
    active = np.arange(N)
    truth_view = lambda tau: ThresholdGraphView(wl.metric, active, tau).degrees(active)
    rows = []
    for tau in TAUS:
        cluster = MPCCluster(wl.metric, M, seed=0)
        res = mpc_degree_approximation(cluster, tau, K, constants)
        assert res.kind == "degrees"
        truth = truth_view(tau).astype(float)
        est = res.p[active]
        # light vertices are exact by construction; isolate the heavy ones
        exact = np.isclose(est, truth)
        heavy_err = np.abs(est[~exact] - truth[~exact]) / np.maximum(truth[~exact], 1.0)
        rows.append(
            {
                "tau": tau,
                "mean true degree": float(truth.mean()),
                "light count": res.light_count,
                "heavy count": res.heavy_count,
                "light exact?": bool(exact.sum() >= res.light_count),
                "heavy rel. err (mean)": float(heavy_err.mean()) if heavy_err.size else 0.0,
                "heavy rel. err (p95)": float(np.percentile(heavy_err, 95))
                if heavy_err.size
                else 0.0,
            }
        )
    return rows


def test_f4_degree_accuracy(benchmark, show):
    rows = benchmark.pedantic(run_accuracy, rounds=1, iterations=1)
    show(format_table(rows, title=f"F4 degree approximation accuracy (n={N}, m={M})"))
    for r in rows:
        assert r["light exact?"], "light vertices must be exact"
    # estimates tighten with density: densest tau has small relative error
    dense = rows[-1]
    assert dense["heavy rel. err (p95)"] <= 0.25
    # error decreases (weakly) from the sparsest heavy regime to the densest
    errs = [r["heavy rel. err (mean)"] for r in rows if r["heavy count"] > 0]
    if len(errs) >= 2:
        assert errs[-1] <= errs[0] + 0.05
    benchmark.extra_info["rows"] = rows


def run_light_path_trigger() -> list[dict]:
    """The light path fires iff |L| crosses the configured trigger."""
    wl = make_workload("uniform", 600, seed=1)
    rows = []
    for blowup, expect_light in [(1e9, False), (0.3, True)]:
        constants = TheoryConstants(delta=1.0, light_blowup=blowup)
        cluster = MPCCluster(wl.metric, M, seed=1)
        res = mpc_degree_approximation(cluster, 0.05, K, constants)
        rows.append(
            {
                "light trigger blowup": blowup,
                "light count": res.light_count,
                "light path taken": res.light_path_taken,
                "outcome": res.kind,
                "expected light path": expect_light,
            }
        )
    return rows


def test_f4_light_path_trigger(benchmark, show):
    rows = benchmark.pedantic(run_light_path_trigger, rounds=1, iterations=1)
    show(format_table(rows, title="F4b light-path trigger behaviour"))
    for r in rows:
        assert r["light path taken"] == r["expected light path"]
