"""T3 — k-supplier approximation quality (Theorem 18).

Claim reproduced: the MPC algorithm achieves radius ≤ 3(1+ε)·r* in any
metric space, matching the sequential Hochbaum–Shmoys 3-approximation's
regime (the problem's approximability floor is 3).  Ratios are against
the certified instance lower bound; the small-instance variant uses the
exact optimum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import aggregate, run_trials
from repro.analysis.lower_bounds import ksupplier_lower_bound
from repro.analysis.reports import format_table
from repro.baselines.exact import exact_ksupplier
from repro.baselines.ksupplier_seq import hochbaum_shmoys_ksupplier
from repro.core.ksupplier import mpc_ksupplier
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.workloads.suppliers import supplier_instance

from conftest import SEEDS

NC, NS, K, M, EPS = 768, 256, 8, 8, 0.1
LAYOUTS = ["uniform", "colocated", "perimeter"]


def run_layout(layout: str) -> list[dict]:
    def trial(seed: int) -> dict:
        inst = supplier_instance(
            NC, NS, supplier_layout=layout, rng=np.random.default_rng(seed)
        )
        metric = EuclideanMetric(inst.points)
        lb = ksupplier_lower_bound(metric, inst.customers, inst.suppliers, K)
        out = {}

        cluster = MPCCluster(metric, M, seed=seed)
        res = mpc_ksupplier(cluster, inst.customers, inst.suppliers, K, epsilon=EPS)
        out["mpc_3eps"] = res.radius / lb
        out["mpc_rounds"] = res.rounds

        _, r = hochbaum_shmoys_ksupplier(metric, inst.customers, inst.suppliers, K)
        out["hs_seq_3"] = r / lb
        return out

    agg = aggregate(run_trials(trial, SEEDS))
    return [
        {
            "layout": layout,
            "algorithm": name,
            "ratio_vs_LB(mean)": agg[key]["mean"],
            "ratio_vs_LB(max)": agg[key]["max"],
            "guarantee": guar,
        }
        for name, key, guar in [
            ("MPC k-supplier (paper, 3+eps)", "mpc_3eps", 3 * (1 + EPS)),
            ("Hochbaum-Shmoys seq. (3)", "hs_seq_3", 3.0),
        ]
    ]


@pytest.mark.parametrize("layout", LAYOUTS)
def test_t3_ksupplier_quality(benchmark, show, layout):
    rows = benchmark.pedantic(run_layout, args=(layout,), rounds=1, iterations=1)
    show(
        format_table(
            rows,
            title=f"T3 k-supplier quality — {layout} suppliers "
            f"(|C|={NC}, |S|={NS}, k={K}, m={M})",
        )
    )
    by_alg = {r["algorithm"]: r for r in rows}
    mpc = by_alg["MPC k-supplier (paper, 3+eps)"]["ratio_vs_LB(max)"]
    hs = by_alg["Hochbaum-Shmoys seq. (3)"]["ratio_vs_LB(max)"]
    # scale-free cross check: radius_mpc <= 3(1+eps)·r* and radius_hs >= r*
    assert mpc <= 3 * (1 + EPS) * hs + 1e-9
    benchmark.extra_info.update({r["algorithm"]: r["ratio_vs_LB(mean)"] for r in rows})


def test_t3_exact_small_instance(benchmark, show):
    """Exact-optimum variant with a brute-forceable supplier pool."""

    def run() -> dict:
        rng = np.random.default_rng(3)
        inst = supplier_instance(40, 12, supplier_layout="uniform", rng=rng)
        metric = EuclideanMetric(inst.points)
        _, opt = exact_ksupplier(metric, inst.customers, inst.suppliers, 3)
        cluster = MPCCluster(metric, 3, seed=3)
        res = mpc_ksupplier(cluster, inst.customers, inst.suppliers, 3, epsilon=EPS)
        return {"opt": opt, "mpc": res.radius}

    vals = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        format_table(
            [
                {"quantity": "optimum (exact)", "radius": vals["opt"], "ratio": 1.0},
                {
                    "quantity": "MPC 3+eps",
                    "radius": vals["mpc"],
                    "ratio": vals["mpc"] / vals["opt"],
                },
            ],
            title="T3b k-supplier vs exact optimum (|C|=40, |S|=12, k=3)",
        )
    )
    assert vals["mpc"] <= 3 * (1 + EPS) * vals["opt"] + 1e-9
