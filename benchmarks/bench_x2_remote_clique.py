"""X2 — remote-clique diversity (related-work extension).

Not a theorem of this paper: the related-work section situates the
remote-edge result next to the remote-clique (max-*sum* dispersion)
line (Indyk et al. 2014; Mirrokni & Zadimoghaddam 2015).  This
experiment measures the extension module: greedy vs 2-approx local
search vs the two-round composable-coreset MPC pipeline, against the
exact optimum where brute force is feasible.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.extensions.remote_clique import (
    exact_remote_clique,
    greedy_remote_clique,
    local_search_remote_clique,
    mpc_remote_clique,
    remote_clique_value,
)
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.workloads.registry import make_workload

from conftest import SEEDS


def run_small_exact() -> list[dict]:
    """n=14, k=4: ratio against the exact optimum."""
    rows = []
    for seed in SEEDS:
        pts = np.random.default_rng(seed).normal(size=(14, 2))
        metric = EuclideanMetric(pts)
        _, opt = exact_remote_clique(metric, 4)
        ids = np.arange(14)
        g = remote_clique_value(metric, greedy_remote_clique(metric, ids, 4))
        ls = remote_clique_value(metric, local_search_remote_clique(metric, ids, 4))
        cluster = MPCCluster(metric, 2, seed=seed)
        _, mpc = mpc_remote_clique(cluster, 4)
        rows.append(
            {
                "seed": seed,
                "opt/greedy": opt / g,
                "opt/local-search": opt / ls,
                "opt/MPC-coreset": opt / mpc,
            }
        )
    return rows


def test_x2_remote_clique_exact(benchmark, show):
    rows = benchmark.pedantic(run_small_exact, rounds=1, iterations=1)
    show(format_table(rows, title="X2 remote-clique vs exact optimum (n=14, k=4)"))
    for r in rows:
        assert r["opt/local-search"] <= 2.0 + 1e-9  # local optimum guarantee
        assert r["opt/greedy"] <= 4.0 + 1e-9
        assert r["opt/MPC-coreset"] <= 3.0 + 1e-9  # composable-coreset constant


def run_scale() -> list[dict]:
    """n=1024: MPC pipeline vs the sequential local search it matches."""
    rows = []
    for workload in ("gaussian", "uniform"):
        wl = make_workload(workload, 1024, seed=0)
        ids = np.arange(wl.n)
        seq = remote_clique_value(
            wl.metric, local_search_remote_clique(wl.metric, ids, 8)
        )
        cluster = MPCCluster(wl.metric, 8, seed=0)
        _, mpc = mpc_remote_clique(cluster, 8)
        rows.append(
            {
                "workload": workload,
                "sequential local search": seq,
                "MPC coreset pipeline": mpc,
                "MPC/sequential": mpc / seq,
            }
        )
    return rows


def test_x2_remote_clique_scale(benchmark, show):
    rows = benchmark.pedantic(run_scale, rounds=1, iterations=1)
    show(format_table(rows, title="X2b remote-clique at scale (n=1024, k=8, m=8)"))
    for r in rows:
        assert r["MPC/sequential"] >= 0.8  # two rounds cost little quality
    benchmark.extra_info["rows"] = rows
