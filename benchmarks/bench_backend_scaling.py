"""Backend scaling bench — serial vs thread vs process wall-clock.

Not a paper claim: this measures the simulator's execution backends on
one large k-center instance.  Besides timing, it *asserts* the tentpole
contract: every backend must produce bit-identical results and an
identical CountingOracle ledger for the same seed.

Run standalone (CI runs it at toy scale)::

    python benchmarks/bench_backend_scaling.py                 # full, n=50k
    python benchmarks/bench_backend_scaling.py --n 2000 --out results/smoke.json

Speedup expectations: the process backend needs real cores — on a
1-core runner it degrades gracefully to serial execution (the artifact
records ``cpu_count`` so numbers are interpretable).  On a >= 4-core
machine expect >= 2x over serial for GIL-holding metrics and large n.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.reports import format_table  # noqa: E402
from repro.api import build_cluster, solve_kcenter  # noqa: E402
from repro.metric.euclidean import EuclideanMetric  # noqa: E402
from repro.metric.oracle import CountingOracle  # noqa: E402
from repro.mpc.executor import BACKENDS, ProcessExecutor, get_executor  # noqa: E402


def _git_sha() -> str:
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except Exception:
        return "unknown"


def run_backend(points, backend: str, *, k: int, machines: int, seed: int,
                eps: float, workers: int | None,
                remote_workers=None) -> dict:
    oracle = CountingOracle(EuclideanMetric(points))
    executor = get_executor(backend, max_workers=workers, workers=remote_workers)
    cluster = build_cluster(
        metric=oracle, machines=machines, seed=seed, backend=executor
    )
    t0 = time.perf_counter()
    res = solve_kcenter(k=k, eps=eps, cluster=cluster)
    wall = time.perf_counter() - t0
    row = {
        "backend": backend,
        "wall_s": wall,
        # the *effective* parallelism: caps, cpu count, batch size, and
        # any serial fallback or mid-run worker loss applied — so a
        # cpu_count=1 run (or a degraded remote pool) is visible in the
        # artifact instead of silently posing as a parallel one
        "requested_workers": workers,
        "effective_workers": executor.effective_workers(machines),
        "radius": float(res.radius),
        "centers": sorted(int(c) for c in res.centers),
        "rounds": int(res.rounds),
        "total_words": int(cluster.stats.total_words),
        "oracle_calls": int(oracle.calls),
        "oracle_evaluations": int(oracle.evaluations),
    }
    if getattr(executor, "fallback_reason", None):
        row["fallback_reason"] = executor.fallback_reason
    if backend == "remote":
        rec = executor.recovery_stats()
        row["remote"] = {
            "dispatched_chunks": rec["dispatched_chunks"],
            "redispatched_chunks": rec["redispatched_chunks"],
            "workers_lost": rec["workers_lost"],
            "datasets_shipped": rec["datasets_shipped"],
        }
    executor.shutdown()
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=50_000)
    ap.add_argument("--k", type=int, default=8)
    ap.add_argument("--machines", type=int, default=16)
    ap.add_argument("--epsilon", type=float, default=0.2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument(
        "--workers", type=int, default=None,
        help="worker cap for thread/process backends "
        "(default: REPRO_WORKERS env var, else cpu count)",
    )
    ap.add_argument(
        "--backends", nargs="+", choices=list(BACKENDS), default=list(BACKENDS)
    )
    ap.add_argument(
        "--remote-workers", default=None, metavar="HOST:PORT,...",
        help="worker agent addresses for the remote backend; when omitted "
        "(and 'remote' is benched) the bench spawns in-process agents — "
        "REPRO_WORKERS many, default 2 — on ephemeral ports",
    )
    ap.add_argument(
        "--out", default=None,
        help="JSON artifact path (default: benchmarks/results/bench_backend_scaling.json)",
    )
    args = ap.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    points = rng.normal(scale=4.0, size=(args.n, 2))

    # the remote backend needs agents: use the given addresses, or spawn
    # a local in-process pool so the artifact records >1 effective worker
    # even on a single box (the agents are real socket peers either way)
    agents = []
    remote_workers = args.remote_workers
    if "remote" in args.backends and remote_workers is None:
        from repro.mpc.executor import workers_from_env  # noqa: E402
        from repro.mpc.remote import WorkerAgent  # noqa: E402

        pool = workers_from_env() or 2
        agents = [WorkerAgent() for _ in range(pool)]
        remote_workers = [a.start() for a in agents]

    try:
        rows = [
            run_backend(
                points, b, k=args.k, machines=args.machines, seed=args.seed,
                eps=args.epsilon, workers=args.workers,
                remote_workers=remote_workers if b == "remote" else None,
            )
            for b in args.backends
        ]
    finally:
        for agent in agents:
            agent.stop()

    # the tentpole contract: bit-identical results AND oracle ledger
    base = rows[0]
    for row in rows[1:]:
        for key in ("radius", "centers", "rounds", "total_words",
                    "oracle_calls", "oracle_evaluations"):
            assert row[key] == base[key], (
                f"{row['backend']} diverged from {base['backend']} on {key}: "
                f"{row[key]!r} != {base[key]!r}"
            )

    serial_wall = next((r["wall_s"] for r in rows if r["backend"] == "serial"), None)
    for row in rows:
        row["speedup_vs_serial"] = (
            serial_wall / row["wall_s"] if serial_wall else None
        )

    print(
        format_table(
            [
                {
                    "backend": r["backend"],
                    "workers": r["effective_workers"],
                    "wall-clock (s)": r["wall_s"],
                    "speedup": r["speedup_vs_serial"],
                    "radius": r["radius"],
                    "rounds": r["rounds"],
                    "oracle evals": r["oracle_evaluations"],
                }
                for r in rows
            ],
            title=(
                f"backend scaling — k-center n={args.n}, k={args.k}, "
                f"m={args.machines}, cpus={os.cpu_count()}"
            ),
            precision=3,
        )
    )
    print("\nall backends bit-identical (results + oracle ledger): OK")

    out = Path(
        args.out
        or Path(__file__).resolve().parent / "results" / "bench_backend_scaling.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    artifact = {
        "meta": {
            "bench": "bench_backend_scaling",
            "n": args.n,
            "k": args.k,
            "machines": args.machines,
            "epsilon": args.epsilon,
            "seed": args.seed,
            "cpu_count": os.cpu_count(),
            "workers_env": os.environ.get("REPRO_WORKERS") or None,
            "platform": sys.platform,
            "python": sys.version.split()[0],
            "git_sha": _git_sha(),
        },
        "rows": [
            # centers are bulky and identical across backends; keep one copy
            {k: v for k, v in r.items() if k != "centers"} for r in rows
        ],
        "centers": base["centers"],
    }
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
