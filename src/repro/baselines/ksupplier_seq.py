"""Hochbaum–Shmoys sequential 3-approximation for k-supplier (1986).

For a candidate τ: take a greedy maximal independent set of the
customers in ``G_{2τ}``; each chosen customer must have a supplier
within τ (else τ < r*); if the independent set has ≤ k members and all
are serviceable, opening those suppliers covers every customer within
``2τ + τ = 3τ``.  Binary search over candidate values of τ — here the
customer–supplier distances, since r* is one of them.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.metric.base import Metric


def hochbaum_shmoys_ksupplier(
    metric: Metric,
    customers: Iterable[int],
    suppliers: Iterable[int],
    k: int,
) -> Tuple[np.ndarray, float]:
    """Sequential 3-approximation k-supplier.

    Returns ``(opened_suppliers, radius)`` with
    ``radius = r(C, opened) ≤ 3r*``.
    """
    C = np.unique(np.asarray(customers, dtype=np.int64))
    S = np.unique(np.asarray(suppliers, dtype=np.int64))
    if C.size == 0 or S.size == 0:
        raise ValueError("need at least one customer and one supplier")
    if k < 1:
        raise ValueError("k must be >= 1")

    D_cs = metric.pairwise(C, S)
    taus = np.unique(D_cs)

    def attempt(tau: float) -> np.ndarray | None:
        # greedy MIS of customers in G_{2τ}
        chosen: list[int] = []
        opened: list[int] = []
        alive = np.ones(C.size, dtype=bool)
        D_cc_cols: list[np.ndarray] = []
        while alive.any():
            idx = int(np.argmax(alive))  # first alive customer
            within = D_cs[idx] <= tau
            if not within.any():
                return None  # this pivot cannot be served at τ
            chosen.append(idx)
            opened.append(int(S[int(np.argmax(within))]))
            if len(chosen) > k:
                return None
            col = metric.pairwise(C, [int(C[idx])])[:, 0]
            alive &= col > 2.0 * tau
        return np.unique(np.asarray(opened, dtype=np.int64))

    lo, hi = 0, taus.size - 1
    best = attempt(float(taus[hi]))
    if best is None:
        raise ValueError("instance infeasible even at the maximum distance")
    while lo < hi:
        mid = (lo + hi) // 2
        sol = attempt(float(taus[mid]))
        if sol is not None:
            best, hi = sol, mid
        else:
            lo = mid + 1

    radius = float(metric.pairwise(C, best).min(axis=1).max())
    return best, radius
