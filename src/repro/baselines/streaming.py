"""One-pass streaming k-center: the doubling algorithm of Charikar,
Chekuri, Feder & Motwani (STOC 1997), an 8-approximation using O(k)
memory.

Included as the *streaming* point of comparison for the MPC algorithms:
the related distributed-clustering literature (e.g. Ceccarello et al.,
VLDB 2019, cited by the paper) habitually compares MapReduce/MPC
algorithms against streaming ones, since both process data that does
not fit one machine.

Invariants maintained after every batch (the classic analysis):

* at most ``k`` centers are kept, pairwise > ``2·lower``;
* every point seen so far is within ``8·lower``-ish of a center —
  concretely the final radius is at most 8 times the optimum.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.metric.base import Metric


def streaming_kcenter(
    metric: Metric,
    k: int,
    order: Iterable[int] | None = None,
    batch: int = 256,
) -> Tuple[np.ndarray, float]:
    """One-pass doubling k-center over the ground set.

    Parameters
    ----------
    metric:
        The distance oracle; points arrive by id.
    k:
        Number of centers to maintain.
    order:
        Arrival order (defaults to id order — pass a permutation to
        simulate shuffled streams).
    batch:
        Points consumed per oracle call (vectorization only; the
        algorithm is logically one-at-a-time).

    Returns
    -------
    (centers, radius):
        At most ``k`` center ids and their true service radius over the
        whole ground set (≤ 8·optimal).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if k >= metric.n:
        ids = np.arange(metric.n, dtype=np.int64)
        return ids, 0.0
    stream = np.asarray(
        np.arange(metric.n, dtype=np.int64) if order is None else order,
        dtype=np.int64,
    )
    if stream.size != metric.n or np.unique(stream).size != metric.n:
        raise ValueError("order must be a permutation of all ids")

    # bootstrap: first k+1 points fix the initial scale
    head = stream[: k + 1]
    centers = list(head[:k].tolist())
    if metric.n <= k:
        ids = np.arange(metric.n, dtype=np.int64)
        return np.asarray(centers, dtype=np.int64), float(
            metric.dist_to_set(ids, centers).max()
        )
    D0 = metric.pairwise(head, head)
    np.fill_diagonal(D0, np.inf)
    lower = float(D0.min()) / 2.0
    if lower == 0.0:
        lower = 1e-12  # duplicates in the head; any positive scale works

    def absorb(pid: int) -> None:
        nonlocal lower
        d = float(metric.dist_to_set([pid], centers)[0])
        if d > 4.0 * lower:
            centers.append(int(pid))
            while len(centers) > k:
                # doubling phase: raise the scale, keep a 2·lower-separated net
                lower *= 2.0
                kept: list[int] = []
                for c in centers:
                    if not kept or float(metric.dist_to_set([c], kept)[0]) > 2.0 * lower:
                        kept.append(c)
                centers[:] = kept

    # one pass (batched distance evaluation, sequential absorption)
    for lo in range(k + 1, stream.size, batch):
        chunk = stream[lo : lo + batch]
        dists = metric.dist_to_set(chunk, centers)
        for pid, d in zip(chunk, dists):
            # d is stale once centers change; re-check only then
            if d > 4.0 * lower:
                absorb(int(pid))

    ids = np.arange(metric.n, dtype=np.int64)
    radius = float(metric.dist_to_set(ids, centers).max())
    return np.asarray(sorted(centers), dtype=np.int64), radius
