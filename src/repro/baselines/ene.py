"""Sampling-style MapReduce k-center in the spirit of Ene, Im & Moseley
(KDD 2011).

Their Fast-Clustering algorithm builds a small representative sample by
iterative uniform sampling, then solves k-center offline on the sample
(10-approximation w.h.p. with O(k·n^ε) memory).  We implement the
practical skeleton: machines sample ~``sample_factor·√(n·k·ln n)/m``
points each, the central machine adds the *farthest* local point of
each machine (coverage repair), runs GMM on the pooled sample, and the
result is evaluated over the full input.

This baseline has no worst-case factor at this simplified fidelity —
it is included as the "cheap sampling" row of the T1 experiment, the
historical starting point (factor 10) the 4-approximation of Malkomes
et al. and the 2+ε of the paper successively improved on.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.gmm import gmm
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def ene_sampling_kcenter(
    cluster: MPCCluster, k: int, sample_factor: float = 2.0
) -> Tuple[np.ndarray, float]:
    """Two-round sampling k-center baseline.

    Returns ``(centers, radius)`` with ``radius = r(V, centers)``.
    """
    n = cluster.n
    target = sample_factor * math.sqrt(n * max(1, k) * max(1.0, math.log(max(n, 2))))
    per_machine = max(1, int(math.ceil(target / cluster.m)))

    payloads = {}
    for mach in cluster.machines:
        size = min(per_machine, mach.local_ids.size)
        pick = (
            mach.rng.choice(mach.local_ids, size=size, replace=False)
            if size
            else np.zeros(0, dtype=np.int64)
        )
        payloads[mach.id] = PointBatch(pick)
    inbox = cluster.gather_to_central(payloads, tag="ene/sample")
    sample = np.unique(np.concatenate([msg.payload.ids for msg in inbox]))

    # coverage repair: every machine reports its point farthest from the
    # sample, so isolated regions are represented
    cluster.broadcast_points_from_central(sample, tag="ene/sample-bcast")
    far_payloads = {}
    for mach in cluster.machines:
        if mach.local_ids.size:
            d = mach.dist_to_set(mach.local_ids, sample)
            far_payloads[mach.id] = PointBatch([int(mach.local_ids[int(np.argmax(d))])])
        else:
            far_payloads[mach.id] = PointBatch([])
    inbox = cluster.gather_to_central(far_payloads, tag="ene/far")
    extras = np.concatenate([msg.payload.ids for msg in inbox])
    pool = np.unique(np.concatenate([sample, extras]))

    centers = gmm(cluster.central, pool, k)

    cluster.broadcast_points_from_central(centers, tag="ene/centers")
    r_payloads = {}
    for mach in cluster.machines:
        r_payloads[mach.id] = (
            float(mach.dist_to_set(mach.local_ids, centers).max())
            if mach.local_ids.size
            else 0.0
        )
    inbox = cluster.gather_to_central(r_payloads, tag="ene/radius")
    radius = max(float(msg.payload) for msg in inbox)
    return centers, radius
