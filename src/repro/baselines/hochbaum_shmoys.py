"""Hochbaum–Shmoys parametric-pruning 2-approximation for k-center
(Math. OR 1985 / JACM 1986).

The optimal radius is one of the O(n²) pairwise distances.  For a
candidate τ, a greedy maximal independent set of the *squared*
bottleneck graph (adjacency ``d ≤ 2τ``) has size ≤ k iff τ ≥ r*; the
smallest feasible τ yields centers covering V within 2τ ≤ 2r*.  We
binary-search the sorted candidate distances.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.greedy_mis import greedy_mis
from repro.metric.base import Metric


def candidate_radii(metric: Metric, max_points: int = 4096) -> np.ndarray:
    """Sorted unique pairwise distances (the optimal radius is one).

    Refuses ground sets whose n² candidate matrix would not fit.
    """
    n = metric.n
    if n > max_points:
        raise ValueError(
            f"n={n} too large for exact candidate enumeration (limit {max_points})"
        )
    ids = np.arange(n, dtype=np.int64)
    D = metric.pairwise(ids, ids)
    vals = np.unique(D[np.triu_indices(n, k=1)]) if n > 1 else np.array([0.0])
    return vals


def hochbaum_shmoys_kcenter(metric: Metric, k: int) -> Tuple[np.ndarray, float]:
    """Sequential 2-approximation k-center.

    Returns ``(centers, radius)``; ``radius = r(V, centers) ≤ 2r*``.
    """
    if not (1 <= k <= metric.n):
        raise ValueError("need 1 <= k <= n")
    ids = np.arange(metric.n, dtype=np.int64)
    radii = candidate_radii(metric)

    def feasible(tau: float) -> np.ndarray | None:
        mis = greedy_mis(metric, ids, 2.0 * tau, limit=k + 1)
        return mis if mis.size <= k else None

    lo, hi = 0, radii.size - 1
    best = feasible(radii[hi])
    assert best is not None, "the largest distance is always feasible"
    while lo < hi:
        mid = (lo + hi) // 2
        sol = feasible(radii[mid])
        if sol is not None:
            best, hi = sol, mid
        else:
            lo = mid + 1
    centers = best
    radius = float(metric.dist_to_set(ids, centers).max())
    return centers, radius
