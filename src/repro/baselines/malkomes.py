"""Malkomes et al. (NeurIPS 2015): two-round MPC k-center baselines.

* :func:`malkomes_kcenter` — GMM on every machine, GMM on the union at
  the central machine: a 4-approximation in exactly two rounds with
  O(mk) communication.  This is the state of the art the paper's
  Algorithm 5 improves from 4 to 2+ε.
* :func:`malkomes_kcenter_outliers` — machines run GMM with ``k+z``
  points and attach the weight of each coreset point (how many local
  points it is nearest to); the central machine runs the weighted
  Charikar outlier algorithm, a 13-approximation overall.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.charikar import charikar_kcenter_outliers
from repro.core.gmm import gmm
from repro.metric.base import Metric
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def malkomes_kcenter(cluster: MPCCluster, k: int) -> Tuple[np.ndarray, float]:
    """Two-round 4-approximation MPC k-center.

    Returns ``(centers, radius)`` with ``radius = r(V, centers)``
    (the radius evaluation costs two additional reporting rounds).
    """
    payloads = {}
    for mach in cluster.machines:
        payloads[mach.id] = PointBatch(gmm(mach, mach.local_ids, k))
    inbox = cluster.gather_to_central(payloads, tag="malkomes/coreset")
    T = np.unique(np.concatenate([msg.payload.ids for msg in inbox]))
    centers = gmm(cluster.central, T, k)

    cluster.broadcast_points_from_central(centers, tag="malkomes/centers")
    r_payloads = {}
    for mach in cluster.machines:
        r_payloads[mach.id] = (
            float(mach.dist_to_set(mach.local_ids, centers).max())
            if mach.local_ids.size
            else 0.0
        )
    inbox = cluster.gather_to_central(r_payloads, tag="malkomes/radius")
    radius = max(float(msg.payload) for msg in inbox)
    return centers, radius


def malkomes_kcenter_outliers(
    cluster: MPCCluster, k: int, z: int
) -> Tuple[np.ndarray, float]:
    """Two-round 13-approximation MPC k-center with ``z`` outliers.

    Returns ``(centers, radius)`` where ``radius`` serves all but ``z``
    points (evaluated over the full input in two reporting rounds).
    """
    payloads = {}
    for mach in cluster.machines:
        T_i = gmm(mach, mach.local_ids, min(k + z, max(1, mach.local_ids.size)))
        if mach.local_ids.size:
            assign = mach.pairwise(mach.local_ids, T_i).argmin(axis=1)
            w = np.bincount(assign, minlength=T_i.size).astype(np.float64)
        else:
            w = np.zeros(T_i.size)
        payloads[mach.id] = PointBatch(T_i, {"w": w})
    inbox = cluster.gather_to_central(payloads, tag="malkomes-z/coreset")

    pieces, weights = [], []
    for msg in inbox:
        pieces.append(msg.payload.ids)
        weights.append(msg.payload.columns["w"])
    T = np.concatenate(pieces)
    W = np.concatenate(weights)
    # collapse duplicate coreset points, summing weights
    T, inv = np.unique(T, return_inverse=True)
    W = np.bincount(inv, weights=W)

    sub = _SubsetMetric(cluster.metric, T)
    local_centers, _ = charikar_kcenter_outliers(sub, min(k, T.size), z, weights=W)
    centers = T[local_centers]

    cluster.broadcast_points_from_central(centers, tag="malkomes-z/centers")
    d_payloads = {}
    for mach in cluster.machines:
        d_payloads[mach.id] = (
            mach.dist_to_set(mach.local_ids, centers)
            if mach.local_ids.size
            else np.zeros(0)
        )
    inbox = cluster.gather_to_central(d_payloads, tag="malkomes-z/dists")
    dmin = np.concatenate([np.asarray(msg.payload, dtype=np.float64) for msg in inbox])
    dmin.sort()
    radius = float(dmin[max(0, dmin.size - z - 1)]) if dmin.size else 0.0
    return centers, radius


class _SubsetMetric(Metric):
    """Metric restricted to an id subset, re-indexed 0..len-1."""

    def __init__(self, inner: Metric, ids: np.ndarray) -> None:
        self.inner = inner
        self.ids = np.asarray(ids, dtype=np.int64)
        self.n = self.ids.size
        self.chunk_budget = inner.chunk_budget

    def point_words(self) -> int:
        return self.inner.point_words()

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        return self.inner._pairwise_kernel(self.ids[I], self.ids[J])
