"""Sequential greedy maximal independent set on a threshold graph.

Scans vertices in a fixed (or shuffled) order and keeps every vertex
non-adjacent to the kept set.  Always produces a genuine MIS — the
reference against which the MPC k-bounded MIS contract is validated.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.metric.base import Metric


def greedy_mis(
    metric: Metric,
    vertices: Iterable[int],
    tau: float,
    rng: Optional[np.random.Generator] = None,
    limit: Optional[int] = None,
) -> np.ndarray:
    """Greedy MIS of ``G_τ`` induced on ``vertices``.

    Parameters
    ----------
    rng:
        Shuffle the scan order when provided (deterministic id order
        otherwise).
    limit:
        Stop once the set reaches this size (a *bounded* independent
        set; maximality is then not guaranteed).
    """
    V = np.unique(np.asarray(vertices, dtype=np.int64))
    if V.size == 0:
        return V
    if rng is not None:
        V = rng.permutation(V)
    kept = [int(V[0])]
    dist = metric.pairwise(V, [kept[0]])[:, 0]
    alive = dist > tau
    while limit is None or len(kept) < limit:
        cand = V[alive]
        if cand.size == 0:
            break
        nxt = int(cand[0])
        kept.append(nxt)
        alive &= metric.pairwise(V, [nxt])[:, 0] > tau
    return np.asarray(kept, dtype=np.int64)
