"""Sequential greedy dominating set (the classic ln(Δ)+1 set-cover
greedy), the reference baseline for the MPC dominating-set application."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.metric.base import Metric


def greedy_dominating_set(
    metric: Metric, tau: float, vertices: Iterable[int] | None = None
) -> np.ndarray:
    """Greedy max-coverage dominating set of ``G_τ``.

    Repeatedly picks the vertex whose closed τ-ball covers the most
    still-undominated vertices — an H(Δ+1)-approximation of γ(G_τ).
    O(n²) distance work; intended for n ≤ a few thousand.
    """
    V = (
        np.arange(metric.n, dtype=np.int64)
        if vertices is None
        else np.unique(np.asarray(vertices, dtype=np.int64))
    )
    if V.size == 0:
        return V
    cover = metric.pairwise(V, V) <= tau
    np.fill_diagonal(cover, True)  # a vertex dominates itself
    undominated = np.ones(V.size, dtype=bool)
    chosen: list[int] = []
    while undominated.any():
        gains = (cover & undominated[None, :]).sum(axis=1)
        pick = int(np.argmax(gains))
        chosen.append(int(V[pick]))
        undominated &= ~cover[pick]
    return np.asarray(sorted(chosen), dtype=np.int64)
