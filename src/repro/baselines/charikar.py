"""Charikar et al. 3-approximation for k-center with outliers
(SODA 2001), with the weighted variant used by the Malkomes et al.
13-approximation coreset pipeline.

For a candidate radius τ: greedily pick the point whose τ-ball covers
the most uncovered (weight), then discard everything in its *3τ*-ball;
after k picks, the instance is feasible iff the uncovered weight is
≤ z.  Binary-searching τ over the pairwise distances gives centers
covering all but z points within 3τ ≤ 3r*_z.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.metric.base import Metric


def _greedy_disks(
    D: np.ndarray, weights: np.ndarray, tau: float, k: int
) -> Tuple[np.ndarray, float]:
    """Greedy disk cover: k picks of max-uncovered-weight τ-balls, each
    removing its 3τ-ball.  Returns (centers, uncovered weight)."""
    n = D.shape[0]
    uncovered = np.ones(n, dtype=bool)
    centers = []
    ball = D <= tau
    ball3 = D <= 3.0 * tau
    for _ in range(k):
        if not uncovered.any():
            break
        gains = (ball & uncovered[None, :]) @ weights
        c = int(np.argmax(gains))
        centers.append(c)
        uncovered &= ~ball3[c]
    return np.asarray(centers, dtype=np.int64), float(weights[uncovered].sum())


def charikar_kcenter_outliers(
    metric: Metric,
    k: int,
    z: int,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float]:
    """3-approximation k-center ignoring up to ``z`` outliers.

    Parameters
    ----------
    weights:
        Optional point weights (a weighted point stands for that many
        unit points; ``z`` is then a weight budget).  Defaults to 1.

    Returns
    -------
    (centers, radius):
        ``radius`` is the service radius of the *inliers*: the maximum
        distance to a center after discarding the ``z`` heaviest-distance
        points (unit weights) or a ``z``-weight prefix (weighted).
    """
    n = metric.n
    if not (1 <= k <= n):
        raise ValueError("need 1 <= k <= n")
    if z < 0:
        raise ValueError("z must be non-negative")
    weights = (
        np.ones(n, dtype=np.float64)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    ids = np.arange(n, dtype=np.int64)
    D = metric.pairwise(ids, ids)
    radii = np.unique(D[np.triu_indices(n, k=1)]) if n > 1 else np.array([0.0])
    radii = np.concatenate([[0.0], radii])

    lo, hi = 0, radii.size - 1
    best_centers, _ = _greedy_disks(D, weights, radii[hi], k)
    while lo < hi:
        mid = (lo + hi) // 2
        centers, miss = _greedy_disks(D, weights, radii[mid], k)
        if miss <= z:
            best_centers, hi = centers, mid
        else:
            lo = mid + 1

    # service radius of the inliers
    dmin = D[:, best_centers].min(axis=1)
    order = np.argsort(dmin)
    cum = np.cumsum(weights[order[::-1]])
    drop = int(np.searchsorted(cum, z, side="right"))
    kept = order[: n - drop] if drop else order
    radius = float(dmin[kept].max()) if kept.size else 0.0
    return best_centers, radius
