"""Luby's classic randomized MIS (SIAM J. Comput. 1986), specialized to
threshold graphs.

Each round: every live vertex draws a uniform priority; local maxima
join the MIS; they and their neighbors leave the graph.  Terminates in
O(log n) rounds w.h.p.  Included as the reference point the paper's
``trim`` is a "local variant" of, and to measure how many rounds plain
Luby needs versus Algorithm 4's round-compressed loop.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import ConvergenceError
from repro.metric.base import Metric


def luby_mis(
    metric: Metric,
    vertices: Iterable[int],
    tau: float,
    rng: Optional[np.random.Generator] = None,
    max_rounds: int = 10_000,
) -> Tuple[np.ndarray, int]:
    """Luby's MIS on ``G_τ`` induced on ``vertices``.

    Returns ``(mis_ids, rounds_used)``.
    """
    rng = rng or np.random.default_rng(0)
    live = np.unique(np.asarray(vertices, dtype=np.int64))
    mis: list[int] = []
    rounds = 0
    while live.size:
        rounds += 1
        if rounds > max_rounds:
            raise ConvergenceError("luby_mis", max_rounds)
        prio = rng.random(live.size)
        # adjacency among live vertices (chunk if huge)
        adj = metric.pairwise(live, live) <= tau
        np.fill_diagonal(adj, False)
        rival = np.where(adj, prio[None, :], -np.inf).max(axis=1)
        winners = prio > rival
        chosen = live[winners]
        mis.extend(int(v) for v in chosen)
        # remove chosen and their neighbors
        near = adj[:, winners].any(axis=1)
        live = live[~(winners | near)]
    return np.asarray(sorted(mis), dtype=np.int64), rounds
