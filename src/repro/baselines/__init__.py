"""Baseline algorithms the paper positions itself against.

Sequential references:

* :mod:`repro.baselines.gonzalez` — GMM, the optimal sequential
  2-approximation for both problems (Gonzalez 1985; Ravi et al. 1994).
* :mod:`repro.baselines.hochbaum_shmoys` — parametric-pruning
  2-approximation for k-center and 3-approximation for k-supplier
  (Hochbaum & Shmoys 1985/1986).
* :mod:`repro.baselines.charikar` — 3-approximation k-center with
  outliers (Charikar et al. 2001), plus its weighted variant.
* :mod:`repro.baselines.exact` — brute-force optima for small
  instances (ratio denominators).
* :mod:`repro.baselines.greedy_mis` / :mod:`repro.baselines.luby` —
  reference MIS constructions on threshold graphs.

MPC baselines:

* :mod:`repro.baselines.malkomes` — 2-round 4-approximation k-center
  via GMM coresets (Malkomes et al. 2015) and the 13-approximation
  outlier variant.
* :mod:`repro.baselines.indyk` — 6-approximation diversity via
  3-composable GMM coresets (Indyk et al. 2014).
* :mod:`repro.baselines.ene` — sampling-style MapReduce k-center in the
  spirit of Ene et al. 2011.
* :mod:`repro.baselines.ksupplier_seq` — sequential 3-approximation
  k-supplier reference.
"""

from repro.baselines.charikar import charikar_kcenter_outliers
from repro.baselines.ene import ene_sampling_kcenter
from repro.baselines.exact import exact_diversity, exact_kcenter, exact_ksupplier
from repro.baselines.gonzalez import gonzalez_diversity, gonzalez_kcenter
from repro.baselines.greedy_dominating import greedy_dominating_set
from repro.baselines.greedy_mis import greedy_mis
from repro.baselines.hochbaum_shmoys import hochbaum_shmoys_kcenter
from repro.baselines.indyk import indyk_diversity
from repro.baselines.ksupplier_seq import hochbaum_shmoys_ksupplier
from repro.baselines.luby import luby_mis
from repro.baselines.malkomes import malkomes_kcenter, malkomes_kcenter_outliers
from repro.baselines.streaming import streaming_kcenter

__all__ = [
    "gonzalez_kcenter",
    "gonzalez_diversity",
    "hochbaum_shmoys_kcenter",
    "hochbaum_shmoys_ksupplier",
    "charikar_kcenter_outliers",
    "exact_kcenter",
    "exact_diversity",
    "exact_ksupplier",
    "greedy_mis",
    "greedy_dominating_set",
    "luby_mis",
    "malkomes_kcenter",
    "malkomes_kcenter_outliers",
    "indyk_diversity",
    "ene_sampling_kcenter",
    "streaming_kcenter",
]
