"""Indyk et al. (PODC 2014): composable-coreset diversity maximization.

Each machine's GMM output is a 3-composable coreset for remote-edge
diversity; running GMM again on the union of coresets gives a
6-approximation in two MPC rounds — the state of the art the paper's
Algorithm 2 improves from 6 to 2+ε.

(The paper's own lines 1–3 additionally take the max with the local
diversities, which is what sharpens 6 to 4; this baseline deliberately
omits that to reproduce the genuine Indyk et al. bound.)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.gmm import gmm
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def indyk_diversity(cluster: MPCCluster, k: int) -> Tuple[np.ndarray, float]:
    """Two-round 6-approximation MPC k-diversity.

    Returns ``(subset, diversity)``.
    """
    if k < 2:
        raise ValueError("diversity needs k >= 2")
    payloads = {}
    for mach in cluster.machines:
        payloads[mach.id] = PointBatch(gmm(mach, mach.local_ids, k))
    inbox = cluster.gather_to_central(payloads, tag="indyk/coreset")
    T = np.unique(np.concatenate([msg.payload.ids for msg in inbox]))
    subset = gmm(cluster.central, T, k)
    div = float(cluster.central.diversity(subset)) if subset.size >= 2 else 0.0
    return subset, div
