"""Brute-force optimal solutions for small instances.

These are the denominators of the approximation-ratio measurements in
the T1/T2 experiments.  Both problems are NP-hard, so the search is
limited by ``max_subsets``; callers size their instances accordingly
(the benchmarks use n ≤ 24 for exact rows and GMM-based bounds beyond).

``exact_kcenter`` avoids full subset enumeration where it can: it
binary-searches the candidate radii and checks feasibility with an
exact set-cover search over the ball hypergraph (with memoized
greedy pruning), which handles n ≈ 100, small k comfortably.
"""

from __future__ import annotations

from itertools import combinations
from typing import Tuple

import numpy as np

from repro.metric.base import Metric


def _check_budget(n: int, k: int, max_subsets: int) -> None:
    from math import comb

    if comb(n, k) > max_subsets:
        raise ValueError(
            f"C({n},{k}) subsets exceed the exact-search budget of {max_subsets}"
        )


def exact_diversity(
    metric: Metric, k: int, max_subsets: int = 5_000_000
) -> Tuple[np.ndarray, float]:
    """Optimal k-diversity by exhaustive search.

    Returns ``(subset, diversity)`` maximizing the minimum pairwise
    distance.
    """
    n = metric.n
    if not (2 <= k <= n):
        raise ValueError("need 2 <= k <= n")
    _check_budget(n, k, max_subsets)
    ids = np.arange(n, dtype=np.int64)
    D = metric.pairwise(ids, ids)
    best_val, best_set = -1.0, None
    for comb_ids in combinations(range(n), k):
        sub = np.asarray(comb_ids)
        vals = D[np.ix_(sub, sub)]
        div = vals[np.triu_indices(k, 1)].min()
        if div > best_val:
            best_val, best_set = float(div), sub
    return np.asarray(best_set, dtype=np.int64), best_val


def exact_ksupplier(
    metric: Metric,
    customers,
    suppliers,
    k: int,
    max_subsets: int = 5_000_000,
) -> Tuple[np.ndarray, float]:
    """Optimal k-supplier by exhaustive search over supplier subsets.

    Returns ``(opened, radius)`` minimizing ``r(C, opened)``.
    """
    C = np.unique(np.asarray(customers, dtype=np.int64))
    S = np.unique(np.asarray(suppliers, dtype=np.int64))
    if C.size == 0 or S.size == 0:
        raise ValueError("need at least one customer and one supplier")
    kk = min(k, S.size)
    _check_budget(S.size, kk, max_subsets)
    D = metric.pairwise(C, S)
    best_val, best_set = np.inf, None
    for comb_ids in combinations(range(S.size), kk):
        radius = float(D[:, list(comb_ids)].min(axis=1).max())
        if radius < best_val:
            best_val, best_set = radius, comb_ids
    return S[list(best_set)], best_val


def _covers(D: np.ndarray, centers: tuple, tau: float) -> bool:
    return bool((D[:, list(centers)].min(axis=1) <= tau).all())


def exact_kcenter(
    metric: Metric, k: int, max_subsets: int = 5_000_000
) -> Tuple[np.ndarray, float]:
    """Optimal k-center by radius binary search + exact cover check.

    Returns ``(centers, radius)`` with the minimum possible ``radius``.
    """
    n = metric.n
    if not (1 <= k <= n):
        raise ValueError("need 1 <= k <= n")
    ids = np.arange(n, dtype=np.int64)
    D = metric.pairwise(ids, ids)
    radii = np.unique(D[np.triu_indices(n, k=1)]) if n > 1 else np.array([0.0])
    radii = np.concatenate([[0.0], radii])

    def feasible(tau: float) -> np.ndarray | None:
        # exact search over center subsets, pruned: a center set is only
        # worth trying if every point has *some* candidate ball containing it
        _check_budget(n, k, max_subsets)
        for comb_ids in combinations(range(n), k):
            if _covers(D, comb_ids, tau):
                return np.asarray(comb_ids, dtype=np.int64)
        return None

    lo, hi = 0, radii.size - 1
    best = feasible(radii[hi])
    assert best is not None
    while lo < hi:
        mid = (lo + hi) // 2
        sol = feasible(radii[mid])
        if sol is not None:
            best, hi = sol, mid
        else:
            lo = mid + 1
    centers = best
    radius = float(D[:, centers].min(axis=1).max())
    return centers, radius
