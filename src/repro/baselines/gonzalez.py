"""Sequential GMM baselines (Gonzalez 1985; Ravi et al. 1994).

GMM is the optimal-factor sequential algorithm for both problems: a
2-approximation for k-center and for k-diversity.  These are the
quality anchors every MPC row in the T1/T2 experiments is compared to.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.gmm import gmm
from repro.metric.base import Metric


def gonzalez_kcenter(
    metric: Metric, k: int, start: Optional[int] = None
) -> Tuple[np.ndarray, float]:
    """Sequential 2-approximation k-center.

    Returns ``(centers, radius)`` with ``radius = r(V, centers)``.
    """
    ids = np.arange(metric.n, dtype=np.int64)
    centers = gmm(metric, ids, k, start=start)
    radius = float(metric.dist_to_set(ids, centers).max())
    return centers, radius


def gonzalez_diversity(
    metric: Metric, k: int, start: Optional[int] = None
) -> Tuple[np.ndarray, float]:
    """Sequential 2-approximation k-diversity (the same GMM output).

    Returns ``(subset, diversity)``.
    """
    if k < 2:
        raise ValueError("diversity needs k >= 2")
    ids = np.arange(metric.n, dtype=np.int64)
    subset = gmm(metric, ids, k, start=start)
    return subset, float(metric.diversity(subset))
