"""Analysis sweeps: jobs-of-jobs with scoring, ranking, recommendation.

One :class:`SweepSpec` names axis lists (datasets, solvers, k values,
epsilons, partitioners, trim modes, seeds); the
:class:`SweepManager` expands the Cartesian product into a
deterministic fan-out of plain jobs, runs them through the existing
service machinery (result cache, retries, faults, tracing), scores
every cell against the tightest available quality reference, and
attaches a ranked report with an explicit recommendation and a
JSON + ASCII Pareto frontier.

Quickstart (in-memory, synchronous)::

    import numpy as np
    from repro.service import JobManager, DatasetRegistry, open_stores
    from repro.sweeps import SweepManager, SweepSpec

    stores = open_stores()
    datasets = DatasetRegistry(stores.datasets)
    ds = datasets.register_points(
        np.random.default_rng(0).normal(size=(64, 2)), metric="euclidean"
    )
    jobs = JobManager(datasets, stores=stores, workers=2).start()
    sweeps = SweepManager(jobs).start()
    spec = SweepSpec(datasets=[ds.id], solvers=["kcenter", "gonzalez"],
                     ks=[4, 8])
    record = sweeps.submit(spec)
    record = sweeps.wait(record.id, timeout=120)
    report = sweeps.report(record.id)
    report["recommendation"]["reason"]

Reports are byte-identical for a fixed spec: same grid expansion
order, same cell results, same ranking — no matter which process
(CLI, HTTP frontend, restarted worker) produced them.  See
``docs/sweeps.md``.
"""

from repro.service.store import AnalysisRecord, AnalysisStore, UnknownAnalysisError
from repro.sweeps.manager import AnalysisNotReady, SweepManager
from repro.sweeps.scoring import (
    FRONTIER_AXES,
    RANKING_AXES,
    ascii_frontier,
    build_report,
    pareto_frontier,
    quality_ratio,
    rank_cells,
    recommend,
    reference_for,
    score_cell,
)
from repro.sweeps.spec import MAX_CELLS, SWEEPABLE_SOLVERS, SweepSpec

__all__ = [
    "AnalysisNotReady",
    "AnalysisRecord",
    "AnalysisStore",
    "FRONTIER_AXES",
    "MAX_CELLS",
    "RANKING_AXES",
    "SWEEPABLE_SOLVERS",
    "SweepManager",
    "SweepSpec",
    "UnknownAnalysisError",
    "ascii_frontier",
    "build_report",
    "pareto_frontier",
    "quality_ratio",
    "rank_cells",
    "recommend",
    "reference_for",
    "score_cell",
]
