"""Sweep specification: the validated description of one analysis grid.

A :class:`SweepSpec` is what travels in a ``POST /v1/analyses`` body
(and what ``repro sweep`` builds from its flags).  It names axis
*lists* — datasets, solvers, k values, epsilons, partitioners, trim
modes, seeds — and :meth:`~SweepSpec.grid` expands their Cartesian
product into cells in one documented, deterministic order::

    itertools.product(datasets, solvers, ks, epss, partitions,
                      trim_modes, seeds)

i.e. the last axis varies fastest.  Cell index = position in that
product.  Everything downstream — cell job submission, scoring,
ranking, the Pareto frontier — keys off this order, which is what makes
a seeded sweep's report byte-identical no matter which process
expands it.

The metric axis is expressed through *datasets*: the same points
registered under two metrics are two dataset ids (the registry
fingerprints the metric), so a metric sweep is just a multi-dataset
sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.api import SOLVER_OBJECTIVES, SOLVERS
from repro.service.spec import (
    CONSTANT_PRESETS,
    OUTLIER_SOLVERS,
    PARTITIONS,
    TRIM_MODES,
    JobSpec,
)

#: hard cap on grid size — one sweep may not fan out more cells than
#: this (keeps a single POST from monopolizing the work queue)
MAX_CELLS = 512

#: solvers a sweep may request: everything in SOLVERS except
#: ksupplier, which needs per-dataset customer/supplier id sets that
#: do not grid
SWEEPABLE_SOLVERS = tuple(
    name for name in SOLVERS if name != "ksupplier"
)


def _as_list(value, name: str) -> list:
    """Accept a scalar or a sequence for an axis; always return a list."""
    if value is None:
        raise ValueError(f"sweep axis {name!r} must not be null")
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        return [value]
    out = list(value)
    if not out:
        raise ValueError(f"sweep axis {name!r} must not be empty")
    return out


def _no_duplicates(values: list, name: str) -> list:
    if len(set(values)) != len(values):
        raise ValueError(f"sweep axis {name!r} has duplicate entries: {values}")
    return values


@dataclass
class SweepSpec:
    """Parameters of one analysis sweep (a grid of solver runs).

    ``datasets`` are registry ids (``ds-…``); ``solvers`` are
    :data:`repro.api.SOLVERS` names (``ksupplier`` excluded).  Scalar
    convenience is accepted on every axis (``ks=4`` ≡ ``ks=[4]``).
    """

    datasets: List[str]
    solvers: List[str]
    ks: List[int]
    epss: List[float] = field(default_factory=lambda: [0.1])
    partitions: List[str] = field(default_factory=lambda: ["random"])
    trim_modes: List[str] = field(default_factory=lambda: ["random"])
    seeds: List[int] = field(default_factory=lambda: [0])
    machines: Optional[int] = None
    constants: str = "practical"
    #: outlier budget, applied to the outlier-capable solvers only
    outliers: Optional[int] = None
    #: per-cell wall-clock budget (JobSpec.timeout_s)
    timeout_s: Optional[float] = None
    #: per-cell retry budget (JobSpec.max_retries)
    max_retries: Optional[int] = None
    #: free-form label, echoed in records and reports
    name: str = ""

    def __post_init__(self) -> None:
        self.datasets = _no_duplicates(
            [str(d) for d in _as_list(self.datasets, "datasets")], "datasets"
        )
        self.solvers = _no_duplicates(
            [str(s).lower() for s in _as_list(self.solvers, "solvers")], "solvers"
        )
        for solver in self.solvers:
            if solver not in SOLVERS:
                raise ValueError(
                    f"unknown solver {solver!r}; expected one of "
                    f"{', '.join(sorted(SWEEPABLE_SOLVERS))}"
                )
            if solver not in SWEEPABLE_SOLVERS:
                raise ValueError(
                    f"solver {solver!r} is not sweepable (it needs "
                    "customer/supplier id sets); submit it as a plain job"
                )
        self.ks = _no_duplicates(
            [int(k) for k in _as_list(self.ks, "ks")], "ks"
        )
        for k in self.ks:
            if k < 1:
                raise ValueError(f"every k must be >= 1, got {k}")
        self.epss = _no_duplicates(
            [float(e) for e in _as_list(self.epss, "epss")], "epss"
        )
        for eps in self.epss:
            if eps <= 0:
                raise ValueError(f"every eps must be > 0, got {eps}")
        self.partitions = _no_duplicates(
            [str(p) for p in _as_list(self.partitions, "partitions")], "partitions"
        )
        for part in self.partitions:
            if part not in PARTITIONS:
                raise ValueError(
                    f"unknown partition {part!r}; expected one of "
                    f"{', '.join(PARTITIONS)}"
                )
        self.trim_modes = _no_duplicates(
            [str(t) for t in _as_list(self.trim_modes, "trim_modes")], "trim_modes"
        )
        for mode in self.trim_modes:
            if mode not in TRIM_MODES:
                raise ValueError(
                    f"unknown trim_mode {mode!r}; expected one of "
                    f"{', '.join(TRIM_MODES)}"
                )
        self.seeds = _no_duplicates(
            [int(s) for s in _as_list(self.seeds, "seeds")], "seeds"
        )
        if self.machines is not None:
            self.machines = int(self.machines)
            if self.machines < 1:
                raise ValueError(f"machines must be >= 1, got {self.machines}")
        if self.constants not in CONSTANT_PRESETS:
            raise ValueError(
                f"unknown constants preset {self.constants!r}; expected one of "
                f"{', '.join(CONSTANT_PRESETS)}"
            )
        if self.outliers is not None:
            self.outliers = int(self.outliers)
            if self.outliers < 0:
                raise ValueError(f"outliers must be >= 0, got {self.outliers}")
            if not any(s in OUTLIER_SOLVERS for s in self.solvers):
                raise ValueError(
                    "outliers set but no outlier-capable solver in the sweep "
                    f"(expected one of {', '.join(OUTLIER_SOLVERS)})"
                )
        if self.timeout_s is not None:
            self.timeout_s = float(self.timeout_s)
            if self.timeout_s <= 0:
                raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_retries is not None:
            self.max_retries = int(self.max_retries)
            if self.max_retries < 0:
                raise ValueError(
                    f"max_retries must be >= 0, got {self.max_retries}"
                )
        self.name = str(self.name)
        n_cells = self.cell_count
        if n_cells > MAX_CELLS:
            raise ValueError(
                f"sweep expands to {n_cells} cells, over the {MAX_CELLS}-cell "
                "limit; split it into smaller sweeps"
            )

    @property
    def cell_count(self) -> int:
        return (
            len(self.datasets) * len(self.solvers) * len(self.ks)
            * len(self.epss) * len(self.partitions) * len(self.trim_modes)
            * len(self.seeds)
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        """Build from a JSON body, rejecting unknown fields loudly."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(known))}"
            )
        for required in ("datasets", "solvers", "ks"):
            if required not in payload:
                raise ValueError(
                    "a sweep needs at least 'datasets', 'solvers', and 'ks'"
                )
        return cls(**payload)

    def to_dict(self) -> dict:
        """JSON-safe canonical echo of the spec (the stored form)."""
        return {
            "datasets": list(self.datasets),
            "solvers": list(self.solvers),
            "ks": list(self.ks),
            "epss": list(self.epss),
            "partitions": list(self.partitions),
            "trim_modes": list(self.trim_modes),
            "seeds": list(self.seeds),
            "machines": self.machines,
            "constants": self.constants,
            "outliers": self.outliers,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "name": self.name,
        }

    def grid(self) -> List[dict]:
        """The expanded cells, in the canonical order (see module
        docstring).  Each entry carries its axis values, its ``index``,
        and the solver's ``objective`` (what it gets scored against)."""
        cells = []
        product = itertools.product(
            self.datasets, self.solvers, self.ks, self.epss,
            self.partitions, self.trim_modes, self.seeds,
        )
        for index, (dataset, solver, k, eps, partition, trim, seed) in enumerate(
            product
        ):
            cells.append(
                {
                    "index": index,
                    "dataset": dataset,
                    "solver": solver,
                    "k": k,
                    "eps": eps,
                    "partition": partition,
                    "trim_mode": trim,
                    "seed": seed,
                    "objective": SOLVER_OBJECTIVES[solver],
                }
            )
        return cells

    def cell_job_spec(self, cell: dict, tags: Optional[dict] = None) -> JobSpec:
        """The :class:`~repro.service.spec.JobSpec` for one grid cell."""
        outliers = (
            self.outliers if cell["solver"] in OUTLIER_SOLVERS else None
        )
        return JobSpec(
            algorithm=cell["solver"],
            dataset=cell["dataset"],
            k=cell["k"],
            eps=cell["eps"],
            machines=self.machines,
            seed=cell["seed"],
            partition=cell["partition"],
            trim_mode=cell["trim_mode"],
            constants=self.constants,
            outliers=outliers,
            timeout_s=self.timeout_s,
            max_retries=self.max_retries,
            tags=dict(tags) if tags else {},
        )
