"""The sweep manager: jobs-of-jobs over a :class:`JobManager`.

``submit`` expands a validated :class:`~repro.sweeps.spec.SweepSpec`
into its deterministic cell grid, submits every cell as a plain job
through the existing :class:`~repro.service.jobs.JobManager` (the
result cache dedupes shared grid cells; retries, fault injection, and
lease-based orphan recovery all ride along unchanged), and persists an
:class:`~repro.service.store.AnalysisRecord` referencing the cell job
ids in expansion order.

Finalization is decoupled from submission: *any* process sharing the
store bundle — the submitting frontend, a ``--role worker`` fleet
member, a later restart — observes "every cell terminal" through its
sweeper thread, scores the cells (:mod:`repro.sweeps.scoring`), and
attaches the ranked report with a compare-and-set
(:meth:`~repro.service.store.AnalysisStore.finalize`).  Exactly one
finalizer wins the CAS; since the report is a pure function of the
spec and the (bit-identical) cell results, the race is invisible in
the output.

Ordering guarantee: every cell job is submitted *before* the analysis
record is created, so a persisted analysis always references its full
grid — there is no partially-submitted durable state to recover.

Tracing: one trace id spans the whole fan-out.  The analysis takes a
child context of the submitting request (``analysis``), and every cell
job gets a ``cell-<index>`` child of that — so the Chrome export shows
the entire grid under a single trace id, one span subtree per cell.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceContext
from repro.service.jobs import JobManager
from repro.service.store import (
    AnalysisRecord,
    AnalysisStore,
    QueueFullError,
    UnknownAnalysisError,
    UnknownJobError,
)
from repro.sweeps.scoring import build_report, reference_for
from repro.sweeps.spec import SweepSpec


class AnalysisNotReady(RuntimeError):
    """The analysis has no report yet (still running)."""


class SweepManager:
    """Submits, tracks, and finalizes analysis sweeps.

    One instance per process; frontends use it to submit and serve,
    workers run only its sweeper thread so a killed frontend's (or
    killed worker's) analyses still get finalized by whoever is left.
    """

    def __init__(
        self,
        jobs: JobManager,
        *,
        poll_s: float = 0.2,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.jobs = jobs
        self.store: AnalysisStore = jobs.stores.analyses
        self.poll_s = float(poll_s)
        self.metrics = metrics if metrics is not None else jobs.metrics
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed: Dict[str, int] = {}
        self._cell_outcomes: Dict[str, int] = {}
        self._stop = threading.Event()
        self._sweeper: Optional[threading.Thread] = None
        self._wakeups: Dict[str, threading.Event] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SweepManager":
        """Start the background sweeper (idempotent)."""
        if self._sweeper is None or not self._sweeper.is_alive():
            self._stop.clear()
            self._sweeper = threading.Thread(
                target=self._sweep_loop, name="analysis-sweeper", daemon=True
            )
            self._sweeper.start()
        return self

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        sweeper = self._sweeper
        if wait and sweeper is not None and sweeper.is_alive():
            sweeper.join(timeout=5.0)
        self._sweeper = None

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.poll_s):
            try:
                self.advance_now()
            except Exception:  # noqa: BLE001 - the sweeper must survive
                pass

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self, spec: SweepSpec, trace: Optional[TraceContext] = None
    ) -> AnalysisRecord:
        """Expand the grid, submit every cell job, persist the record.

        Raises :class:`~repro.service.datasets.UnknownDatasetError` when
        a swept dataset id is unregistered (before anything is
        submitted) and :class:`QueueFullError` when the work queue
        cannot absorb the whole grid — already-submitted cells are then
        best-effort cancelled and no analysis record is left behind.
        """
        for ds_id in spec.datasets:
            self.jobs.datasets.get(ds_id)  # raises UnknownDatasetError

        base = trace if trace is not None else TraceContext.generate()
        analysis_trace = base.child("analysis")
        analysis_id = self.store.next_analysis_id()
        grid = spec.grid()

        cell_job_ids: List[str] = []
        try:
            for cell in grid:
                job_spec = spec.cell_job_spec(
                    cell,
                    tags={"analysis": analysis_id, "cell": cell["index"]},
                )
                job = self.jobs.submit(
                    job_spec,
                    trace=analysis_trace.child(f"cell-{cell['index']:04d}"),
                )
                cell_job_ids.append(job.id)
        except QueueFullError:
            for job_id in cell_job_ids:
                try:
                    self.jobs.cancel(job_id)
                except Exception:  # noqa: BLE001 - cleanup is best-effort
                    pass
            raise QueueFullError(
                f"work queue cannot absorb the sweep's {len(grid)} cells; "
                "retry later or split the grid"
            ) from None

        record = AnalysisRecord(
            id=analysis_id,
            spec=spec.to_dict(),
            state="running",
            created_at=time.time(),
            cell_job_ids=cell_job_ids,
            trace_id=analysis_trace.trace_id,
            traceparent=analysis_trace.to_traceparent(),
        )
        created = self.store.create(record)
        with self._lock:
            self._submitted += 1
        self._count_cells("submitted", len(grid))
        self.metrics.counter(
            "repro_sweeps_submitted_total", "analysis sweeps admitted"
        ).inc()
        # cache-hit-only sweeps (and tiny grids already drained) finish
        # without a single sweeper tick
        finalized = self._try_finalize(created)
        return finalized if finalized is not None else created

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def get(self, analysis_id: str) -> AnalysisRecord:
        return self.store.get(analysis_id)

    def list_records(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[AnalysisRecord], Optional[str]]:
        return self.store.list(state=state, limit=limit, cursor=cursor)

    def report(self, analysis_id: str) -> dict:
        """The finished analysis' ranked report.

        Raises :class:`AnalysisNotReady` while the sweep is running and
        when it failed before producing a report.
        """
        record = self.store.get(analysis_id)
        if record.report is None:
            raise AnalysisNotReady(
                f"analysis {analysis_id} has no report (state: {record.state})"
            )
        return record.report

    def wait(self, analysis_id: str, timeout: Optional[float] = None) -> AnalysisRecord:
        """Block until the analysis reaches a terminal state."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        event = threading.Event()
        with self._lock:
            self._wakeups[analysis_id] = event
        try:
            while True:
                record = self.store.get(analysis_id)
                if record.terminal:
                    return record
                self.advance_now()
                record = self.store.get(analysis_id)
                if record.terminal:
                    return record
                remaining = (
                    deadline - time.monotonic() if deadline is not None else 0.05
                )
                if deadline is not None and remaining <= 0:
                    raise TimeoutError(
                        f"analysis {analysis_id} still {record.state} "
                        f"after {timeout}s"
                    )
                event.wait(min(0.05, max(remaining, 0.001)))
        finally:
            with self._lock:
                self._wakeups.pop(analysis_id, None)

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def advance_now(self) -> int:
        """Finalize every running analysis whose cells are all terminal;
        returns how many this call finalized."""
        finalized = 0
        running, _ = self.store.list(state="running")
        for record in running:
            if self._try_finalize(record) is not None:
                finalized += 1
        return finalized

    def _cell_outcome(self, job_id: str) -> Optional[dict]:
        """Distill one cell job record; ``None`` while non-terminal."""
        try:
            rec = self.jobs.stores.jobs.get(job_id)
        except UnknownJobError:
            # the job table's bounded history pruned the record before
            # finalization — score the cell as lost
            return {
                "state": "failed",
                "result": None,
                "error": f"cell job {job_id} no longer in the job table",
            }
        if rec.state not in ("done", "failed", "cancelled"):
            return None
        if rec.state == "done":
            return {"state": "done", "result": rec.result, "error": None}
        return {
            "state": "failed",
            "result": None,
            "error": rec.error or f"cell job {job_id} {rec.state}",
        }

    def _try_finalize(self, record: AnalysisRecord) -> Optional[AnalysisRecord]:
        if record.state != "running":
            return None
        outcomes = []
        for job_id in record.cell_job_ids:
            outcome = self._cell_outcome(job_id)
            if outcome is None:
                return None
            outcomes.append(outcome)

        spec = SweepSpec.from_dict(record.spec)
        grid = spec.grid()
        references: Dict[Tuple[str, str, int], Tuple[float, str]] = {}

        def resolve(dataset_id: str, objective: str, k: int) -> Tuple[float, str]:
            key = (dataset_id, objective, k)
            if key not in references:
                dataset = self.jobs.datasets.get(dataset_id)
                references[key] = reference_for(dataset.metric, objective, k)
            return references[key]

        report = build_report(record.spec, grid, outcomes, resolve)
        done_cells = report["counts"].get("done", 0)
        record.report = report
        record.state = "done" if done_cells > 0 else "failed"
        if record.state == "failed":
            record.error = "every cell job failed"
        record.finished_at = time.time()
        final = self.store.finalize(record)
        if final is None:
            return None  # another sweeper won the CAS (identical report)
        with self._lock:
            self._completed[final.state] = self._completed.get(final.state, 0) + 1
            event = self._wakeups.get(final.id)
        for cell in report["cells"]:
            self._count_cells(cell["state"], 1)
        self.metrics.counter(
            "repro_sweeps_completed_total", "analysis sweeps finalized",
            labels=("state",),
        ).labels(final.state).inc()
        if event is not None:
            event.set()
        return final

    def _count_cells(self, outcome: str, amount: int) -> None:
        with self._lock:
            self._cell_outcomes[outcome] = (
                self._cell_outcomes.get(outcome, 0) + amount
            )
        self.metrics.counter(
            "repro_sweep_cells_total", "sweep cells by outcome",
            labels=("outcome",),
        ).labels(outcome).inc(amount)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        by_state = {s: 0 for s in ("running", "done", "failed")}
        by_state.update(self.store.count_by_state())
        with self._lock:
            return {
                "analyses_submitted_total": self._submitted,
                "analyses_by_state": by_state,
                "analyses_completed_total": dict(self._completed),
                "cells_total": dict(self._cell_outcomes),
            }

    def sync_metrics(self) -> MetricsRegistry:
        """Mirror fleet-wide analysis state into the registry (the
        counters are incremented inline; the by-state gauge follows the
        shared store, so every process scrapes the same truth)."""
        stats = self.stats()
        gauge = self.metrics.gauge(
            "repro_sweeps_by_state", "analyses per lifecycle state",
            labels=("state",),
        )
        for state, count in stats["analyses_by_state"].items():
            gauge.labels(state).set(count)
        return self.metrics
