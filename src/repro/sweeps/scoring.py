"""Scoring, ranking, recommendation, and the Pareto frontier.

Everything in this module is a pure function of (sweep spec, cell
outcomes, quality references) — no wall clock, no job ids, no trace
ids.  That is a hard requirement: the ranked report must be
**byte-identical** across the CLI and HTTP paths, across a worker kill
and restart, and across re-finalization by a different process.
Wall-clock timings live on the cell *job* records
(``GET /v1/jobs/<id>``), not in the report.

Scoring model
-------------

Each done cell gets a quality **ratio** against the tightest available
reference for its ``(dataset, objective, k)``:

* ``kcenter``-objective solvers return a radius; ``ratio = radius /
  reference`` where the reference is the exact optimal radius (brute
  force, small instances) or the certified GMM lower bound —
  see :mod:`repro.analysis.ratios`.  Lower is better, 1.0 is optimal.
* ``diversity`` solvers return a diversity; ``ratio = reference /
  diversity`` (the reference is the exact optimum or the certified
  upper bound), so again lower is better and 1.0 is optimal.

Cost is measured in MPC **rounds**, communication **words**, and
distance-**oracle calls**, straight off each cell's ledger.

The ranking sorts by ``(ratio, rounds, words, oracle_calls, index)``
ascending — quality first, then cheaper cells, with the grid index as
the final deterministic tie-break.  The recommendation is the ranking's
head.  The Pareto frontier is the set of done cells not dominated on
``(ratio, rounds, words)`` — a cell dominates another if it is no worse
on all three and strictly better on at least one.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.ratios import diversity_ratio, kcenter_ratio
from repro.metric.base import Metric

#: ranking sort axes, in priority order (documented in docs/sweeps.md)
RANKING_AXES = ("ratio", "rounds", "words", "oracle_calls", "index")

#: frontier dominance axes
FRONTIER_AXES = ("ratio", "rounds", "words")

#: a reference resolver: (dataset_id, objective, k) → (reference, kind)
ReferenceResolver = Callable[[str, str, int], Tuple[float, str]]


def reference_for(metric: Metric, objective: str, k: int) -> Tuple[float, str]:
    """The quality reference for one ``(metric, objective, k)``:
    exact optimum on small instances, certified bound otherwise.

    For k-center the reference is the ratio *denominator* (optimal
    radius or lower bound); for diversity it is the *numerator* (optimal
    diversity or upper bound).  Either way ``ratio ≥ 1`` with equality
    at the optimum, so one "lower is better" scale serves both
    objectives.
    """
    if objective == "kcenter":
        probe = kcenter_ratio(metric, 0.0, k)
        return float(probe.reference), probe.reference_kind
    if objective == "diversity":
        probe = diversity_ratio(metric, 1.0, k)
        return float(probe.value), probe.reference_kind
    raise ValueError(f"unscorable objective {objective!r}")


def quality_ratio(value: float, reference: float, objective: str) -> Optional[float]:
    """The cell's quality ratio, or ``None`` when it is not finite
    (degenerate zero references/values) — ``None`` ranks last."""
    if objective == "kcenter":
        num, den = value, reference
    else:
        num, den = reference, value
    if den == 0.0:
        return 1.0 if num == 0.0 else None
    ratio = num / den
    return ratio if math.isfinite(ratio) else None


def score_cell(cell: dict, outcome: dict, resolve: ReferenceResolver) -> dict:
    """One scored report cell: the grid axes plus outcome and scores.

    ``outcome`` is ``{"state": ..., "result": payload-or-None,
    "error": ...}`` distilled from the cell's job record.
    """
    scored = {
        "index": cell["index"],
        "dataset": cell["dataset"],
        "solver": cell["solver"],
        "k": cell["k"],
        "eps": cell["eps"],
        "partition": cell["partition"],
        "trim_mode": cell["trim_mode"],
        "seed": cell["seed"],
        "objective": cell["objective"],
        "state": outcome["state"],
        "value": None,
        "ratio": None,
        "reference": None,
        "reference_kind": None,
        "rounds": None,
        "words": None,
        "oracle_calls": None,
        "oracle_evaluations": None,
    }
    if outcome.get("error"):
        scored["error"] = str(outcome["error"])
    payload = outcome.get("result")
    if outcome["state"] != "done" or payload is None:
        return scored
    record = payload["record"]
    mpc = payload["mpc_stats"]
    oracle = payload["oracle"]
    value = float(
        record["radius"] if cell["objective"] == "kcenter"
        else record["diversity"]
    )
    reference, kind = resolve(cell["dataset"], cell["objective"], cell["k"])
    scored.update(
        {
            "value": value,
            "ratio": quality_ratio(value, reference, cell["objective"]),
            "reference": reference,
            "reference_kind": kind,
            "rounds": int(mpc["rounds"]),
            "words": int(mpc["total_words"]),
            "oracle_calls": int(oracle["calls"]),
            "oracle_evaluations": int(oracle["evaluations"]),
        }
    )
    return scored


def _rank_key(cell: dict):
    ratio = cell["ratio"]
    return (
        ratio is None,
        ratio if ratio is not None else 0.0,
        cell["rounds"],
        cell["words"],
        cell["oracle_calls"],
        cell["index"],
    )


def rank_cells(cells: List[dict]) -> List[int]:
    """Done-cell indices, best first (see module docstring for the key)."""
    done = [c for c in cells if c["state"] == "done"]
    return [c["index"] for c in sorted(done, key=_rank_key)]


def _dominates(a: dict, b: dict) -> bool:
    """True iff ``a`` is no worse than ``b`` on every frontier axis and
    strictly better on at least one (``None`` ratios never dominate)."""
    if a["ratio"] is None:
        return False
    if b["ratio"] is None:
        return True
    axes_a = (a["ratio"], a["rounds"], a["words"])
    axes_b = (b["ratio"], b["rounds"], b["words"])
    return all(x <= y for x, y in zip(axes_a, axes_b)) and axes_a != axes_b


def pareto_frontier(cells: List[dict]) -> List[int]:
    """Indices of done cells not dominated on ``(ratio, rounds, words)``,
    in grid order."""
    done = [c for c in cells if c["state"] == "done"]
    out = []
    for cell in done:
        if not any(_dominates(other, cell) for other in done if other is not cell):
            out.append(cell["index"])
    return out


def ascii_frontier(
    cells: List[dict], frontier: List[int], width: int = 57, height: int = 11
) -> str:
    """A deterministic ASCII scatter of quality (ratio, y, lower is
    better) vs. MPC rounds (x): ``*`` marks frontier cells, ``.`` the
    dominated ones.  Degenerate spans collapse to one row/column."""
    plotted = [
        c for c in cells if c["state"] == "done" and c["ratio"] is not None
    ]
    if not plotted:
        return "(no scored cells)"
    frontier_set = set(frontier)
    ratios = [c["ratio"] for c in plotted]
    rounds = [c["rounds"] for c in plotted]
    r_lo, r_hi = min(ratios), max(ratios)
    x_lo, x_hi = min(rounds), max(rounds)

    def col(value: int) -> int:
        if x_hi == x_lo:
            return 0
        return round((value - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(value: float) -> int:
        if r_hi == r_lo:
            return 0
        return round((value - r_lo) / (r_hi - r_lo) * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    # dominated first so frontier markers overwrite on shared pixels
    for cell in sorted(plotted, key=lambda c: (c["index"] in frontier_set, c["index"])):
        marker = "*" if cell["index"] in frontier_set else "."
        canvas[row(cell["ratio"])][col(cell["rounds"])] = marker

    lines = [f"ratio (lower = better)        * frontier ({len(frontier)})  . dominated"]
    for i, chars in enumerate(canvas):
        label = r_lo + (r_hi - r_lo) * (i / (height - 1)) if height > 1 else r_lo
        lines.append(f"{label:8.3f} |{''.join(chars)}|")
    lines.append(" " * 9 + "+" + "-" * width + "+")
    lines.append(f"{'':9s} {x_lo:<{max(1, width // 2)}d}{x_hi:>{width - width // 2}d}")
    lines.append(" " * 9 + " MPC rounds")
    return "\n".join(lines)


def recommend(spec_dict: dict, cells: List[dict], ranking: List[int],
              frontier: List[int]) -> Optional[dict]:
    """The explicit recommendation: the ranking's head, with a
    deterministic human-readable reason."""
    if not ranking:
        return None
    by_index: Dict[int, dict] = {c["index"]: c for c in cells}
    best = by_index[ranking[0]]
    axes = (
        f"ratio={best['ratio']:.6g}" if best["ratio"] is not None
        else "ratio=unscored"
    )
    reason = (
        f"cell {best['index']} ({best['solver']}, dataset={best['dataset']}, "
        f"k={best['k']}, eps={best['eps']:g}, partition={best['partition']}, "
        f"trim={best['trim_mode']}, seed={best['seed']}) ranks first: "
        f"{axes} against the {best['reference_kind'] or 'missing'} reference, "
        f"at {best['rounds']} MPC rounds / {best['words']} words / "
        f"{best['oracle_calls']} oracle calls; ties break toward fewer "
        f"rounds, then words, then oracle calls. "
        f"{len(frontier)} of {len(ranking)} scored cells are "
        f"Pareto-optimal on (ratio, rounds, words)."
    )
    return {
        "cell": best["index"],
        "solver": best["solver"],
        "dataset": best["dataset"],
        "k": best["k"],
        "eps": best["eps"],
        "partition": best["partition"],
        "trim_mode": best["trim_mode"],
        "seed": best["seed"],
        "ratio": best["ratio"],
        "rounds": best["rounds"],
        "words": best["words"],
        "oracle_calls": best["oracle_calls"],
        "reason": reason,
    }


def build_report(spec_dict: dict, grid: List[dict], outcomes: List[dict],
                 resolve: ReferenceResolver) -> dict:
    """Assemble the full deterministic report for one finished sweep.

    ``outcomes[i]`` is the distilled job outcome for ``grid[i]`` (same
    order).  The result is JSON-safe and contains no timestamps, job
    ids, or trace ids — see the module docstring.
    """
    cells = [
        score_cell(cell, outcome, resolve)
        for cell, outcome in zip(grid, outcomes)
    ]
    ranking = rank_cells(cells)
    frontier = pareto_frontier(cells)
    counts: Dict[str, int] = {}
    for cell in cells:
        counts[cell["state"]] = counts.get(cell["state"], 0) + 1
    return {
        "spec": dict(spec_dict),
        "cells": cells,
        "counts": counts,
        "ranking": ranking,
        "ranking_axes": list(RANKING_AXES),
        "recommendation": recommend(spec_dict, cells, ranking, frontier),
        "frontier": {
            "axes": list(FRONTIER_AXES),
            "cells": frontier,
        },
        "ascii_frontier": ascii_frontier(cells, frontier),
    }
