"""Algorithm 4 — massively parallel k-bounded MIS (Theorems 13–15).

A *k-bounded MIS* (Definition 1) is either a maximal independent set of
size ≤ k, or an independent set of size exactly k.  Each outer round:

1. approximate all active degrees with Algorithm 3 (a light-path hit
   already yields an independent set of size k ⇒ done);
2. every machine draws ``m`` independent samples of its active
   vertices, vertex ``v`` entering each sample with probability
   ``min(1, 1/(2 p_v))``;
3. if the expected sample size ``Σ q_v`` exceeds ``10 k ln n``, run the
   *pruning step*: machines trim their samples locally, exchange the
   trims so machine ``j`` assembles ``T_j = trim(∪_i trim(S_i^j))``,
   and the largest ``T_j`` yields an independent set of size k w.h.p.
   (Theorem 14);
4. otherwise ship all samples to the central machine, which plays the
   ``m`` rounds of Luby-style elimination locally (*round compression*):
   for each ``j``, trim the union sample, add the trim to the MIS, and
   delete its neighborhood from its local copy;
5. broadcast the new MIS members; every machine deletes them and their
   neighborhoods from its active set.

The loop ends when the MIS reaches size k or the active graph empties
(the accumulated set is then maximal).

Deviations, all documented in DESIGN.md §3: trim uses a per-round
random tie-break (the literal rule livelocks on priority ties); the
pruning step falls back to *committing the largest T_j to the MIS* when
it unluckily comes up shorter than k (progress is preserved; w.h.p. the
fallback never fires); sampling probabilities are clamped to 1 so
isolated vertices (p_v = 0) are always sampled.

Observability: the run opens a ``mis/run`` phase span; every outer
round nests a ``mis/round`` span, with ``mis/prune`` / ``mis/luby``
child spans around the two elimination paths (the inner Algorithm 3
call contributes its own ``degree/estimate`` span).  See
``docs/observability.md``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.constants import DEFAULT_CONSTANTS, TheoryConstants
from repro.core.degree_approx import mpc_degree_approximation
from repro.core.results import MISResult
from repro.core.threshold_graph import ThresholdGraphView
from repro.core.trim import trim
from repro.exceptions import ConvergenceError
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def _sample_probability(p: np.ndarray) -> np.ndarray:
    """``q_v = min(1, 1/(2 p_v))`` with the isolated-vertex clamp."""
    q = np.empty_like(p)
    small = p <= 0.5
    q[small] = 1.0
    q[~small] = 1.0 / (2.0 * p[~small])
    return q


def _combine_k(mis: np.ndarray, extra: np.ndarray, k: int) -> np.ndarray:
    """First k ids of ``mis ∪ extra`` (both independent, cross-safe)."""
    merged = np.concatenate([mis, extra])
    _, first = np.unique(merged, return_index=True)
    merged = merged[np.sort(first)]
    return merged[:k]


def mpc_k_bounded_mis(
    cluster: MPCCluster,
    tau: float,
    k: int,
    constants: TheoryConstants = DEFAULT_CONSTANTS,
    active_by_machine: Optional[List[np.ndarray]] = None,
    max_outer_rounds: int = 200,
    instrument: bool = False,
    trim_mode: str = "random",
    enable_pruning: bool = True,
) -> MISResult:
    """Compute a k-bounded MIS of ``G_τ`` in the MPC model.

    Parameters
    ----------
    cluster:
        The MPC deployment.
    tau:
        Distance threshold of the graph ``G_τ``.
    k:
        Bound of Definition 1.
    constants:
        Analysis constants (δ, pruning trigger, the internal ε = 1/6).
    active_by_machine:
        Restrict the graph to these vertices (defaults to everything).
    max_outer_rounds:
        Safety budget; exceeded only on < 1/n probability events
        (raises :class:`~repro.exceptions.ConvergenceError`).
    instrument:
        Record the exact active-edge count at the top of each outer
        round in :attr:`MISResult.edge_trace` (driver-side O(|V|²)
        oracle work; never part of the simulated communication).
    trim_mode:
        Tie-breaking rule for ``trim`` (``'random'``, ``'id'``,
        ``'paper'``); see :mod:`repro.core.trim`.
    enable_pruning:
        Turn Theorem 14's pruning step off for the ablation benchmark.

    Returns
    -------
    MISResult
        ``ids`` independent in ``G_τ``; ``maximal`` true iff the active
        graph was exhausted.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    with cluster.obs.span("mis/run", tau=tau, k=k):
        return _mis_body(
            cluster,
            tau,
            k,
            constants,
            active_by_machine,
            max_outer_rounds,
            instrument,
            trim_mode,
            enable_pruning,
        )


def _mis_body(
    cluster: MPCCluster,
    tau: float,
    k: int,
    constants: TheoryConstants,
    active_by_machine: Optional[List[np.ndarray]],
    max_outer_rounds: int,
    instrument: bool,
    trim_mode: str,
    enable_pruning: bool,
) -> MISResult:
    m = cluster.m
    n = cluster.n
    round0 = cluster.round_no

    if active_by_machine is None:
        active = [mach.local_ids.copy() for mach in cluster.machines]
    else:
        active = [np.asarray(a, dtype=np.int64).copy() for a in active_by_machine]

    mis = np.zeros(0, dtype=np.int64)
    edge_trace: list = []

    for outer in range(max_outer_rounds):
        total_active = int(sum(a.size for a in active))
        if instrument:
            all_active = (
                np.concatenate([a for a in active]) if total_active else np.zeros(0, np.int64)
            )
            edge_trace.append(
                ThresholdGraphView(cluster.metric, all_active, tau).num_edges()
            )
        if total_active == 0 or mis.size >= k:
            break

        with cluster.obs.span("mis/round", outer=outer, active=total_active):
            result = _mis_outer_round(
                cluster, tau, k, constants, active, mis,
                trim_mode, enable_pruning, m, n,
                round0, edge_trace,
            )
        if isinstance(result, MISResult):
            return result
        mis, active = result

    if mis.size < k and sum(a.size for a in active) > 0:
        raise ConvergenceError("mpc_k_bounded_mis", max_outer_rounds)

    if mis.size >= k:
        return MISResult(
            ids=mis[:k],
            tau=tau,
            k=k,
            maximal=False,
            terminated_via="size_k_central",
            rounds=cluster.round_no - round0,
            edge_trace=edge_trace,
        )
    return MISResult(
        ids=mis,
        tau=tau,
        k=k,
        maximal=True,
        terminated_via="maximal",
        rounds=cluster.round_no - round0,
        edge_trace=edge_trace,
    )


def _mis_outer_round(
    cluster: MPCCluster,
    tau: float,
    k: int,
    constants: TheoryConstants,
    active: List[np.ndarray],
    mis: np.ndarray,
    trim_mode: str,
    enable_pruning: bool,
    m: int,
    n: int,
    round0: int,
    edge_trace: list,
):
    """One outer round.  Returns a terminal :class:`MISResult`, or the
    updated ``(mis, active)`` pair when the loop should continue."""
    # -- line 3: degree approximation --------------------------------------
    deg = mpc_degree_approximation(cluster, tau, k, constants, active)
    if deg.kind == "independent_set":
        out = _combine_k(mis, deg.independent_set, k)
        return MISResult(
            ids=out,
            tau=tau,
            k=k,
            maximal=False,
            terminated_via="size_k_light_path",
            rounds=cluster.round_no - round0,
            edge_trace=edge_trace,
        )
    p = deg.p

    # shared per-round random tie-break priorities: each machine draws for
    # its own vertices; values travel with the samples (PointBatch columns)
    tie_draws = cluster.map_machines(
        lambda mach: mach.rng.random(active[mach.id].size)
        if active[mach.id].size
        else np.zeros(0, dtype=np.float64)
    )
    tie = np.full(n, np.nan, dtype=np.float64)
    for act, draws in zip(active, tie_draws):
        if act.size:
            tie[act] = draws

    # -- line 5: every machine draws m samples (parallel local work) --------
    def _draw(mach):
        act = active[mach.id]
        if act.size:
            q = _sample_probability(p[act])
            draws = mach.rng.random((act.size, m)) < q[:, None]
            return float(q.sum()), [act[draws[:, j]] for j in range(m)]
        return 0.0, [np.zeros(0, dtype=np.int64) for _ in range(m)]

    drawn = cluster.map_machines(_draw)
    local_expected = np.array([d[0] for d in drawn])
    sample_sets: List[List[np.ndarray]] = [d[1] for d in drawn]

    # -- line 6: global expected-size check (gather + broadcast) ------------
    inbox = cluster.gather_to_central(
        {i: float(local_expected[i]) for i in range(m)}, tag="mis/expected-size"
    )
    expected_total = sum(float(msg.payload) for msg in inbox)
    prune = enable_pruning and expected_total > constants.pruning_trigger(n, k)
    cluster.broadcast(cluster.CENTRAL, bool(prune), tag="mis/prune-decision")
    cluster.step()

    if prune:
        with cluster.obs.span("mis/prune"):
            # -- lines 7–8: pruning step ----------------------------------------
            # local trims, one parallel task per machine (trim is pure given
            # p/tie, so computing all m trims per machine before scanning for
            # a k-sized one returns the same set the serial scan would)
            local_trims: List[List[np.ndarray]] = cluster.map_machines(
                lambda mach: [
                    trim(mach, sample_sets[mach.id][j], tau, p, tie, mode=trim_mode)
                    for j in range(m)
                ]
            )
            # an immediate k-sized trim short-circuits (first in machine-major
            # order, matching the historical scan)
            for trims_i in local_trims:
                for t in trims_i:
                    if t.size >= k:
                        out = _combine_k(mis, t, k)
                        return MISResult(
                            ids=out,
                            tau=tau,
                            k=k,
                            maximal=False,
                            terminated_via="size_k_pruning",
                            rounds=cluster.round_no - round0,
                            edge_trace=edge_trace,
                        )

            # machine i ships trim(S_i^j) to machine j (one round)
            for i in range(m):
                for j in range(m):
                    if i != j:
                        cluster.send(
                            i,
                            j,
                            PointBatch(
                                local_trims[i][j],
                                {"p": p[local_trims[i][j]], "tie": tie[local_trims[i][j]]},
                            ),
                            tag="mis/prune-exchange",
                        )
            inboxes = cluster.step()

            # machine j assembles T_j = trim(union of trims)
            best_T = np.zeros(0, dtype=np.int64)
            tj_payload: dict[int, PointBatch] = {}
            for j in range(m):
                parts = [local_trims[j][j]]
                for msg in inboxes[j]:
                    if msg.tag == "mis/prune-exchange":
                        parts.append(msg.payload.ids)
                union = np.concatenate(parts) if parts else np.zeros(0, np.int64)
                T_j = trim(cluster.machines[j], union, tau, p, tie, mode=trim_mode)
                T_j = T_j[:k]  # a k-subset suffices and caps communication
                tj_payload[j] = PointBatch(T_j)

            # ship the T_j's to the central machine, which keeps the largest
            inbox = cluster.gather_to_central(tj_payload, tag="mis/prune-collect")
            for msg in inbox:
                if msg.payload.ids.size > best_T.size:
                    best_T = msg.payload.ids
            if mis.size + best_T.size >= k:
                out = _combine_k(mis, best_T, k)
                return MISResult(
                    ids=out,
                    tau=tau,
                    k=k,
                    maximal=False,
                    terminated_via="size_k_pruning",
                    rounds=cluster.round_no - round0,
                    edge_trace=edge_trace,
                )
            # w.h.p. unreachable: commit the largest T_j as ordinary progress
            new_mis = best_T
    else:
        with cluster.obs.span("mis/luby"):
            # -- lines 10–16: ship samples to central, compress m Luby rounds ----
            for i in range(m):
                for j in range(m):
                    batch = sample_sets[i][j]
                    cluster.send(
                        cluster.machines[i].id,
                        cluster.CENTRAL,
                        PointBatch(batch, {"p": p[batch], "tie": tie[batch], "j": np.full(batch.size, j)}),
                        tag="mis/samples",
                    )
            inboxes = cluster.step()

            union_by_j: List[List[np.ndarray]] = [[] for _ in range(m)]
            for msg in inboxes[cluster.CENTRAL]:
                if msg.tag != "mis/samples":
                    continue
                ids = msg.payload.ids
                jcol = msg.payload.columns["j"].astype(np.int64)
                for j in range(m):
                    sel = ids[jcol == j]
                    if sel.size:
                        union_by_j[j].append(sel)

            central = cluster.central
            removed: set[int] = set()
            additions: list[np.ndarray] = []
            for j in range(m):
                if not union_by_j[j]:
                    continue
                S_j = np.unique(np.concatenate(union_by_j[j]))
                S_j = np.array([v for v in S_j if v not in removed], dtype=np.int64)
                if S_j.size == 0:
                    continue
                M_j = trim(central, S_j, tau, p, tie, mode=trim_mode)
                if M_j.size == 0:
                    continue
                additions.append(M_j)
                # delete M_j ∪ N(M_j) from the central machine's local copy,
                # i.e. from all sample vertices received this round
                all_sample = np.unique(
                    np.concatenate([np.concatenate(u) for u in union_by_j if u])
                )
                candidates = np.array(
                    [v for v in all_sample if v not in removed], dtype=np.int64
                )
                if candidates.size:
                    near = central.pairwise(candidates, M_j).min(axis=1) <= tau
                    for v in candidates[near]:
                        removed.add(int(v))
                for v in M_j:
                    removed.add(int(v))
                if mis.size + sum(a.size for a in additions) >= k:
                    break
            new_mis = (
                np.concatenate(additions) if additions else np.zeros(0, dtype=np.int64)
            )

    # -- lines 17–18: broadcast additions, machines prune their actives -----
    cluster.broadcast(cluster.CENTRAL, PointBatch(new_mis), tag="mis/additions")
    cluster.step()
    if new_mis.size:
        mis = np.concatenate([mis, new_mis])

        def _prune(mach):
            act = active[mach.id]
            if act.size == 0:
                return act
            near = mach.pairwise(act, new_mis).min(axis=1) <= tau
            return act[~near & ~np.isin(act, new_mis)]

        active = cluster.map_machines(_prune)

    if mis.size >= k:
        return MISResult(
            ids=mis[:k],
            tau=tau,
            k=k,
            maximal=False,
            terminated_via="size_k_central",
            rounds=cluster.round_no - round0,
            edge_trace=edge_trace,
        )
    return mis, active
