"""Minimum dominating set via k-bounded MIS (the paper's conclusion).

The conclusion of the paper states that the k-bounded MIS yields "a
constant-factor approximation to the minimum dominating set in graphs
with bounded neighborhood independence, in a constant number of MPC
rounds".  This module implements that application for threshold graphs:

* any *maximal* independent set is a dominating set (maximality means
  every vertex has a neighbor in the set);
* in a graph whose *neighborhood independence number* is ρ (no closed
  neighborhood contains more than ρ pairwise non-adjacent vertices),
  every independent set — in particular every MIS — has size at most
  ρ·γ(G), because each of its vertices is dominated by some optimal
  dominator and each dominator's closed neighborhood hosts at most ρ of
  them.

Threshold graphs of doubling metrics have bounded neighborhood
independence (points inside a τ-ball that are pairwise > τ apart number
at most the kissing-like constant of the space — ≤ 5 in the Euclidean
plane), so running Algorithm 4 with an unbounded k gives a
constant-factor MPC dominating set there.

A certified *lower bound* comes from packing: any independent set of
``G_{2τ}`` (pairwise distance > 2τ) has at most one member in each
dominator's closed τ-ball, hence its size lower-bounds γ(G_τ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.greedy_mis import greedy_mis
from repro.constants import DEFAULT_CONSTANTS, TheoryConstants
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.exceptions import InvalidSolutionError
from repro.metric.base import Metric
from repro.mpc.cluster import MPCCluster


from repro.core.results import _SerializableResult


@dataclass
class DominatingSetResult(_SerializableResult):
    """Output of the MPC dominating-set application."""

    ids: np.ndarray
    tau: float
    rounds: int
    #: certified lower bound on the optimal dominating-set size
    lower_bound: int
    stats: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.ids.size)

    @property
    def certified_ratio(self) -> float:
        """``|DS| / LB`` — an upper bound on the true approximation ratio."""
        return self.size / max(1, self.lower_bound)


def mpc_dominating_set(
    cluster: MPCCluster,
    tau: float,
    constants: TheoryConstants = DEFAULT_CONSTANTS,
    trim_mode: str = "random",
) -> DominatingSetResult:
    """Compute a dominating set of ``G_τ`` in the MPC model.

    Runs Algorithm 4 with the bound ``k`` set above ``n`` so the loop
    always exhausts the graph and returns a *maximal* independent set —
    which dominates by definition.  The certified lower bound is a
    greedy packing in ``G_{2τ}`` (computed driver-side for reporting;
    it is not part of the simulated communication).

    Returns
    -------
    DominatingSetResult
        ``ids`` dominate every vertex within ``tau``; in graphs of
        neighborhood independence ρ the size is at most ρ·γ(G_τ).
    """
    round0 = cluster.round_no
    with cluster.obs.span("domset/run", tau=tau):
        res = mpc_k_bounded_mis(
            cluster, tau, k=cluster.n + 1, constants=constants, trim_mode=trim_mode
        )
    if not res.maximal:
        raise InvalidSolutionError(
            "k-bounded MIS with k > n must return a maximal set"
        )
    packing = greedy_mis(cluster.metric, np.arange(cluster.n), 2.0 * tau)
    return DominatingSetResult(
        ids=res.ids,
        tau=tau,
        rounds=cluster.round_no - round0,
        lower_bound=int(packing.size),
        stats=cluster.stats.summary(),
    )


def verify_dominating_set(metric: Metric, ids, tau: float, universe=None) -> None:
    """Raise unless every universe vertex is in ``ids`` or within τ of it."""
    ids = np.unique(np.asarray(ids, dtype=np.int64))
    universe = (
        np.arange(metric.n, dtype=np.int64)
        if universe is None
        else np.unique(np.asarray(universe, dtype=np.int64))
    )
    if universe.size == 0:
        return
    if ids.size == 0:
        raise InvalidSolutionError("empty set cannot dominate a nonempty universe")
    dmin = metric.dist_to_set(universe, ids)
    worst = float(dmin.max())
    if worst > tau:
        bad = int(universe[int(np.argmax(dmin))])
        raise InvalidSolutionError(
            f"vertex {bad} at distance {worst:.6g} > tau={tau:.6g} is undominated"
        )


def neighborhood_independence(metric: Metric, tau: float, sample: Optional[int] = None,
                              rng: Optional[np.random.Generator] = None) -> int:
    """Measure (a lower bound on) the neighborhood independence number ρ
    of ``G_τ``: the largest independent set found inside any (sampled)
    closed neighborhood.  Exact on the sampled vertices; used by tests
    and the bench to report the constant in "constant-factor"."""
    ids = np.arange(metric.n, dtype=np.int64)
    if sample is not None and sample < metric.n:
        rng = rng or np.random.default_rng(0)
        centers = rng.choice(ids, size=sample, replace=False)
    else:
        centers = ids
    best = 0
    for v in centers:
        ball = ids[metric.pairwise([int(v)], ids)[0] <= tau]
        mis = greedy_mis(metric, ball, tau)
        best = max(best, int(mis.size))
    return best
