"""Algorithm 2 — (2+ε)-approximation MPC k-diversity maximization
(Theorem 3), plus the two-round 4-approximation side product.

Structure:

* **Lines 1–3** (:func:`mpc_diversity_coreset`): every machine runs GMM
  locally; the central machine runs GMM on the union of the local
  outputs.  The larger of the local diversities and the central one is
  a 4-approximation ``r`` of the optimum — already better than the
  6-approximation of Indyk et al.'s composable coresets.
* **Lines 4–7** (:func:`mpc_diversity`): probe the geometric threshold
  ladder ``τ_i = r·(1+ε)^i`` with k-bounded MIS runs and binary-search
  the flip index ``j`` where ``|M_j| = k`` but ``|M_{j+1}| < k``.
  ``M_j`` has pairwise distances > τ_j and the maximality of
  ``M_{j+1}`` pins the optimum below ``2(1+ε)τ_j`` (pigeonhole on the
  covering balls), giving the 2+ε factor.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_CONSTANTS, TheoryConstants
from repro.core.gmm import gmm
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.core.results import CoresetResult, DiversityResult
from repro.core.threshold_search import find_flip
from repro.core.warm import WarmStart
from repro.exceptions import InfeasibleInstanceError, InvalidSolutionError
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def mpc_diversity_coreset(
    cluster: MPCCluster, k: int, warm_start: Optional[WarmStart] = None
) -> CoresetResult:
    """Lines 1–3 of Algorithm 2: the two-round 4-approximation.

    Returns a :class:`CoresetResult` — a k-subset ``ids`` with
    ``div(ids) = value`` and the guarantee ``value ≤ div_k(V) ≤ 4·value``
    (Theorem 3's first stage); unpacking as ``Q, r = ...`` keeps working.

    With ``warm_start`` (an append-chained child re-solve), each
    machine's GMM runs only over its *delta* points (ids ≥ ``base_n``)
    and ships the parent centers it owns alongside, so the central
    union still sees the summary of the old points — same rounds,
    ``O(k·base_n)`` fewer oracle evaluations.
    """
    if k < 2:
        raise InfeasibleInstanceError("diversity maximization needs k >= 2")
    if k > cluster.n:
        raise InfeasibleInstanceError(f"k={k} exceeds the number of points n={cluster.n}")
    if warm_start is not None and warm_start.base_n >= cluster.n:
        raise InfeasibleInstanceError(
            f"warm start base_n={warm_start.base_n} leaves no delta in n={cluster.n}"
        )
    round0 = cluster.round_no

    with cluster.obs.span("div/coreset", k=k, warm=warm_start is not None):
        ws = warm_start

        def _local(mach):
            if ws is None:
                T_i = gmm(mach, mach.local_ids, k)
                r_i = mach.diversity(T_i) if T_i.size == k else 0.0
                return T_i, float(r_i)
            # warm: GMM over the delta only, parent centers shipped
            # alongside.  The local certificate r_i is skipped — the
            # shipped set mixes delta picks with parent centers, so its
            # diversity is not a pure local GMM bound; the central
            # candidate carries the warm value instead.
            T_i = gmm(mach, ws.delta_ids(mach.local_ids), k)
            return np.union1d(T_i, ws.local_centers(mach.local_ids)), 0.0

        locals_T = cluster.map_machines(_local)
        payloads = {
            i: (PointBatch(T_i), r_i) for i, (T_i, r_i) in enumerate(locals_T)
        }
        inbox = cluster.gather_to_central(payloads, tag="div/coreset")

        central = cluster.central
        T_parts = []
        best_local = (-1.0, None)
        for msg in inbox:
            batch, r_i = msg.payload
            T_parts.append(batch.ids)
            if r_i > best_local[0]:
                best_local = (r_i, batch.ids)
        T = np.unique(np.concatenate(T_parts))

        S = gmm(central, T, k)
        r0 = central.diversity(S) if S.size == k else 0.0

        if r0 >= best_local[0]:
            ids, value = S, float(r0)
        else:
            ids, value = np.asarray(best_local[1], dtype=np.int64), float(best_local[0])
    return CoresetResult(
        ids=ids, value=value, k=k, kind="diversity", rounds=cluster.round_no - round0
    )


def mpc_diversity(
    cluster: MPCCluster,
    k: int,
    epsilon: float = 0.1,
    constants: Optional[TheoryConstants] = None,
    trim_mode: str = "random",
    warm_start: Optional[WarmStart] = None,
) -> DiversityResult:
    """Algorithm 2: (2+ε)-approximate k-diversity in O(log 1/ε) probes.

    Parameters
    ----------
    cluster:
        The MPC deployment over the input metric.
    k:
        Subset size (2 ≤ k ≤ n).
    epsilon:
        Approximation slack; the output diversity is at least
        ``div_k(V) / (2(1+ε))``.
    constants:
        Analysis constants for the inner MIS runs.
    trim_mode:
        Tie-break rule forwarded to the MIS runs.
    warm_start:
        Optional :class:`~repro.core.warm.WarmStart` from a parent
        dataset version; only the coreset stage changes (per-machine
        GMM over the delta, parent centers joining the union).  Because
        the warm coreset value is a valid lower bound but not a
        certified 4-approximation, the ladder extends itself upward if
        the top rung still yields a size-k independent set.

    Returns
    -------
    DiversityResult
        ``ids`` of size exactly k; ``diversity = div(ids)``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    constants = constants or DEFAULT_CONSTANTS
    round0 = cluster.round_no

    with cluster.obs.span("div/run", k=k, epsilon=epsilon):
        Q, r = mpc_diversity_coreset(cluster, k, warm_start=warm_start)
        if r <= 0.0:
            # optimum is 0 (≥ k duplicate points); any k-subset is optimal
            return DiversityResult(
                ids=Q,
                diversity=float(cluster.metric.diversity(Q)) if Q.size >= 2 else 0.0,
                k=k,
                epsilon=epsilon,
                coreset_value=r,
                rounds=cluster.round_no - round0,
                stats=cluster.stats.summary(),
            )

        t = int(math.ceil(math.log(4.0) / math.log1p(epsilon))) + 1
        taus = [r * (1.0 + epsilon) ** i for i in range(t + 1)]

        def probe(i: int) -> np.ndarray:
            if i == 0:
                return Q
            with cluster.obs.span("div/probe", ladder_index=i, tau=taus[i]):
                return mpc_k_bounded_mis(
                    cluster, taus[i], k, constants, trim_mode=trim_mode
                ).ids

        def good(M: np.ndarray) -> bool:
            return M.size == k

        cache: dict[int, np.ndarray] = {0: Q}

        def cached_probe(i: int) -> np.ndarray:
            if i not in cache:
                cache[i] = probe(i)
            return cache[i]

        lo, hi = 0, t
        if warm_start is not None and warm_start.objective > 0.0:
            # Bracket the flip search at the rung nearest the parent's
            # objective (diversity only grows under appends, so the
            # child's flip usually sits at or above it).  A bad pivot
            # probe bounds the search in [0, pivot] and skips the τ_t
            # probe — and with it the whole ladder-extension question.
            guess = math.log(warm_start.objective / r) / math.log1p(epsilon)
            pivot = min(max(int(round(guess)), 1), t - 1)
            if good(cached_probe(pivot)):
                lo = pivot
            else:
                hi = pivot
        if hi == t:
            probe_t = cached_probe(t)
            if good(probe_t) and warm_start is not None:
                # The warm coreset value is a valid lower bound but not a
                # certified 4-approximation, so the ladder may start too
                # low.  Extend it geometrically (each block multiplies the
                # ceiling by another 4×) until the top rung goes bad.
                for _ in range(8):
                    taus.extend(
                        taus[-1] * (1.0 + epsilon) ** i for i in range(1, t + 1)
                    )
                    t = len(taus) - 1
                    hi = t
                    probe_t = cached_probe(t)
                    if not good(probe_t):
                        break
            if good(probe_t):
                # theory forbids this (τ_t > 4r ≥ div_k(V)); a size-k
                # independent set at τ_t would certify diversity > 4r,
                # contradicting r's 4-approximation guarantee.
                raise InvalidSolutionError(
                    "k-bounded MIS returned a size-k independent set above the "
                    "4-approximation ceiling — the MIS or the coreset stage is broken"
                )
        j, M_j, _ = find_flip(
            probe, good, lo, hi, cache, obs=cluster.obs, span="div/search"
        )

        div_val = float(cluster.metric.diversity(M_j))
    return DiversityResult(
        ids=M_j,
        diversity=div_val,
        k=k,
        epsilon=epsilon,
        coreset_value=r,
        rounds=cluster.round_no - round0,
        stats=cluster.stats.summary(),
    )
