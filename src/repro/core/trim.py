"""The ``trim`` primitive of Algorithm 4 (a local variant of Luby's MIS).

    trim(S) = { v ∈ S : p_v > p_u for all u ∈ N(v) ∩ S }

keeps exactly the sampled vertices that are a *strict local maximum* of
the approximate-degree priority within the sample.  Its output is always
an independent set (two adjacent survivors would each need the strictly
larger priority).

**Tie-breaking (DESIGN.md §3, choice 1).**  Read literally, equal
priorities (common in regular graphs, where every approximate degree is
the same) make ``trim`` return the empty set and Algorithm 4 livelocks.
We therefore order vertices by the lexicographic key
``(p_v, tie_v, id_v)`` where ``tie`` is a per-round random priority —
exactly Luby's classic fix.  Lemma 10's bound survives: the event
"v has a neighbor with a ≥ key" is a subset of the event
"v has a neighbor with a ≥ priority", so the survival probability can
only increase.  ``mode='paper'`` restores the literal rule for the
ablation benchmark.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

#: Maximum adjacency entries per chunk when trimming large samples.
_CHUNK = 2_000_000


def trim(
    oracle,
    S: Iterable[int],
    tau: float,
    p: np.ndarray,
    tie: Optional[np.ndarray] = None,
    mode: str = "random",
) -> np.ndarray:
    """Return the trim of sample ``S`` in ``G_τ`` under priorities ``p``.

    Parameters
    ----------
    oracle:
        Object with ``pairwise(I, J)``.
    S:
        Sampled vertex ids (duplicates are collapsed).
    tau:
        Threshold of the graph ``G_τ``.
    p:
        Global array of approximate degrees, indexed by vertex id.
    tie:
        Global array of per-round random tie-break priorities.  Required
        for ``mode='random'``.
    mode:
        ``'random'`` (default, key ``(p, tie, id)``), ``'id'`` (key
        ``(p, id)``), or ``'paper'`` (the literal strict-inequality
        rule, which can return the empty set on priority ties).

    Returns
    -------
    numpy.ndarray
        The surviving ids — always an independent set in ``G_τ``.
    """
    S = np.unique(np.asarray(S, dtype=np.int64))
    if S.size == 0:
        return S
    if S.size == 1:
        return S

    pv = np.asarray(p, dtype=np.float64)[S]

    if mode == "paper":
        keys = pv
        strict = True
    elif mode == "id":
        order = np.lexsort((S, pv))
        keys = np.empty(S.size, dtype=np.float64)
        keys[order] = np.arange(S.size)
        strict = True
    elif mode == "random":
        if tie is None:
            raise ValueError("mode='random' requires a tie array")
        tv = np.asarray(tie, dtype=np.float64)[S]
        order = np.lexsort((S, tv, pv))
        keys = np.empty(S.size, dtype=np.float64)
        keys[order] = np.arange(S.size)
        strict = True
    else:
        raise ValueError(f"unknown trim mode {mode!r}")

    kept = np.ones(S.size, dtype=bool)
    step = max(1, _CHUNK // S.size)
    for lo in range(0, S.size, step):
        hi = min(S.size, lo + step)
        adj = oracle.pairwise(S[lo:hi], S) <= tau
        for r in range(lo, hi):
            adj[r - lo, r] = False  # no self-loop
        # v survives iff its key strictly exceeds every sampled neighbor's
        if strict:
            rival = np.where(adj, keys[None, :], -np.inf).max(axis=1)
            kept[lo:hi] = keys[lo:hi] > rival
    return S[kept]
