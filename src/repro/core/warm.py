"""Warm-start state for incremental re-solves.

The paper's coreset stage (lines 1–3 of Algorithms 2 and 5) is
composable: each machine runs GMM locally, the central machine unions
the local outputs and runs GMM again.  That composition is exactly what
makes an *incremental* dataset cheap to re-solve: when a dataset is an
append-chained child (parent points plus a delta, see
:meth:`repro.service.datasets.DatasetRegistry.append`), the parent's
final centers already summarize the first ``base_n`` points.  A
warm-started coreset therefore runs the per-machine GMM only over each
machine's share of the *delta*, ships the parent centers alongside the
local outputs, and lets the central GMM re-select over the union — the
threshold ladder afterwards is unchanged and still certifies against
the full child dataset.

The saving is the per-machine GMM work over the old points:
``O(k · base_n)`` oracle evaluations skipped, which dominates when the
delta is small relative to the accumulated history.  The trade-off is
that the warm solution is *not* bit-identical to a cold solve of the
child (the coreset candidates differ); the drift report attached to
warm job payloads quantifies exactly how far the two drift apart.
Warm results remain deterministic: for a fixed seed and chain they are
bit-identical across serial/thread/process/remote backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WarmStart:
    """Initial GMM state carried from a parent dataset version.

    ``base_n`` is the parent's point count: ids ``< base_n`` in the
    child dataset are exactly the parent's points (appends concatenate,
    never reorder).  ``centers`` are the parent solution's point ids,
    and ``objective`` its radius (k-center) or diversity value — kept
    so the drift report can be computed without re-resolving the
    parent.
    """

    base_n: int
    centers: np.ndarray
    objective: float = 0.0

    def __post_init__(self) -> None:
        centers = np.unique(np.asarray(self.centers, dtype=np.int64))
        if centers.size == 0:
            raise ValueError("warm start requires at least one parent center")
        if int(self.base_n) <= 0:
            raise ValueError("warm start base_n must be positive")
        if centers.min() < 0 or centers.max() >= int(self.base_n):
            raise ValueError(
                "warm-start centers must be parent point ids in [0, base_n)"
            )
        object.__setattr__(self, "base_n", int(self.base_n))
        object.__setattr__(self, "centers", centers)
        object.__setattr__(self, "objective", float(self.objective))

    def delta_ids(self, local_ids: np.ndarray) -> np.ndarray:
        """The subset of ``local_ids`` that arrived after the parent."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        return local_ids[local_ids >= self.base_n]

    def local_centers(self, local_ids: np.ndarray) -> np.ndarray:
        """The parent centers this machine owns (ids ∩ centers)."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        return np.intersect1d(self.centers, local_ids)


__all__ = ["WarmStart"]
