"""The paper's contributions.

* :mod:`repro.core.gmm` — Algorithm 1 (GMM / Gonzalez greedy).
* :mod:`repro.core.threshold_graph` — ``G_τ`` views over any metric.
* :mod:`repro.core.trim` — the local Luby-style ``trim`` of Algorithm 4.
* :mod:`repro.core.light_heavy` — Definition 4 split + Lemma 6 extraction.
* :mod:`repro.core.degree_approx` — Algorithm 3 (Theorem 9).
* :mod:`repro.core.kbounded_mis` — Algorithm 4 (Theorems 13–15).
* :mod:`repro.core.threshold_search` — flip-pair binary search on ladders.
* :mod:`repro.core.diversity` — Algorithm 2 (Theorem 3) + 4-approx coreset.
* :mod:`repro.core.kcenter` — Algorithm 5 (Theorem 17) + 4-approx coreset.
* :mod:`repro.core.ksupplier` — Algorithm 6 (Theorem 18).
* :mod:`repro.core.warm` — warm-start state for incremental re-solves.
"""

from repro.core.degree_approx import DegreeApproxResult, mpc_degree_approximation
from repro.core.diversity import mpc_diversity, mpc_diversity_coreset
from repro.core.dominating_set import (
    DominatingSetResult,
    mpc_dominating_set,
    neighborhood_independence,
    verify_dominating_set,
)
from repro.core.gmm import gmm, gmm_anti_cover_radius
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.core.kcenter import mpc_kcenter, mpc_kcenter_coreset
from repro.core.ksupplier import mpc_ksupplier
from repro.core.results import (
    ClusteringResult,
    CoresetResult,
    DiversityResult,
    MISResult,
    SupplierResult,
)
from repro.core.threshold_graph import ThresholdGraphView
from repro.core.trim import trim
from repro.core.warm import WarmStart

__all__ = [
    "gmm",
    "gmm_anti_cover_radius",
    "ThresholdGraphView",
    "trim",
    "mpc_degree_approximation",
    "DegreeApproxResult",
    "mpc_k_bounded_mis",
    "mpc_diversity",
    "mpc_diversity_coreset",
    "mpc_kcenter",
    "mpc_kcenter_coreset",
    "mpc_ksupplier",
    "mpc_dominating_set",
    "DominatingSetResult",
    "verify_dominating_set",
    "neighborhood_independence",
    "MISResult",
    "ClusteringResult",
    "CoresetResult",
    "DiversityResult",
    "SupplierResult",
    "WarmStart",
]
