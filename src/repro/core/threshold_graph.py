"""Threshold-graph views ``G_τ``.

``G_τ`` has an edge between ``u`` and ``v`` iff ``d(u, v) ≤ τ``
(Section 2).  The graph is never materialized: a
:class:`ThresholdGraphView` answers degree and neighborhood queries
directly through the distance oracle, restricted to an *active* vertex
set (Algorithm 4 repeatedly shrinks that set).

Self-loops are excluded: a vertex is not its own neighbor, even though
``d(v, v) = 0 ≤ τ`` — degrees count *other* vertices within τ.
Duplicate points (distance 0) are genuine neighbors.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class ThresholdGraphView:
    """Read-only view of ``G_τ`` induced on a vertex subset.

    Parameters
    ----------
    oracle:
        Object with ``pairwise`` / ``count_within`` (a Metric or a
        Machine).
    vertices:
        Active vertex ids the view is induced on.
    tau:
        Distance threshold (edges where ``d ≤ τ``).
    """

    def __init__(self, oracle, vertices: Iterable[int], tau: float) -> None:
        if tau < 0:
            raise ValueError("threshold must be non-negative")
        self.oracle = oracle
        self.vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        self.tau = float(tau)

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.size)

    def degrees(self, I: Iterable[int] | None = None) -> np.ndarray:
        """Degree of each queried vertex within the active set.

        ``I`` defaults to all active vertices.  Queried ids need not be
        active themselves; active queried ids have their self-count
        removed.
        """
        I = self.vertices if I is None else np.asarray(I, dtype=np.int64).reshape(-1)
        if I.size == 0:
            return np.zeros(0, dtype=np.int64)
        counts = self.oracle.count_within(I, self.vertices, self.tau)
        is_active = np.isin(I, self.vertices)
        return counts - is_active.astype(np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        """Active neighbors of ``v`` (excluding ``v`` itself)."""
        mask = self.oracle.pairwise([v], self.vertices)[0] <= self.tau
        nbrs = self.vertices[mask]
        return nbrs[nbrs != v]

    def adjacency(self, I: Iterable[int], J: Iterable[int]) -> np.ndarray:
        """Boolean cross-adjacency (diagonal pairs ``i == j`` masked off)."""
        I = np.asarray(I, dtype=np.int64).reshape(-1)
        J = np.asarray(J, dtype=np.int64).reshape(-1)
        adj = self.oracle.pairwise(I, J) <= self.tau
        same = I[:, None] == J[None, :]
        adj[same] = False
        return adj

    def num_edges(self) -> int:
        """Exact edge count of the induced active graph.

        O(|V|²) oracle work — instrumentation only (used by the F3
        experiment), never inside the MPC algorithms.
        """
        V = self.vertices
        if V.size < 2:
            return 0
        deg = self.degrees(V)
        return int(deg.sum()) // 2

    def is_independent(self, S: Iterable[int]) -> bool:
        """True iff ``S`` is pairwise non-adjacent in ``G_τ``."""
        S = np.asarray(S, dtype=np.int64).reshape(-1)
        if S.size < 2:
            return True
        D = self.oracle.pairwise(S, S)
        np.fill_diagonal(D, np.inf)
        return bool(D.min() > self.tau)

    def is_maximal_independent(self, S: Iterable[int]) -> bool:
        """True iff ``S`` is independent and dominates every active vertex."""
        S = np.asarray(S, dtype=np.int64).reshape(-1)
        if not self.is_independent(S):
            return False
        if self.vertices.size == 0:
            return True
        if S.size == 0:
            return False
        dmin = self.oracle.pairwise(self.vertices, S).min(axis=1)
        return bool(np.all(dmin <= self.tau))
