"""Algorithm 1 — the GMM (Gonzalez / greedy farthest-point) algorithm.

GMM repeatedly picks the point furthest from those already chosen.  Its
output ``T`` satisfies the *anti-cover* properties (Section 2.2): with
``r = div(T)``,

* every pair in ``T`` is at distance ≥ r, and
* every input point is within distance r of ``T``.

GMM is a 2-approximation for both k-center (Gonzalez 1985) and
k-diversity (Ravi et al. 1994), and is the workhorse inside every
machine of the MPC algorithms.

The implementation is the standard O(k·|S|) farthest-first traversal:
one distance column per chosen center, a running minimum — no n×n
matrix.  The ``oracle`` argument accepts anything exposing
``pairwise(I, J)`` (a :class:`~repro.metric.base.Metric` or a
:class:`~repro.mpc.machine.Machine`, whose strict known-point checks
then apply).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


def gmm(
    oracle,
    S: Iterable[int],
    k: int,
    start: Optional[int] = None,
) -> np.ndarray:
    """Run GMM on the id set ``S`` and return ``min(k, |S|)`` ids.

    Parameters
    ----------
    oracle:
        Object with ``pairwise(I, J) -> matrix``.
    S:
        Candidate ids.
    k:
        Number of points to select.
    start:
        Optional id of the first point (must be in ``S``); defaults to
        the smallest id, making the routine deterministic.  The paper
        allows an arbitrary start.

    Returns
    -------
    numpy.ndarray
        Selected ids in pick order (the first is ``start``).
    """
    S = np.asarray(S, dtype=np.int64).reshape(-1)
    if k < 1:
        raise ValueError("k must be at least 1")
    if S.size == 0:
        return np.zeros(0, dtype=np.int64)
    S = np.unique(S)
    if start is None:
        first = int(S[0])
    else:
        first = int(start)
        if first not in set(S.tolist()):
            raise ValueError("start point must belong to S")

    chosen = [first]
    if S.size == 1 or k == 1:
        return np.asarray(chosen, dtype=np.int64)

    # running distance of every candidate to the chosen set; chosen
    # positions are masked so the output never repeats an id, even when
    # the input contains coincident points (all remaining distances 0)
    dist = oracle.pairwise(S, [first])[:, 0]
    taken = np.zeros(S.size, dtype=bool)
    taken[np.searchsorted(S, first)] = True
    while len(chosen) < min(k, S.size):
        masked = np.where(taken, -np.inf, dist)
        pos = int(np.argmax(masked))
        nxt = int(S[pos])
        taken[pos] = True
        chosen.append(nxt)
        np.minimum(dist, oracle.pairwise(S, [nxt])[:, 0], out=dist)
    return np.asarray(chosen, dtype=np.int64)


def gmm_anti_cover_radius(oracle, S: Iterable[int], T: Iterable[int]) -> float:
    """``r(S, T) = max_{p∈S} d(p, T)`` — the anti-cover radius of a GMM
    output ``T`` over its input ``S`` (0 when ``S ⊆ balls(T, 0)``)."""
    S = np.asarray(S, dtype=np.int64).reshape(-1)
    T = np.asarray(T, dtype=np.int64).reshape(-1)
    if S.size == 0:
        return 0.0
    if T.size == 0:
        return float("inf")
    return float(oracle.pairwise(S, T).min(axis=1).max())


def check_anti_cover(oracle, S: Iterable[int], T: Iterable[int], atol: float = 1e-9) -> bool:
    """Verify the two anti-cover properties of Section 2.2.

    With ``r = div(T)``: every ``p ∈ T`` has ``d(p, T \\ {p}) >= r`` and
    every ``p ∈ S`` has ``d(p, T) <= r``.  Used by tests and property
    checks.
    """
    T = np.asarray(T, dtype=np.int64).reshape(-1)
    if T.size < 2:
        return True
    D = oracle.pairwise(T, T)
    np.fill_diagonal(D, np.inf)
    r = float(D.min())
    if np.any(D.min(axis=1) < r - atol):
        return False
    return gmm_anti_cover_radius(oracle, S, T) <= r + atol
