"""Algorithm 6 — (3+ε)-approximation MPC k-supplier (Theorem 18).

The instance lives in one metric space: ``customers`` and ``suppliers``
are disjoint id subsets of the cluster's ground set, and each machine
holds its local share of both.  The pipeline:

1. lines 1–3 — a 9-approximation ``r = r(C, Q) + r(Q, S)`` where ``Q``
   is the GMM-of-GMMs k-center coreset of the customers;
2. lines 4–5 — probe the ladder ``τ_i = (r/9)(1+ε)^i`` with
   (k+1)-bounded MIS runs on the *customer* threshold graph
   ``G_{2τ_i}``;
3. lines 6–8 — find an index ``j`` where ``|M_j| ≤ k`` and every pivot
   of ``M_j`` has a supplier within ``τ_j``; open the nearest supplier
   of each pivot.  Covering: every customer is within ``2τ_j`` of a
   pivot and each pivot within ``τ_j`` of its supplier ⇒ radius
   ``3τ_j ≤ 3(1+ε)r*``.

**Fix relative to the paper's prose** (DESIGN.md): the paper computes
``r(Q, S)`` as ``max_i r(Q, S_i)``, which *over*-estimates it
(``max_q min_s`` ≠ ``max_i max_q min_{s∈S_i}``) and would break the
``r ≤ 9r*`` direction.  We have each machine send its per-pivot local
minima (k words) and take the elementwise min at the central machine —
same Õ(mk) communication, correct value.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from repro.constants import DEFAULT_CONSTANTS, TheoryConstants
from repro.core.gmm import gmm
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.core.results import SupplierResult
from repro.core.threshold_search import find_flip
from repro.exceptions import InfeasibleInstanceError
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def _local_intersect(mach, ids: np.ndarray) -> np.ndarray:
    return mach.local_ids[np.isin(mach.local_ids, ids)]


def _min_dist_to_suppliers(
    cluster: MPCCluster, pivots: np.ndarray, suppliers: np.ndarray
) -> np.ndarray:
    """``d(q, S)`` for each pivot ``q``, computed distributedly.

    Broadcast the pivots, gather per-machine minima over local
    suppliers, take the elementwise min (2 rounds).
    """
    cluster.broadcast_points_from_central(pivots, tag="supplier/pivots")

    def _local_min(mach):
        local_sup = _local_intersect(mach, suppliers)
        if local_sup.size and pivots.size:
            return mach.dist_to_set(pivots, local_sup)
        return np.full(pivots.size, np.inf)

    local_mins = cluster.map_machines(_local_min)
    inbox = cluster.gather_to_central(
        {i: local_mins[i] for i in range(cluster.m)}, tag="supplier/min-dist"
    )
    stacked = np.stack([np.asarray(msg.payload, dtype=np.float64) for msg in inbox])
    return stacked.min(axis=0)


def _nearest_suppliers(
    cluster: MPCCluster, pivots: np.ndarray, suppliers: np.ndarray
) -> np.ndarray:
    """Open the nearest supplier of every pivot (2 rounds).

    Machines report, per pivot, their best local supplier id and its
    distance; the central machine takes the global argmin.
    """
    cluster.broadcast_points_from_central(pivots, tag="supplier/pivots2")

    def _local_best(mach):
        local_sup = _local_intersect(mach, suppliers)
        if local_sup.size and pivots.size:
            D = mach.pairwise(pivots, local_sup)
            best = D.argmin(axis=1)
            return local_sup[best], D[np.arange(pivots.size), best]
        # no local suppliers: nothing to propose
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)

    proposals = cluster.map_machines(_local_best)
    payloads = {
        i: PointBatch(
            ids,
            {"dist": dist, "pivot": np.arange(ids.size, dtype=np.float64)},
        )
        for i, (ids, dist) in enumerate(proposals)
    }
    inbox = cluster.gather_to_central(payloads, tag="supplier/nearest")
    best_dist = np.full(pivots.size, np.inf)
    best_id = np.full(pivots.size, -1, dtype=np.int64)
    for msg in inbox:
        ids = msg.payload.ids
        dists = msg.payload.columns["dist"]
        piv = msg.payload.columns["pivot"].astype(np.int64)
        better = dists < best_dist[piv]
        best_dist[piv[better]] = dists[better]
        best_id[piv[better]] = ids[better]
    if np.any(best_id < 0):
        raise InfeasibleInstanceError("a pivot has no reachable supplier")
    return np.unique(best_id)


def mpc_ksupplier(
    cluster: MPCCluster,
    customers: Iterable[int],
    suppliers: Iterable[int],
    k: int,
    epsilon: float = 0.1,
    constants: Optional[TheoryConstants] = None,
    trim_mode: str = "random",
) -> SupplierResult:
    """Algorithm 6: (3+ε)-approximate k-supplier.

    Parameters
    ----------
    cluster:
        MPC deployment whose ground set contains both customers and
        suppliers.
    customers, suppliers:
        Disjoint id subsets of the ground set (every id must belong to
        exactly one of the two roles; ids in neither set are ignored).
    k:
        Number of suppliers to open.
    epsilon:
        Approximation slack; the output radius is at most
        ``3(1+ε)·r*``.

    Returns
    -------
    SupplierResult
        ``suppliers`` of size ≤ k; ``radius = r(C, suppliers)``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    constants = constants or DEFAULT_CONSTANTS
    customers = np.unique(np.asarray(customers, dtype=np.int64))
    suppliers = np.unique(np.asarray(suppliers, dtype=np.int64))
    if customers.size == 0 or suppliers.size == 0:
        raise InfeasibleInstanceError("need at least one customer and one supplier")
    if np.intersect1d(customers, suppliers).size:
        raise InfeasibleInstanceError("customers and suppliers must be disjoint")
    if k < 1:
        raise InfeasibleInstanceError("k-supplier needs k >= 1")
    round0 = cluster.round_no

    with cluster.obs.span("supplier/run", k=k, epsilon=epsilon):
        return _ksupplier_body(
            cluster, customers, suppliers, k, epsilon, constants, trim_mode, round0
        )


def _ksupplier_body(
    cluster: MPCCluster,
    customers: np.ndarray,
    suppliers: np.ndarray,
    k: int,
    epsilon: float,
    constants: TheoryConstants,
    trim_mode: str,
    round0: int,
) -> SupplierResult:
    # -- lines 1–2: GMM coreset over the customers ------------------------------
    with cluster.obs.span("supplier/coreset", k=k):
        local_T = cluster.map_machines(
            lambda mach: gmm(mach, _local_intersect(mach, customers), k)
        )
        payloads = {i: PointBatch(local_T[i]) for i in range(cluster.m)}
        inbox = cluster.gather_to_central(payloads, tag="supplier/coreset")
        T = np.unique(np.concatenate([msg.payload.ids for msg in inbox]))
        Q = gmm(cluster.central, T, k)

    # -- line 3: r = r(C, Q) + r(Q, S) ------------------------------------------
    with cluster.obs.span("supplier/radius-estimate"):
        cluster.broadcast_points_from_central(Q, tag="supplier/Q")

        def _local_rcq(mach):
            local_c = _local_intersect(mach, customers)
            return float(mach.dist_to_set(local_c, Q).max()) if local_c.size else 0.0

        local_rcq = cluster.map_machines(_local_rcq)
        inbox = cluster.gather_to_central(
            {i: local_rcq[i] for i in range(cluster.m)}, tag="supplier/rCQ"
        )
        r_CQ = max(float(msg.payload) for msg in inbox)
        dQS = _min_dist_to_suppliers(cluster, Q, suppliers)
        r_QS = float(dQS.max())
        r = r_CQ + r_QS

    if r <= 0.0:
        chosen = _nearest_suppliers(cluster, Q, suppliers)[:k]
        return SupplierResult(
            suppliers=chosen,
            radius=0.0,
            k=k,
            epsilon=epsilon,
            coreset_value=r,
            pivots=Q,
            rounds=cluster.round_no - round0,
            stats=cluster.stats.summary(),
        )

    # -- lines 4–5: the ladder ----------------------------------------------------
    t = int(math.ceil(math.log(9.0) / math.log1p(epsilon)))
    taus = [(r / 9.0) * (1.0 + epsilon) ** i for i in range(t + 1)]

    customer_active = cluster.map_machines(
        lambda mach: _local_intersect(mach, customers)
    )

    pivot_cache: dict[int, np.ndarray] = {}

    def pivots_at(i: int) -> np.ndarray:
        if i not in pivot_cache:
            if i == t:
                pivot_cache[i] = Q
            else:
                with cluster.obs.span("supplier/probe", ladder_index=i, tau=taus[i]):
                    pivot_cache[i] = mpc_k_bounded_mis(
                        cluster,
                        2.0 * taus[i],
                        k + 1,
                        constants,
                        active_by_machine=customer_active,
                        trim_mode=trim_mode,
                    ).ids
        return pivot_cache[i]

    ok_cache: dict[int, bool] = {}

    def ok(i: int) -> bool:
        if i not in ok_cache:
            M = pivots_at(i)
            if M.size > k:
                ok_cache[i] = False
            else:
                with cluster.obs.span("supplier/feasibility", ladder_index=i):
                    dmin = _min_dist_to_suppliers(cluster, M, suppliers)
                ok_cache[i] = bool(dmin.max() <= taus[i])
        return ok_cache[i]

    # -- lines 6–7: find the flip (smallest workable index) ------------------------
    if ok(0):
        j = 0
    elif not ok(t):
        # The proof guarantees ok(t); if floating-point slack ever broke it,
        # fall back to j = t: Q covers C within r ≤ 9·τ_t-ish — still the
        # coreset-level guarantee (paper line 7 prescribes j = 0 for the
        # "no such j" case, which only arises in this same degenerate way).
        j = t
    else:
        # invariant search between a failing low end and a passing high end
        jm1, _, _ = find_flip(
            lambda i: i, lambda i: not ok(i), 0, t,
            obs=cluster.obs, span="supplier/search",
        )
        j = jm1 + 1

    pivots = pivots_at(j)
    with cluster.obs.span("supplier/open", pivots=int(pivots.size)):
        chosen = _nearest_suppliers(cluster, pivots, suppliers)

        # actual service radius, for reporting
        cluster.broadcast_points_from_central(chosen, tag="supplier/chosen")

        def _local_radius(mach):
            local_c = _local_intersect(mach, customers)
            return float(mach.dist_to_set(local_c, chosen).max()) if local_c.size else 0.0

        local_radii = cluster.map_machines(_local_radius)
        inbox = cluster.gather_to_central(
            {i: local_radii[i] for i in range(cluster.m)}, tag="supplier/final-radius"
        )
        radius = max(float(msg.payload) for msg in inbox)

    return SupplierResult(
        suppliers=chosen,
        radius=radius,
        k=k,
        epsilon=epsilon,
        coreset_value=r,
        pivots=pivots,
        rounds=cluster.round_no - round0,
        stats=cluster.stats.summary(),
    )
