"""Flip-pair binary search over a threshold ladder.

Algorithms 2, 5, and 6 all probe a geometric ladder of thresholds
``τ_0 … τ_t`` and need an *adjacent flip*: an index ``j`` where a
predicate holds at ``j`` but fails at ``j+1``.  The predicate need not
be monotone in ``j`` (MIS sizes are not monotone in τ); the classic
invariant search still works whenever ``good(lo)`` holds and
``good(hi)`` fails:

    while hi - lo > 1:  probe mid; keep the endpoint whose value
    preserves the invariant.

Every probe is one (expensive, multi-round) k-bounded-MIS run, so the
search costs O(log t) = O(log 1/ε) probes — the round bound claimed in
Theorems 3, 17, 18.  Probes are memoized so the caller can retrieve
both endpoints of the flip.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, TypeVar

T = TypeVar("T")


def find_flip(
    probe: Callable[[int], T],
    good: Callable[[T], bool],
    lo: int,
    hi: int,
    cache: Dict[int, T] | None = None,
    obs=None,
    span: str = "search/flip",
) -> Tuple[int, T, T]:
    """Find ``j`` with ``good(probe(j))`` and ``not good(probe(j+1))``.

    Preconditions: ``lo < hi``, ``good(probe(lo))`` holds and
    ``good(probe(hi))`` fails (verified; violations raise
    ``ValueError``).  Returns ``(j, value_j, value_j1)``.

    ``obs`` may be an :class:`~repro.obs.observer.ObserverHub` (e.g.
    ``cluster.obs``); the whole search then runs inside one phase span
    named ``span``, so the O(log t) probe cost of Theorems 3/17/18 is
    attributed to the ladder search in trace exports.
    """
    if lo >= hi:
        raise ValueError("need lo < hi")
    cache = cache if cache is not None else {}

    def get(i: int) -> T:
        if i not in cache:
            cache[i] = probe(i)
        return cache[i]

    def search() -> Tuple[int, T, T]:
        nonlocal lo, hi
        if not good(get(lo)):
            raise ValueError("invariant violated: good(lo) must hold")
        if good(get(hi)):
            raise ValueError("invariant violated: good(hi) must fail")

        while hi - lo > 1:
            mid = (lo + hi) // 2
            if good(get(mid)):
                lo = mid
            else:
                hi = mid
        return lo, get(lo), get(hi)

    if obs is None:
        return search()
    with obs.span(span, lo=lo, hi=hi):
        return search()
