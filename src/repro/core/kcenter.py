"""Algorithm 5 — (2+ε)-approximation MPC k-center (Theorem 17), plus
the two-round 4-approximation side product.

Structure:

* **Lines 1–3** (:func:`mpc_kcenter_coreset`): machines run GMM locally,
  the central machine runs GMM on the union, and ``r = r(V, Q)`` is a
  4-approximation of the optimal radius (via Lemma 16,
  ``r(S, GMM(S)) ≤ div_{k+1}(S)``, and ``div_{k+1}(V) ≤ 2r*``).  This
  matches the Malkomes et al. bound in two rounds.
* **Lines 4–7** (:func:`mpc_kcenter`): probe the *descending* ladder
  ``τ_i = r/(1+ε)^i`` with (k+1)-bounded MIS runs.  At the flip index,
  ``M_j`` (≤ k points, maximal) covers V with radius τ_j, while the
  k+1 independent points of ``M_{j+1}`` certify ``r* ≥ τ_{j+1}/2`` by
  pigeonhole — together a 2(1+ε) factor.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.constants import DEFAULT_CONSTANTS, TheoryConstants
from repro.core.gmm import gmm
from repro.core.kbounded_mis import mpc_k_bounded_mis
from repro.core.results import ClusteringResult, CoresetResult
from repro.core.threshold_search import find_flip
from repro.core.warm import WarmStart
from repro.exceptions import InfeasibleInstanceError
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def _distributed_radius(cluster: MPCCluster, centers: np.ndarray) -> float:
    """``r(V, centers)`` in two MPC rounds: broadcast the centers, gather
    the per-machine maxima."""
    with cluster.obs.span("kcenter/radius", centers=int(centers.size)):
        cluster.broadcast_points_from_central(centers, tag="kcenter/centers")
        local_r = cluster.map_machines(
            lambda mach: float(mach.dist_to_set(mach.local_ids, centers).max())
            if mach.local_ids.size
            else 0.0
        )
        inbox = cluster.gather_to_central(
            {i: local_r[i] for i in range(cluster.m)}, tag="kcenter/radius"
        )
        return max(float(msg.payload) for msg in inbox)


def mpc_kcenter_coreset(
    cluster: MPCCluster, k: int, warm_start: Optional[WarmStart] = None
) -> CoresetResult:
    """Lines 1–3 of Algorithm 5: the two-round 4-approximation.

    Returns a :class:`CoresetResult` with ``|ids| = k`` and
    ``r* ≤ value = r(V, ids) ≤ 4r*``; unpacking as ``Q, r = ...`` keeps
    working.

    With ``warm_start`` (an append-chained child re-solve), the
    per-machine GMM runs only over each machine's *delta* points (ids
    ``≥ warm_start.base_n``); the parent's centers — which already
    summarize the old points — are shipped alongside and join the union
    before the central GMM.  Same round structure, ``O(k·base_n)``
    fewer oracle evaluations, and ``r = r(V, Q)`` is still measured
    against the full child dataset.
    """
    if k < 1:
        raise InfeasibleInstanceError("k-center needs k >= 1")
    if k > cluster.n:
        raise InfeasibleInstanceError(f"k={k} exceeds the number of points n={cluster.n}")
    if warm_start is not None and warm_start.base_n >= cluster.n:
        raise InfeasibleInstanceError(
            f"warm start base_n={warm_start.base_n} leaves no delta in n={cluster.n}"
        )
    round0 = cluster.round_no

    with cluster.obs.span("kcenter/coreset", k=k, warm=warm_start is not None):
        if warm_start is None:
            local_T = cluster.map_machines(lambda mach: gmm(mach, mach.local_ids, k))
        else:
            ws = warm_start

            def _local(mach):
                # GMM over the delta only; attach the parent centers this
                # machine owns so the central union still sees them.
                T_i = gmm(mach, ws.delta_ids(mach.local_ids), k)
                return np.union1d(T_i, ws.local_centers(mach.local_ids))

            local_T = cluster.map_machines(_local)
        payloads = {i: PointBatch(local_T[i]) for i in range(cluster.m)}
        inbox = cluster.gather_to_central(payloads, tag="kcenter/coreset")
        T = np.unique(np.concatenate([msg.payload.ids for msg in inbox]))
        Q = gmm(cluster.central, T, k)
        r = _distributed_radius(cluster, Q)
    return CoresetResult(
        ids=Q, value=float(r), k=k, kind="kcenter", rounds=cluster.round_no - round0
    )


def mpc_kcenter(
    cluster: MPCCluster,
    k: int,
    epsilon: float = 0.1,
    constants: Optional[TheoryConstants] = None,
    trim_mode: str = "random",
    warm_start: Optional[WarmStart] = None,
) -> ClusteringResult:
    """Algorithm 5: (2+ε)-approximate k-center in O(log 1/ε) probes.

    Parameters
    ----------
    cluster:
        The MPC deployment over the input metric.
    k:
        Number of centers (1 ≤ k ≤ n).
    epsilon:
        Approximation slack; the output radius is at most
        ``2(1+ε)·r*``.
    constants, trim_mode:
        Forwarded to the inner (k+1)-bounded MIS runs.
    warm_start:
        Optional :class:`~repro.core.warm.WarmStart` from a parent
        dataset version; only the coreset stage changes (per-machine
        GMM over the delta, parent centers joining the union).  The
        threshold ladder runs unchanged over the full dataset, so the
        output still satisfies the (2+ε) guarantee.

    Returns
    -------
    ClusteringResult
        ``centers`` of size ≤ k; ``radius = r(V, centers)``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    constants = constants or DEFAULT_CONSTANTS
    round0 = cluster.round_no

    with cluster.obs.span("kcenter/run", k=k, epsilon=epsilon):
        Q, r = mpc_kcenter_coreset(cluster, k, warm_start=warm_start)
        if r <= 0.0:
            # Q already covers everything at radius 0: optimal.
            return ClusteringResult(
                centers=Q,
                radius=0.0,
                k=k,
                epsilon=epsilon,
                tau=0.0,
                coreset_value=r,
                rounds=cluster.round_no - round0,
                stats=cluster.stats.summary(),
            )

        t = int(math.ceil(math.log(4.0) / math.log1p(epsilon))) + 1
        taus = [r / (1.0 + epsilon) ** i for i in range(t + 1)]

        def probe(i: int) -> np.ndarray:
            if i == 0:
                return Q
            with cluster.obs.span("kcenter/probe", ladder_index=i, tau=taus[i]):
                return mpc_k_bounded_mis(
                    cluster, taus[i], k + 1, constants, trim_mode=trim_mode
                ).ids

        def good(M: np.ndarray) -> bool:
            # a (k+1)-bounded MIS of size ≤ k is maximal, hence a k-center
            # solution with radius τ_i; size k+1 certifies a lower bound.
            return M.size <= k

        cache: dict[int, np.ndarray] = {0: Q}

        def cached_probe(i: int) -> np.ndarray:
            if i not in cache:
                cache[i] = probe(i)
            return cache[i]

        lo, hi = 0, t
        if warm_start is not None and warm_start.objective > 0.0:
            # Bracket the flip search at the rung nearest the parent's
            # objective.  MIS probes get sharply more expensive as τ
            # shrinks, and the cold path always pays for the costliest
            # rung (τ_t, the bracket's bad end).  When the pivot probe
            # is already bad — the common case, since the child's
            # radius rarely drops below the parent's — the search stays
            # in [0, pivot] and the τ_t probe is skipped entirely.
            guess = math.log(r / warm_start.objective) / math.log1p(epsilon)
            pivot = min(max(int(round(guess)), 1), t - 1)
            if good(cached_probe(pivot)):
                lo = pivot
            else:
                hi = pivot
        if good(cached_probe(hi)):
            # hi can only be good when it is τ_t itself.  Theory forbids
            # this (τ_t < r/4 ≤ r*), but if the MIS hands us a ≤k maximal
            # set at an even smaller radius, it is simply a better
            # solution — take it.
            centers, tau_j = cache[hi], taus[hi]
        else:
            j, M_j, _ = find_flip(
                probe, good, lo, hi, cache, obs=cluster.obs, span="kcenter/search"
            )
            centers, tau_j = M_j, taus[j]

        radius = _distributed_radius(cluster, centers)
    return ClusteringResult(
        centers=centers,
        radius=float(radius),
        k=k,
        epsilon=epsilon,
        tau=float(tau_j),
        coreset_value=r,
        rounds=cluster.round_no - round0,
        stats=cluster.stats.summary(),
    )
