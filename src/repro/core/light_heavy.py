"""Light/heavy vertex machinery (Definition 4, Lemmas 5–6).

Given a vertex sample ``S``, a vertex ``v`` is *heavy* iff
``|N(v) ∩ S| ≥ δ ln n`` and *light* otherwise.  Heavy vertices get a
(1±ε)-accurate sampled degree estimate (Lemma 8); light vertices get
exact degrees — unless there are so many light vertices that an
independent set of size ``k`` can be pulled straight out of them
(Lemma 6), in which case the whole pipeline short-circuits.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def sample_degrees(oracle, query: Iterable[int], sample: Iterable[int], tau: float) -> np.ndarray:
    """``|N(v) ∩ S|`` in ``G_τ`` for each queried ``v`` (self excluded)."""
    query = np.asarray(query, dtype=np.int64).reshape(-1)
    sample = np.asarray(sample, dtype=np.int64).reshape(-1)
    if query.size == 0:
        return np.zeros(0, dtype=np.int64)
    if sample.size == 0:
        return np.zeros(query.size, dtype=np.int64)
    counts = oracle.count_within(query, sample, tau)
    counts -= np.isin(query, sample).astype(np.int64)
    return counts


def greedy_bounded_independent_set(
    oracle,
    candidates: Iterable[int],
    tau: float,
    k: int,
) -> np.ndarray:
    """Greedy independent set of size ≤ k in ``G_τ`` over ``candidates``.

    This is the local extraction step of Lemma 6: scan candidates in
    order, keep a vertex iff it is non-adjacent to everything kept so
    far, stop at ``k``.  Each kept vertex removes at most
    ``max-degree + 1`` candidates, which is what powers the lemma's
    ``|P| / (2δm ln n) ≥ k`` iteration count.

    Distances are evaluated lazily against the kept set only, so the
    cost is O(k · |candidates|).
    """
    cand = np.asarray(candidates, dtype=np.int64).reshape(-1)
    if k < 1 or cand.size == 0:
        return np.zeros(0, dtype=np.int64)
    cand = np.unique(cand)
    kept: list[int] = [int(cand[0])]
    # running distance of every candidate to the kept set
    dist = oracle.pairwise(cand, [kept[0]])[:, 0]
    alive = dist > tau
    while len(kept) < k:
        alive_ids = cand[alive]
        if alive_ids.size == 0:
            break
        nxt = int(alive_ids[0])
        kept.append(nxt)
        new_d = oracle.pairwise(cand, [nxt])[:, 0]
        alive &= new_d > tau
    return np.asarray(kept, dtype=np.int64)
