"""Result records returned by the MPC algorithms.

Every record carries the solution, the quantities the theorems speak
about (size, radius/diversity, approximation parameter), and the MPC
accounting snapshot (rounds, communication) so experiments read their
numbers straight off the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

import numpy as np


class _SerializableResult:
    """Mixin: dataclass → plain dict (numpy converted), for
    :mod:`repro.analysis.io` persistence."""

    def to_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, np.ndarray):
                value = value.tolist()
            elif isinstance(value, (np.integer, np.floating, np.bool_)):
                value = value.item()
            out[f.name] = value
        out["size"] = self.size
        return out


@dataclass
class CoresetResult(_SerializableResult):
    """Output of the two-round coreset stages (lines 1–3 of
    Algorithms 2 and 5).

    ``ids`` is the k-subset ``Q`` and ``value`` the certified
    4-approximation ``r`` (a radius for k-center, a diversity for
    diversity maximization — see :attr:`kind`).  Iterating yields
    ``(ids, value)``, so the historical ``Q, r = mpc_*_coreset(...)``
    tuple unpacking keeps working unchanged.
    """

    ids: np.ndarray
    value: float
    k: int
    #: which problem the value certifies: 'kcenter' or 'diversity'
    kind: str = "kcenter"
    rounds: int = 0

    def __iter__(self):
        return iter((self.ids, self.value))

    def __len__(self) -> int:
        return 2

    @property
    def size(self) -> int:
        return int(self.ids.size)


@dataclass
class MISResult(_SerializableResult):
    """Output of the k-bounded MIS (Algorithm 4).

    The contract of Definition 1: ``ids`` is an independent set in
    ``G_τ``, and either it is maximal (``maximal=True``, size ≤ k) or it
    has size exactly ``k``.
    """

    ids: np.ndarray
    tau: float
    k: int
    maximal: bool
    #: which exit fired: 'maximal', 'size_k_central', 'size_k_pruning',
    #: 'size_k_light_path'
    terminated_via: str
    rounds: int
    #: active-graph edge counts per outer round (instrumentation only)
    edge_trace: list = field(default_factory=list)

    @property
    def size(self) -> int:
        return int(self.ids.size)


@dataclass
class DiversityResult(_SerializableResult):
    """Output of MPC k-diversity maximization (Algorithm 2)."""

    ids: np.ndarray
    diversity: float
    k: int
    epsilon: float
    #: the 4-approximation value r from lines 1–3
    coreset_value: float
    rounds: int
    stats: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.ids.size)


@dataclass
class ClusteringResult(_SerializableResult):
    """Output of MPC k-center (Algorithm 5)."""

    centers: np.ndarray
    radius: float
    k: int
    epsilon: float
    #: the certified threshold τ_j (radius ≤ τ_j by construction)
    tau: float
    #: the 4-approximation value r from lines 1–3
    coreset_value: float
    rounds: int
    stats: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.centers.size)


@dataclass
class SupplierResult(_SerializableResult):
    """Output of MPC k-supplier (Algorithm 6)."""

    suppliers: np.ndarray
    radius: float
    k: int
    epsilon: float
    #: the 9-approximation value r from lines 1–3
    coreset_value: float
    #: the customer pivots M_j whose nearest suppliers were opened
    pivots: Optional[np.ndarray]
    rounds: int
    stats: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(self.suppliers.size)
