"""Algorithm 3 — MPC degree approximation in threshold graphs (Theorem 9).

Pipeline (each numbered step is one MPC round):

1. every machine samples its active vertices with probability ``1/m``
   and ships the sample to all machines (all-to-all);
2. machines classify their active vertices light/heavy against the
   global sample (Definition 4) and report their light counts to the
   central machine;
3. the central machine decides between the *light path* (too many light
   vertices ⇒ extract an independent set of size k, Lemma 6) and the
   *exact path*, and broadcasts its decision together with the sampling
   fraction ρ;
4. light path — machines send a ρ-fraction of their light vertices to
   the central machine, which runs the greedy extraction; exact path —
   machines exchange light vertices all-to-all, then exchange partial
   degrees ``d_i(v)``, so every machine knows the exact degree of every
   light vertex; heavy vertices take the estimate ``m·|N(v) ∩ S|``.

Robustness beyond the paper (DESIGN.md): the light-path extraction is
only guaranteed to reach ``k`` *with high probability*.  If the greedy
falls short (possible with scaled-down constants), we fall through to
the exact path instead of failing — correctness always, the w.h.p.
communication bound in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.constants import DEFAULT_CONSTANTS, TheoryConstants
from repro.core.light_heavy import greedy_bounded_independent_set, sample_degrees
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


@dataclass
class DegreeApproxResult:
    """Outcome of Algorithm 3.

    Either ``kind == 'degrees'`` and :attr:`p` holds an approximate
    degree for every active vertex (NaN elsewhere), or
    ``kind == 'independent_set'`` and :attr:`independent_set` holds an
    independent set of size ``k`` extracted from the light vertices.
    """

    kind: str
    p: Optional[np.ndarray] = None
    independent_set: Optional[np.ndarray] = None
    light_count: int = 0
    heavy_count: int = 0
    sample_size: int = 0
    light_path_taken: bool = False
    light_path_fell_through: bool = False
    rounds_used: int = 0
    extras: dict = field(default_factory=dict)


def mpc_degree_approximation(
    cluster: MPCCluster,
    tau: float,
    k: int,
    constants: TheoryConstants = DEFAULT_CONSTANTS,
    active_by_machine: Optional[List[np.ndarray]] = None,
) -> DegreeApproxResult:
    """Run Algorithm 3 on the active subgraph of ``G_τ``.

    Parameters
    ----------
    cluster:
        The MPC deployment (its metric defines the threshold graph).
    tau:
        Distance threshold of ``G_τ``.
    k:
        Target independent-set size for the light path.
    constants:
        Analysis constants (δ etc.); see :mod:`repro.constants`.
    active_by_machine:
        Per-machine arrays of *active* vertex ids; defaults to each
        machine's full partition.  Degrees are with respect to the
        active induced subgraph.

    Returns
    -------
    DegreeApproxResult
    """
    if active_by_machine is None:
        active_by_machine = [mach.local_ids for mach in cluster.machines]
    active_by_machine = [np.asarray(a, dtype=np.int64) for a in active_by_machine]
    n_active_total = int(sum(a.size for a in active_by_machine))

    if n_active_total == 0:
        return DegreeApproxResult(kind="degrees", p=np.full(cluster.n, np.nan))

    with cluster.obs.span("degree/estimate", tau=tau, k=k, active=n_active_total):
        return _degree_approx_body(
            cluster, tau, k, constants, active_by_machine, n_active_total
        )


def _degree_approx_body(
    cluster: MPCCluster,
    tau: float,
    k: int,
    constants: TheoryConstants,
    active_by_machine: List[np.ndarray],
    n_active_total: int,
) -> DegreeApproxResult:
    m = cluster.m
    n = cluster.n  # thresholds use the global n, as in the paper
    round0 = cluster.round_no

    # -- round 1: sample with probability 1/m, exchange all-to-all ------------
    prob = 1.0 / m

    def _sample(mach):
        active = active_by_machine[mach.id]
        if active.size:
            mask = mach.rng.random(active.size) < prob
            return active[mask]
        return np.zeros(0, dtype=np.int64)

    drawn = cluster.map_machines(_sample)
    samples: dict[int, np.ndarray] = {i: drawn[i] for i in range(m)}
    cluster.all_to_all_points(samples, tag="degree/sample")
    S = np.concatenate(list(samples.values()))

    # -- local classification (independent per machine: parallelizable) ---------
    heavy_thr = constants.heavy_threshold(n)

    def _classify(mach):
        active = active_by_machine[mach.id]
        sdeg = sample_degrees(mach, active, S, tau)
        heavy = sdeg >= heavy_thr
        return sdeg, heavy, active[~heavy]

    classified = cluster.map_machines(_classify)
    sdeg_by_machine: List[np.ndarray] = [c[0] for c in classified]
    heavy_mask_by_machine: List[np.ndarray] = [c[1] for c in classified]
    light_by_machine: List[np.ndarray] = [c[2] for c in classified]

    # -- round 2: report light counts -------------------------------------------
    inbox = cluster.gather_to_central(
        {i: int(light_by_machine[i].size) for i in range(m)}, tag="degree/light-count"
    )
    total_light = sum(int(msg.payload) for msg in inbox)
    total_heavy = n_active_total - total_light

    trigger = constants.light_path_trigger(n, m, k)
    take_light_path = total_light > trigger

    # -- round 3: broadcast the decision + rho ----------------------------------
    rho = min(1.0, trigger / total_light) if (take_light_path and total_light > 0) else 0.0
    cluster.broadcast(
        cluster.CENTRAL,
        {"light_path": take_light_path, "rho": rho},
        tag="degree/decision",
    )
    cluster.step()

    fell_through = False
    if take_light_path:
        # -- round 4: ship a rho-fraction of light vertices to central ---------
        shipped: dict[int, PointBatch] = {}
        for i in range(m):
            light = light_by_machine[i]
            count = int(np.ceil(rho * light.size))
            shipped[i] = PointBatch(light[:count])
        inbox = cluster.gather_to_central(shipped, tag="degree/light-ship")
        P = np.concatenate([msg.payload.ids for msg in inbox]) if inbox else np.zeros(0, np.int64)
        ind = greedy_bounded_independent_set(cluster.central, P, tau, k)
        if ind.size >= k:
            return DegreeApproxResult(
                kind="independent_set",
                independent_set=ind[:k],
                light_count=total_light,
                heavy_count=total_heavy,
                sample_size=int(S.size),
                light_path_taken=True,
                rounds_used=cluster.round_no - round0,
            )
        # w.h.p. this does not happen; fall through to the exact path so the
        # overall algorithm keeps its unconditional correctness.
        fell_through = True

    # -- exact path: all-to-all light vertices ----------------------------------
    # (the paper's line 8; received volume per machine is |L| = Õ(mk))
    cluster.all_to_all_points(
        {i: light_by_machine[i] for i in range(m)}, tag="degree/light-bcast"
    )

    # each machine computes its partial degree d_i(v) for every light v and
    # returns the vector *to the owner of v* (line 9 read communication-
    # optimally: only the owner needs d(v), so sending the partials to all
    # machines would waste an m-factor of bandwidth)
    def _partials(mach):
        active = active_by_machine[mach.id]
        out = []
        for owner in range(m):
            L_o = light_by_machine[owner]
            if L_o.size and active.size:
                cnt = mach.count_within(L_o, active, tau)
                cnt -= np.isin(L_o, active).astype(np.int64)
            else:
                cnt = np.zeros(L_o.size, dtype=np.int64)
            out.append(cnt)
        return out

    per_machine_partials = cluster.map_machines(_partials)
    partial_to_owner: dict[tuple[int, int], np.ndarray] = {}
    for i in range(m):
        for owner in range(m):
            cnt = per_machine_partials[i][owner]
            partial_to_owner[(i, owner)] = cnt
            if i != owner:
                cluster.send(i, owner, cnt.astype(np.float64), tag="degree/partials")
    cluster.step()
    exact_light_deg_by_owner = [
        np.sum(
            np.stack([partial_to_owner[(i, owner)] for i in range(m)]), axis=0
        )
        if light_by_machine[owner].size
        else np.zeros(0)
        for owner in range(m)
    ]

    # assemble the global p array (each value was computed by the machine
    # that owns the vertex; the driver-side array is bookkeeping only)
    p = np.full(n, np.nan, dtype=np.float64)
    for owner, (active, sdeg, heavy) in enumerate(
        zip(active_by_machine, sdeg_by_machine, heavy_mask_by_machine)
    ):
        if active.size == 0:
            continue
        p[active[heavy]] = float(m) * sdeg[heavy].astype(np.float64)
        p[light_by_machine[owner]] = exact_light_deg_by_owner[owner]

    return DegreeApproxResult(
        kind="degrees",
        p=p,
        light_count=total_light,
        heavy_count=total_heavy,
        sample_size=int(S.size),
        light_path_taken=take_light_path,
        light_path_fell_through=fell_through,
        rounds_used=cluster.round_no - round0,
    )
