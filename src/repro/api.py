"""Unified solver facade — one call from raw points to a result.

The paper's algorithms are driver programs over an
:class:`~repro.mpc.cluster.MPCCluster`; assembling metric + partition +
executor by hand is flexible but verbose.  This module is the
one-stop entry point::

    import numpy as np
    from repro import solve_kcenter

    points = np.random.default_rng(0).normal(size=(10_000, 2))
    res = solve_kcenter(points, k=25, eps=0.1, backend="process")
    res.centers, res.radius, res.rounds, res.stats

Every solver accepts the same assembly keywords:

``metric``
    A metric name (``'euclidean'``, ``'manhattan'``, ``'chebyshev'``,
    ``'angular'``/``'cosine'``, ``'hamming'``) applied to ``points``,
    or a ready-made :class:`~repro.metric.base.Metric` instance (then
    ``points`` must be ``None``).
``machines``
    Number of simulated MPC machines (default
    :data:`DEFAULT_MACHINES`, capped at ``n``).
``backend``
    Compute backend: ``'serial'``, ``'thread'``, ``'process'``, or
    ``'remote'`` (socket-connected worker agents, see
    :mod:`repro.mpc.remote`) — or any
    :class:`~repro.mpc.executor.ExecutionBackend` instance (see
    :mod:`repro.mpc.executor`).
``seed``
    Master RNG seed; ``None`` means 0.  Same seed ⇒ bit-identical
    results on every backend.
``partition``
    Partitioner name (``'random'``, ``'block'``, ``'skewed'``) or an
    explicit list of id arrays.  The seeded-``random`` default matches
    the CLI, so library calls and ``repro <cmd>`` runs coincide.
``faults``
    Optional :class:`~repro.faults.FaultPlan` (or any spec its
    :meth:`~repro.faults.FaultPlan.from_spec` accepts) for
    deterministic fault injection; recovery keeps results bit-identical
    to the fault-free run (see ``docs/fault_tolerance.md``).

The legacy entry points (:func:`repro.mpc_kcenter` and friends, driving
an explicitly-built cluster) remain fully supported; the facade
delegates to them, so the two can never drift.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.baselines import (
    charikar_kcenter_outliers,
    ene_sampling_kcenter,
    gonzalez_diversity,
    gonzalez_kcenter,
    hochbaum_shmoys_kcenter,
    indyk_diversity,
    malkomes_kcenter,
    malkomes_kcenter_outliers,
    streaming_kcenter,
)
from repro.constants import TheoryConstants
from repro.core.diversity import mpc_diversity
from repro.core.kcenter import mpc_kcenter
from repro.core.ksupplier import mpc_ksupplier
from repro.core.results import ClusteringResult, DiversityResult, SupplierResult
from repro.metric.base import Metric
from repro.metric.cosine import AngularMetric
from repro.metric.euclidean import EuclideanMetric
from repro.metric.hamming import HammingMetric
from repro.metric.lp import ChebyshevMetric, ManhattanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import ExecutionBackend, get_executor
from repro.mpc.limits import Limits
from repro.mpc.partition import get_partitioner
from repro.obs.metrics import MetricsObserver, MetricsRegistry, default_registry
from repro.obs.tracing import TraceContext, current_trace

#: default machine count when ``machines=None`` (matches the CLI default)
DEFAULT_MACHINES = 8

_METRICS = {
    "euclidean": EuclideanMetric,
    "l2": EuclideanMetric,
    "manhattan": ManhattanMetric,
    "l1": ManhattanMetric,
    "chebyshev": ChebyshevMetric,
    "linf": ChebyshevMetric,
    "angular": AngularMetric,
    "cosine": AngularMetric,
    "hamming": HammingMetric,
}

MetricSpec = Union[str, Metric]
PartitionSpec = Union[str, List[np.ndarray], None]


def make_metric(points, metric: MetricSpec = "euclidean") -> Metric:
    """Resolve a metric spec: a name applied to ``points``, or a
    pass-through :class:`Metric` instance (``points`` must then be
    ``None``)."""
    if isinstance(metric, Metric):
        if points is not None:
            raise ValueError(
                "pass either raw points with a metric name, or a Metric "
                "instance with points=None — not both"
            )
        return metric
    try:
        cls = _METRICS[str(metric).lower()]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of "
            f"{', '.join(sorted(_METRICS))} or a Metric instance"
        ) from None
    if points is None:
        raise ValueError(f"metric {metric!r} needs a points array")
    return cls(points)


def make_executor(backend: Union[str, ExecutionBackend] = "serial",
                  max_workers: Optional[int] = None,
                  workers=None):
    """Resolve a backend spec into an executor (see
    :func:`repro.mpc.executor.get_executor`).

    ``workers`` is the remote worker-agent address spec
    (``"HOST:PORT,HOST:PORT"`` or a list of addresses) consumed by the
    ``'remote'`` backend; other backends ignore it.
    """
    return get_executor(backend, max_workers=max_workers, workers=workers)


def build_cluster(
    points=None,
    *,
    metric: MetricSpec = "euclidean",
    machines: Optional[int] = None,
    seed: Optional[int] = None,
    partition: PartitionSpec = "random",
    backend: Union[str, ExecutionBackend] = "serial",
    strict: bool = True,
    limits: Optional[Limits] = None,
    max_workers: Optional[int] = None,
    workers=None,
    faults=None,
    trace: Optional[TraceContext] = None,
) -> MPCCluster:
    """Assemble an :class:`MPCCluster` the way the solvers do.

    Exposed so advanced callers (and the CLI) can interpose — wrap the
    metric in a :class:`~repro.metric.oracle.CountingOracle`, attach
    observers — and still hand the cluster back to a ``solve_*`` call
    via its ``cluster=`` parameter.

    ``trace`` installs a :class:`~repro.obs.tracing.TraceContext` on
    the cluster's observer hub: phase spans (and, on the process
    backend, forked chunk spans) get deterministic trace/span ids under
    it.  Defaults to the ambient context
    (:func:`~repro.obs.tracing.current_trace`), so a cluster built
    inside ``with use_trace(ctx):`` joins that request's trace without
    any explicit plumbing.
    """
    resolved = make_metric(points, metric)
    seed = 0 if seed is None else int(seed)
    m = DEFAULT_MACHINES if machines is None else int(machines)
    m = max(1, min(m, resolved.n))
    if partition is None:
        partition = "random"
    if isinstance(partition, str):
        parts = get_partitioner(partition)(resolved.n, m, np.random.default_rng(seed))
    else:
        parts = list(partition)
    cluster = MPCCluster(
        resolved,
        m,
        partition=parts,
        seed=seed,
        strict=strict,
        limits=limits,
        executor=make_executor(backend, max_workers=max_workers, workers=workers),
        faults=faults,
    )
    resolved_trace = trace if trace is not None else current_trace()
    if resolved_trace is not None:
        cluster.obs.set_trace(resolved_trace)
    return cluster


def metrics_snapshot() -> dict:
    """JSON-safe snapshot of the process-global metrics registry.

    Every facade ``solve_*`` call feeds the registry natively (MPC
    rounds/words, per-phase durations, oracle-call deltas, fault
    injections/recoveries, per-solver run counts and latency); this is
    the programmatic scrape.  Counter values are bit-reproducible for a
    fixed seed; duration histograms are wall-clock.  See
    ``docs/metrics.md`` for the metric catalogue.
    """
    return default_registry().snapshot()


def metrics_reset() -> None:
    """Zero every value in the process-global metrics registry (metric
    registrations — names, labels, bucket bounds — are kept)."""
    default_registry().reset()


def _observed_solve(algorithm: str, cluster: MPCCluster, call: Callable,
                    registry: Optional[MetricsRegistry] = None):
    """Run one solver call with a metrics observer attached.

    The observer is attached for exactly the duration of the call, so
    pre-assembled clusters (``cluster=``) are instrumented identically
    to facade-assembled ones and repeated solves never stack observers.
    """
    registry = registry if registry is not None else default_registry()
    observer = MetricsObserver(registry)
    registry.counter(
        "repro_solver_runs_total", "facade solver calls started",
        labels=("algorithm",),
    ).labels(algorithm).inc()
    cluster.obs.add(observer)
    t0 = time.perf_counter()
    try:
        result = call()
    finally:
        cluster.obs.remove(observer)
    registry.histogram(
        "repro_solver_latency_seconds",
        "wall-clock per completed facade solver call", labels=("algorithm",),
    ).labels(algorithm).observe(time.perf_counter() - t0)
    return result


def solve_kcenter(
    points=None,
    k: int = 1,
    *,
    metric: MetricSpec = "euclidean",
    machines: Optional[int] = None,
    eps: float = 0.1,
    backend: Union[str, ExecutionBackend] = "serial",
    seed: Optional[int] = None,
    partition: PartitionSpec = "random",
    constants: Optional[TheoryConstants] = None,
    trim_mode: str = "random",
    limits: Optional[Limits] = None,
    cluster: Optional[MPCCluster] = None,
    faults=None,
    warm_start=None,
) -> ClusteringResult:
    """(2+ε)-approximate MPC k-center over raw points (Algorithm 5).

    Pass ``cluster=`` to solve on a pre-assembled deployment (every
    other assembly keyword must then stay at its default).  Pass
    ``warm_start=`` (a :class:`repro.core.WarmStart`) to re-solve an
    append-grown dataset from a parent version's centers — see
    ``docs/streaming.md``.
    """
    cluster = _resolve_cluster(
        cluster, points, metric, machines, seed, partition, backend, limits, faults
    )
    return _observed_solve(
        "kcenter", cluster,
        lambda: mpc_kcenter(cluster, k, epsilon=eps, constants=constants,
                            trim_mode=trim_mode, warm_start=warm_start),
    )


def solve_diversity(
    points=None,
    k: int = 2,
    *,
    metric: MetricSpec = "euclidean",
    machines: Optional[int] = None,
    eps: float = 0.1,
    backend: Union[str, ExecutionBackend] = "serial",
    seed: Optional[int] = None,
    partition: PartitionSpec = "random",
    constants: Optional[TheoryConstants] = None,
    trim_mode: str = "random",
    limits: Optional[Limits] = None,
    cluster: Optional[MPCCluster] = None,
    faults=None,
    warm_start=None,
) -> DiversityResult:
    """(2+ε)-approximate MPC k-diversity maximization (Algorithm 2).

    ``warm_start=`` re-solves an append-grown dataset from a parent
    version's solution — see ``docs/streaming.md``.
    """
    cluster = _resolve_cluster(
        cluster, points, metric, machines, seed, partition, backend, limits, faults
    )
    return _observed_solve(
        "diversity", cluster,
        lambda: mpc_diversity(cluster, k, epsilon=eps, constants=constants,
                              trim_mode=trim_mode, warm_start=warm_start),
    )


def solve_ksupplier(
    points=None,
    customers: Optional[Iterable[int]] = None,
    suppliers: Optional[Iterable[int]] = None,
    k: int = 1,
    *,
    metric: MetricSpec = "euclidean",
    machines: Optional[int] = None,
    eps: float = 0.1,
    backend: Union[str, ExecutionBackend] = "serial",
    seed: Optional[int] = None,
    partition: PartitionSpec = "random",
    constants: Optional[TheoryConstants] = None,
    trim_mode: str = "random",
    limits: Optional[Limits] = None,
    cluster: Optional[MPCCluster] = None,
    faults=None,
) -> SupplierResult:
    """(3+ε)-approximate MPC k-supplier (Algorithm 6).

    ``customers`` and ``suppliers`` are disjoint id subsets of the
    point set (row indices of ``points``).
    """
    if customers is None or suppliers is None:
        raise ValueError("solve_ksupplier needs customer and supplier id sets")
    cluster = _resolve_cluster(
        cluster, points, metric, machines, seed, partition, backend, limits, faults
    )
    return _observed_solve(
        "ksupplier", cluster,
        lambda: mpc_ksupplier(cluster, customers, suppliers, k, epsilon=eps,
                              constants=constants, trim_mode=trim_mode),
    )


def _resolve_cluster(
    cluster: Optional[MPCCluster],
    points,
    metric: MetricSpec,
    machines: Optional[int],
    seed: Optional[int],
    partition: PartitionSpec,
    backend: Union[str, ExecutionBackend],
    limits: Optional[Limits],
    faults=None,
) -> MPCCluster:
    if cluster is not None:
        if points is not None or isinstance(metric, Metric):
            raise ValueError("pass either cluster= or points/metric, not both")
        if faults is not None:
            raise ValueError(
                "pass either cluster= or faults=, not both — give the plan "
                "to build_cluster(faults=...) when pre-assembling"
            )
        return cluster
    return build_cluster(
        points,
        metric=metric,
        machines=machines,
        seed=seed,
        partition=partition,
        backend=backend,
        limits=limits,
        faults=faults,
    )


def _baseline_solver(name: str, kind: str, run: Callable, doc: str):
    """Build a facade entry point around one ``repro.baselines`` comparator.

    ``run(cluster, k, outliers)`` executes the baseline and returns
    ``(ids, value)``; ``kind`` says whether ``value`` is a k-center
    radius or a diversity.  The wrapper accepts the full facade keyword
    surface — ``eps``/``constants``/``trim_mode`` are taken for
    interface parity (the baselines have no such knobs) so the service
    runner dispatches every :data:`SOLVERS` name uniformly.  Sequential
    baselines run on the cluster's metric (so a service
    ``CountingOracle`` still meters them) and report 0 MPC rounds; the
    MPC baselines report the rounds they actually spent on the cluster.
    """

    def solver(
        points=None,
        k: int = 1,
        *,
        metric: MetricSpec = "euclidean",
        machines: Optional[int] = None,
        eps: float = 0.1,
        backend: Union[str, ExecutionBackend] = "serial",
        seed: Optional[int] = None,
        partition: PartitionSpec = "random",
        constants: Optional[TheoryConstants] = None,
        trim_mode: str = "random",
        limits: Optional[Limits] = None,
        cluster: Optional[MPCCluster] = None,
        faults=None,
        outliers: Optional[int] = None,
    ):
        del constants, trim_mode  # interface parity only; baselines have no knobs
        cluster = _resolve_cluster(
            cluster, points, metric, machines, seed, partition, backend, limits,
            faults,
        )
        rounds_before = cluster.stats.rounds

        def call():
            ids, value = run(cluster, int(k), outliers)
            rounds = cluster.stats.rounds - rounds_before
            ids = np.asarray(ids, dtype=np.int64)
            if kind == "kcenter":
                return ClusteringResult(
                    centers=ids, radius=float(value), k=int(k),
                    epsilon=float(eps), tau=float(value),
                    coreset_value=float(value), rounds=rounds,
                )
            return DiversityResult(
                ids=ids, diversity=float(value), k=int(k), epsilon=float(eps),
                coreset_value=float(value), rounds=rounds,
            )

        return _observed_solve(name, cluster, call)

    solver.__name__ = f"solve_{name}"
    solver.__qualname__ = solver.__name__
    solver.__doc__ = doc
    return solver


def _no_outliers(name: str, outliers: Optional[int]) -> None:
    if outliers is not None:
        raise ValueError(f"solver {name!r} does not take an outlier budget")


def _outlier_budget(cluster: MPCCluster, outliers: Optional[int]) -> int:
    z = 0 if outliers is None else int(outliers)
    if z < 0:
        raise ValueError(f"outliers must be >= 0, got {z}")
    if z >= cluster.metric.n:
        raise ValueError(
            f"outliers must be < n={cluster.metric.n}, got {z}"
        )
    return z


solve_gonzalez = _baseline_solver(
    "gonzalez", "kcenter",
    lambda cluster, k, z: (
        _no_outliers("gonzalez", z) or gonzalez_kcenter(cluster.metric, k)
    ),
    "Sequential GMM 2-approximation k-center (Gonzalez 1985).",
)

solve_gonzalez_diversity = _baseline_solver(
    "gonzalez_diversity", "diversity",
    lambda cluster, k, z: (
        _no_outliers("gonzalez_diversity", z)
        or gonzalez_diversity(cluster.metric, k)
    ),
    "Sequential GMM 2-approximation diversity (Ravi et al. 1994).",
)

solve_hochbaum_shmoys = _baseline_solver(
    "hochbaum_shmoys", "kcenter",
    lambda cluster, k, z: (
        _no_outliers("hochbaum_shmoys", z)
        or hochbaum_shmoys_kcenter(cluster.metric, k)
    ),
    "Parametric-pruning 2-approximation k-center (Hochbaum & Shmoys "
    "1985); O(n²) candidate radii — small instances only.",
)

solve_streaming = _baseline_solver(
    "streaming", "kcenter",
    lambda cluster, k, z: (
        _no_outliers("streaming", z) or streaming_kcenter(cluster.metric, k)
    ),
    "One-pass doubling 8-approximation streaming k-center.",
)

solve_charikar_outliers = _baseline_solver(
    "charikar_outliers", "kcenter",
    lambda cluster, k, z: charikar_kcenter_outliers(
        cluster.metric, k, _outlier_budget(cluster, z)
    ),
    "Sequential 3-approximation k-center with up to ``outliers`` "
    "ignored points (Charikar et al. 2001); ``outliers=0`` (the "
    "default) degenerates to plain k-center.",
)

solve_malkomes = _baseline_solver(
    "malkomes", "kcenter",
    lambda cluster, k, z: (
        _no_outliers("malkomes", z) or malkomes_kcenter(cluster, k)
    ),
    "Two-round 4-approximation MPC k-center via GMM coresets "
    "(Malkomes et al. 2015).",
)

solve_malkomes_outliers = _baseline_solver(
    "malkomes_outliers", "kcenter",
    lambda cluster, k, z: malkomes_kcenter_outliers(
        cluster, k, _outlier_budget(cluster, z)
    ),
    "Two-round 13-approximation MPC k-center with up to ``outliers`` "
    "ignored points (Malkomes et al. 2015).",
)

solve_ene = _baseline_solver(
    "ene", "kcenter",
    lambda cluster, k, z: (
        _no_outliers("ene", z) or ene_sampling_kcenter(cluster, k)
    ),
    "Sampling-style MapReduce k-center in the spirit of Ene et al. 2011.",
)

solve_indyk = _baseline_solver(
    "indyk", "diversity",
    lambda cluster, k, z: (
        _no_outliers("indyk", z) or indyk_diversity(cluster, k)
    ),
    "6-approximation MPC diversity via 3-composable GMM coresets "
    "(Indyk et al. 2014).",
)


#: solver dispatch table: algorithm name → facade entry point.  The
#: service layer (:mod:`repro.service`) schedules jobs against these
#: names; adding a solver here makes it servable (and sweepable) with
#: no other change.  The first three are the paper's algorithms; the
#: rest are the :mod:`repro.baselines` comparators behind the same
#: keyword surface.  (``exact_*`` and the MIS references stay out: the
#: former are combinatorial brute force, the latter are not
#: solver-shaped.)
SOLVERS = {
    "kcenter": solve_kcenter,
    "diversity": solve_diversity,
    "ksupplier": solve_ksupplier,
    "gonzalez": solve_gonzalez,
    "gonzalez_diversity": solve_gonzalez_diversity,
    "hochbaum_shmoys": solve_hochbaum_shmoys,
    "streaming": solve_streaming,
    "charikar_outliers": solve_charikar_outliers,
    "malkomes": solve_malkomes,
    "malkomes_outliers": solve_malkomes_outliers,
    "ene": solve_ene,
    "indyk": solve_indyk,
}

#: objective each solver optimizes — what sweeps score it against.
#: ``kcenter``-objective solvers return a ``radius`` (lower is better,
#: ratio vs. the optimal radius); ``diversity`` solvers return a
#: ``diversity`` (higher is better, ratio expressed as opt/achieved).
SOLVER_OBJECTIVES = {
    "kcenter": "kcenter",
    "diversity": "diversity",
    "ksupplier": "ksupplier",
    "gonzalez": "kcenter",
    "gonzalez_diversity": "diversity",
    "hochbaum_shmoys": "kcenter",
    "streaming": "kcenter",
    "charikar_outliers": "kcenter",
    "malkomes": "kcenter",
    "malkomes_outliers": "kcenter",
    "ene": "kcenter",
    "indyk": "diversity",
}


def solve(algorithm: str, points=None, **kwargs):
    """Dispatch to a facade solver by name (see :data:`SOLVERS`).

    ``solve('kcenter', pts, k=8)`` ≡ ``solve_kcenter(pts, k=8)``; the
    keyword surface is the named solver's own.
    """
    try:
        fn = SOLVERS[str(algorithm).lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{', '.join(sorted(SOLVERS))}"
        ) from None
    return fn(points, **kwargs)


__all__: Sequence[str] = [
    "DEFAULT_MACHINES",
    "SOLVERS",
    "SOLVER_OBJECTIVES",
    "make_metric",
    "make_executor",
    "build_cluster",
    "metrics_snapshot",
    "metrics_reset",
    "solve",
    "solve_kcenter",
    "solve_diversity",
    "solve_ksupplier",
]
