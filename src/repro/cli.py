"""Command-line front end.

Usage examples::

    repro kcenter   --workload gaussian --n 1000 --k 10 --machines 8
    repro diversity --workload clustered --n 500 --k 8 --epsilon 0.2
    repro supplier  --customers 600 --suppliers 200 --k 8
    repro mis       --workload uniform --n 400 --tau 0.8 --k 20
    repro serve     --port 8000 --workers 4 --backend process
    repro workloads

Every command prints the solution quality, the MPC round count, and the
per-machine communication summary as an ASCII table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.analysis.reports import format_table
from repro.api import build_cluster, solve_diversity, solve_kcenter, solve_ksupplier
from repro.constants import TheoryConstants
from repro.core import mpc_dominating_set, mpc_k_bounded_mis
from repro.metric.euclidean import EuclideanMetric
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import BACKENDS
from repro.workloads.registry import available_workloads, make_workload
from repro.workloads.suppliers import supplier_instance


def _constants(args: argparse.Namespace) -> TheoryConstants:
    preset = getattr(args, "constants", "practical")
    if preset == "paper":
        return TheoryConstants.paper()
    return TheoryConstants.practical()


def _build_cluster(args: argparse.Namespace, metric) -> MPCCluster:
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "report", None)
        or getattr(args, "metrics_out", None)
    ):
        # transparent wrapper so phase spans (and the oracle-call
        # metric counters) pick up oracle-call counts
        from repro.metric.oracle import CountingOracle

        metric = CountingOracle(metric)
    # seed-derived trace root: --trace-out output (including executor
    # child spans) carries deterministic trace/span ids for a fixed seed
    from repro.obs.tracing import TraceContext

    return build_cluster(
        metric=metric,
        machines=args.machines,
        seed=args.seed,
        partition=args.partition,
        backend=getattr(args, "backend", "serial"),
        workers=getattr(args, "workers", None),
        faults=getattr(args, "faults", None),
        trace=TraceContext.from_seed(args.seed, name="cli"),
    )


def _print_stats(cluster: MPCCluster) -> None:
    print()
    print(format_table([cluster.stats.summary()], title="MPC statistics"))
    if cluster.faults is not None:
        print(f"\nfault injection: {cluster.faults.describe()}")
        stats_fn = getattr(cluster.executor, "recovery_stats", None)
        if stats_fn is not None:
            rec = stats_fn()
            print(
                f"executor recovery: {rec['faults_injected']} injected, "
                f"{rec['chunk_retries']} chunk retries, "
                f"{rec['serial_fallbacks']} serial fallbacks"
            )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--machines", type=int, default=8, help="number of MPC machines m")
    p.add_argument("--seed", type=int, default=0, help="master RNG seed")
    p.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="serial",
        help="compute backend for the per-machine work; 'process' "
        "keeps the point matrix in shared memory, 'remote' dispatches "
        "to socket-connected worker agents (--workers) — every backend "
        "is bit-identical to 'serial' for any fixed seed",
    )
    p.add_argument(
        "--workers",
        metavar="HOST:PORT,...",
        default=None,
        help="remote worker agent addresses for --backend remote "
        "(comma-separated; default: the REPRO_REMOTE_WORKERS "
        "environment variable); start agents with 'repro worker "
        "--listen HOST:PORT'",
    )
    p.add_argument(
        "--partition",
        choices=["random", "block", "skewed"],
        default="random",
        help="input partitioning strategy",
    )
    p.add_argument(
        "--constants",
        choices=["practical", "paper"],
        default="practical",
        help="analysis-constant preset (see repro.constants)",
    )
    p.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the result record (and MPC stats) as JSON",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record the run and write a trace file (see --trace-format)",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics-registry snapshot (counters/gauges/"
        "histograms) as JSON after the run; the registry is reset at "
        "command start, so the dump covers exactly this invocation and "
        "its counter values are bit-reproducible for a fixed seed "
        "(see docs/metrics.md)",
    )
    p.add_argument(
        "--trace-format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="trace file format: Chrome trace-event JSON "
        "(chrome://tracing / Perfetto) or JSON Lines",
    )
    p.add_argument(
        "--report",
        choices=["phases"],
        default=None,
        help="print an extra report; 'phases' shows the per-phase "
        "rounds/words/oracle-calls breakdown",
    )
    p.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection plan: 'key=value,...' or a "
        "JSON object (e.g. 'seed=7,worker_kill=0.5,machine_fault=0.1'); "
        "recovery keeps results bit-identical — see docs/fault_tolerance.md",
    )


def _setup_metrics(args: argparse.Namespace, cluster: MPCCluster) -> None:
    """Feed the global metrics registry for commands that drive the
    algorithms directly (the facade ``solve_*`` calls attach their own
    observer; ``mis``/``dominating`` bypass the facade)."""
    if not getattr(args, "metrics_out", None):
        return
    from repro.obs.metrics import MetricsObserver

    cluster.obs.add(MetricsObserver())


def _setup_obs(args: argparse.Namespace, cluster: MPCCluster):
    """Attach a recorder when any observability output was requested."""
    if not (getattr(args, "trace_out", None) or getattr(args, "report", None)):
        return None
    from repro.obs import Recorder

    return Recorder.attach(cluster)


def _finish_obs(args: argparse.Namespace, recorder) -> None:
    if recorder is None:
        return
    from repro.obs import export_run, phase_report

    if getattr(args, "report", None) == "phases":
        print()
        print(phase_report(recorder.log))
    if getattr(args, "trace_out", None):
        path = export_run(recorder.log, args.trace_out, args.trace_format)
        print(f"\nwrote {args.trace_format} trace to {path}")


def _maybe_metrics(args: argparse.Namespace) -> None:
    """Dump the global metrics registry when ``--metrics-out`` was given."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from repro.obs.metrics import default_registry

    default_registry().write_json(path)
    print(f"\nwrote metrics snapshot to {path}")


def _maybe_json(
    args: argparse.Namespace, result, cluster: MPCCluster, recorder=None
) -> None:
    path = getattr(args, "json_out", None)
    if not path:
        return
    from repro.analysis.io import write_json

    meta = {"command": args.command, "stats": cluster.stats.summary()}
    if recorder is not None:
        meta["phases"] = recorder.log.phase_summary()
    write_json([result.to_dict()], path, meta=meta)
    print(f"\nwrote JSON result to {path}")


def _cmd_kcenter(args: argparse.Namespace) -> int:
    wl = make_workload(args.workload, args.n, seed=args.seed)
    cluster = _build_cluster(args, wl.metric)
    recorder = _setup_obs(args, cluster)
    res = solve_kcenter(
        k=args.k, eps=args.epsilon, constants=_constants(args), cluster=cluster
    )
    print(
        format_table(
            [
                {
                    "workload": wl.name,
                    "n": wl.n,
                    "k": args.k,
                    "epsilon": args.epsilon,
                    "radius": res.radius,
                    "4-approx r": res.coreset_value,
                    "centers": res.size,
                    "rounds": res.rounds,
                }
            ],
            title="MPC k-center (Algorithm 5)",
        )
    )
    _print_stats(cluster)
    _finish_obs(args, recorder)
    _maybe_json(args, res, cluster, recorder)
    _maybe_metrics(args)
    return 0


def _cmd_diversity(args: argparse.Namespace) -> int:
    wl = make_workload(args.workload, args.n, seed=args.seed)
    cluster = _build_cluster(args, wl.metric)
    recorder = _setup_obs(args, cluster)
    res = solve_diversity(
        k=args.k, eps=args.epsilon, constants=_constants(args), cluster=cluster
    )
    print(
        format_table(
            [
                {
                    "workload": wl.name,
                    "n": wl.n,
                    "k": args.k,
                    "epsilon": args.epsilon,
                    "diversity": res.diversity,
                    "4-approx r": res.coreset_value,
                    "rounds": res.rounds,
                }
            ],
            title="MPC k-diversity (Algorithm 2)",
        )
    )
    _print_stats(cluster)
    _finish_obs(args, recorder)
    _maybe_json(args, res, cluster, recorder)
    _maybe_metrics(args)
    return 0


def _cmd_supplier(args: argparse.Namespace) -> int:
    inst = supplier_instance(
        args.customers,
        args.suppliers,
        supplier_layout=args.layout,
        rng=np.random.default_rng(args.seed),
    )
    metric = EuclideanMetric(inst.points)
    cluster = _build_cluster(args, metric)
    recorder = _setup_obs(args, cluster)
    res = solve_ksupplier(
        customers=inst.customers,
        suppliers=inst.suppliers,
        k=args.k,
        eps=args.epsilon,
        constants=_constants(args),
        cluster=cluster,
    )
    print(
        format_table(
            [
                {
                    "customers": args.customers,
                    "suppliers": args.suppliers,
                    "k": args.k,
                    "epsilon": args.epsilon,
                    "radius": res.radius,
                    "9-approx r": res.coreset_value,
                    "opened": res.size,
                    "rounds": res.rounds,
                }
            ],
            title="MPC k-supplier (Algorithm 6)",
        )
    )
    _print_stats(cluster)
    _finish_obs(args, recorder)
    _maybe_json(args, res, cluster, recorder)
    _maybe_metrics(args)
    return 0


def _cmd_mis(args: argparse.Namespace) -> int:
    wl = make_workload(args.workload, args.n, seed=args.seed)
    cluster = _build_cluster(args, wl.metric)
    recorder = _setup_obs(args, cluster)
    _setup_metrics(args, cluster)
    res = mpc_k_bounded_mis(cluster, args.tau, args.k, constants=_constants(args))
    print(
        format_table(
            [
                {
                    "workload": wl.name,
                    "n": wl.n,
                    "tau": args.tau,
                    "k": args.k,
                    "size": res.size,
                    "maximal": res.maximal,
                    "terminated_via": res.terminated_via,
                    "rounds": res.rounds,
                }
            ],
            title="MPC k-bounded MIS (Algorithm 4)",
        )
    )
    _print_stats(cluster)
    _finish_obs(args, recorder)
    _maybe_json(args, res, cluster, recorder)
    _maybe_metrics(args)
    return 0


def _cmd_dominating(args: argparse.Namespace) -> int:
    wl = make_workload(args.workload, args.n, seed=args.seed)
    cluster = _build_cluster(args, wl.metric)
    recorder = _setup_obs(args, cluster)
    _setup_metrics(args, cluster)
    res = mpc_dominating_set(cluster, args.tau, constants=_constants(args))
    print(
        format_table(
            [
                {
                    "workload": wl.name,
                    "n": wl.n,
                    "tau": args.tau,
                    "size": res.size,
                    "packing LB": res.lower_bound,
                    "certified ratio <=": res.certified_ratio,
                    "rounds": res.rounds,
                }
            ],
            title="MPC dominating set (k-bounded MIS application)",
        )
    )
    _print_stats(cluster)
    _finish_obs(args, recorder)
    _maybe_json(args, res, cluster, recorder)
    _maybe_metrics(args)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Head-to-head table: the paper's k-center vs every baseline."""
    from repro.analysis.lower_bounds import kcenter_lower_bound
    from repro.baselines import (
        ene_sampling_kcenter,
        gonzalez_kcenter,
        hochbaum_shmoys_kcenter,
        malkomes_kcenter,
    )

    wl = make_workload(args.workload, args.n, seed=args.seed)
    lb = kcenter_lower_bound(wl.metric, args.k)
    rows = []

    cluster = _build_cluster(args, wl.metric)
    res = solve_kcenter(
        k=args.k, eps=args.epsilon, constants=_constants(args), cluster=cluster
    )
    rows.append(
        {
            "algorithm": "MPC k-center (paper, 2+eps)",
            "radius": res.radius,
            "ratio vs LB": res.radius / lb,
            "rounds": res.rounds,
        }
    )
    cluster = _build_cluster(args, wl.metric)
    _, r = malkomes_kcenter(cluster, args.k)
    rows.append(
        {"algorithm": "Malkomes et al. (MPC, 4)", "radius": r, "ratio vs LB": r / lb, "rounds": 4}
    )
    cluster = _build_cluster(args, wl.metric)
    _, r = ene_sampling_kcenter(cluster, args.k)
    rows.append(
        {"algorithm": "Ene-style sampling (MPC)", "radius": r, "ratio vs LB": r / lb, "rounds": 6}
    )
    _, r = gonzalez_kcenter(wl.metric, args.k)
    rows.append(
        {"algorithm": "GMM / Gonzalez (seq., 2)", "radius": r, "ratio vs LB": r / lb, "rounds": 0}
    )
    if args.n <= 2048:
        _, r = hochbaum_shmoys_kcenter(wl.metric, args.k)
        rows.append(
            {
                "algorithm": "Hochbaum-Shmoys (seq., 2)",
                "radius": r,
                "ratio vs LB": r / lb,
                "rounds": 0,
            }
        )
    print(
        format_table(
            rows,
            title=f"k-center comparison — {wl.name}, n={wl.n}, k={args.k}, m={args.machines}",
        )
    )
    print(f"\ncertified optimum lower bound: {lb:.6g}")
    _maybe_metrics(args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run an algorithm with message tracing and print the communication
    breakdown by message tag and by round."""
    from repro.mpc.trace import MessageTrace

    wl = make_workload(args.workload, args.n, seed=args.seed)
    cluster = _build_cluster(args, wl.metric)
    trace = cluster.obs.add(MessageTrace())
    recorder = _setup_obs(args, cluster)
    if args.algorithm == "kcenter":
        solve_kcenter(k=args.k, eps=args.epsilon, constants=_constants(args), cluster=cluster)
    elif args.algorithm == "diversity":
        solve_diversity(k=args.k, eps=args.epsilon, constants=_constants(args), cluster=cluster)
    else:
        _setup_metrics(args, cluster)
        mpc_k_bounded_mis(cluster, args.tau, args.k, constants=_constants(args))
    cluster.obs.remove(trace)

    print(
        format_table(
            [
                {"message tag": tag, "words": words}
                for tag, words in trace.words_by_tag().items()
            ],
            title=f"communication by message tag — {args.algorithm}, "
            f"n={wl.n}, k={args.k}, m={args.machines}",
        )
    )
    heavy = trace.heaviest_events(limit=5)
    print()
    print(
        format_table(
            [
                {"round": e.round_no, "src": e.src, "dst": e.dst, "tag": e.tag, "words": e.words}
                for e in heavy
            ],
            title="heaviest individual messages",
        )
    )
    print(f"\ntotal: {trace.total_words()} words over {cluster.stats.rounds} rounds")
    _finish_obs(args, recorder)
    _maybe_metrics(args)
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in available_workloads():
        print(name)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the clustering job service (see docs/service.md).

    Roles (``--role``): ``all`` is the classic self-contained server;
    ``frontend`` serves HTTP but runs no workers; ``worker`` runs no
    HTTP at all and drains the shared work queue.  The split roles
    require ``--state-dir`` — a durable directory is what frontends and
    workers share (see docs/persistence.md).
    """
    from repro.obs.logging import configure as configure_logging
    from repro.service.http import serve, serve_forever

    configure_logging(fmt=args.log_format)
    if args.role in ("frontend", "worker") and args.state_dir is None:
        print(
            f"error: --role {args.role} requires --state-dir "
            "(split roles share state through a durable directory)",
            file=sys.stderr,
        )
        return 2
    if args.role == "worker":
        return _run_worker(args)
    server = serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        remote_workers=args.remote_workers,
        queue_limit=args.queue_limit,
        default_timeout_s=args.job_timeout,
        cache_entries=args.cache_entries,
        max_history=args.max_history,
        max_retries=args.max_retries,
        state_dir=args.state_dir,
        role=args.role,
        lease_s=args.lease_timeout,
        faults=args.faults,
    )
    store_note = f", state-dir={args.state_dir}" if args.state_dir else ""
    print(
        f"repro service v{__version__} listening on {server.url} "
        f"(role={args.role}, workers={server.manager.workers}, "
        f"backend={args.backend}, queue-limit={args.queue_limit}{store_note})"
    )
    if server.faults is not None:
        print(f"fault injection active: {server.faults.describe()}")
    serve_forever(server)
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    """``repro serve --role worker``: drain the shared queue, no HTTP."""
    import time as _time

    from repro.service.datasets import DatasetRegistry
    from repro.service.jobs import JobManager, RetryPolicy
    from repro.service.store import open_stores
    from repro.sweeps import SweepManager

    stores = open_stores(
        args.state_dir,
        queue_limit=args.queue_limit,
        cache_entries=args.cache_entries,
    )
    manager = JobManager(
        DatasetRegistry(stores.datasets),
        stores=stores,
        role="worker",
        lease_s=args.lease_timeout,
        workers=args.workers,
        backend=args.backend,
        remote_workers=args.remote_workers,
        default_timeout_s=args.job_timeout,
        max_history=args.max_history,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        faults=args.faults,
    )
    manager.start()
    # workers also run a sweeper: an analysis whose submitting frontend
    # (or a fellow worker) died mid-sweep still gets finalized by
    # whoever drains the last cell
    sweeps = SweepManager(manager).start()
    print(
        f"repro worker v{__version__} draining {args.state_dir} "
        f"(worker-id={manager.worker_id}, workers={args.workers}, "
        f"backend={args.backend}, lease={args.lease_timeout:g}s)"
    )
    try:
        while True:
            _time.sleep(0.5)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        sweeps.stop()
        manager.stop()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """``repro worker --listen HOST:PORT``: run one remote compute agent.

    Agents serve pickled machine batches to a ``--backend remote``
    driver (see docs/remote.md).  The slot count — concurrent chunks
    this agent computes — comes from ``--slots``, falling back to the
    ``REPRO_WORKERS`` environment variable, then the CPU count.
    """
    import os

    from repro.mpc.remote import WorkerAgent, parse_worker_addresses

    try:
        ((host, port),) = parse_worker_addresses(
            args.listen, allow_zero_port=True
        )
    except ValueError as exc:
        print(f"error: --listen: {exc}", file=sys.stderr)
        return 2
    agent = WorkerAgent(host, port, slots=args.slots, allow_exit=True)
    bound_host, bound_port = agent.start()
    print(
        f"repro worker v{__version__} listening on {bound_host}:{bound_port} "
        f"(slots={agent.slots}, pid={os.getpid()})",
        flush=True,
    )
    try:
        agent.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        agent.stop()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: expand a grid of solver runs, score and rank
    every cell, print the report (see docs/sweeps.md).

    In-process by default; ``--url`` submits the identical SweepSpec to
    a running service instead — determinism makes the two reports
    byte-identical for a fixed spec.
    """
    spec_kwargs = {
        "solvers": list(args.solvers),
        "ks": [int(k) for k in args.ks],
        "epss": [float(e) for e in args.epsilons],
        "partitions": list(args.partitions),
        "trim_modes": list(args.trim_modes),
        "seeds": [int(s) for s in args.seeds],
        "machines": args.machines,
        "constants": args.constants,
        "outliers": args.outliers,
        "name": args.name,
    }
    workloads = args.workload or ["gaussian"]

    if args.url is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(args.url)
        ds_ids = [
            client.register_workload(w, args.n, seed=args.dataset_seed)["id"]
            for w in workloads
        ]
        record = client.submit_analysis(datasets=ds_ids, **spec_kwargs)
        analysis_id, n_cells = record["id"], record["cells"]
        print(f"analysis {analysis_id}: {n_cells} cells submitted to {args.url}")
        record = client.wait_analysis(analysis_id, timeout=args.timeout)
        state, error = record["state"], record.get("error")
        report = client.analysis_report(analysis_id) if state == "done" else None
    else:
        from repro.service.datasets import DatasetRegistry
        from repro.service.jobs import JobManager
        from repro.service.store import open_stores
        from repro.sweeps import SweepManager, SweepSpec

        stores = open_stores(args.state_dir)
        datasets = DatasetRegistry(stores.datasets)
        ds_ids = [
            datasets.register_workload(w, args.n, seed=args.dataset_seed).id
            for w in workloads
        ]
        manager = JobManager(
            datasets, stores=stores, workers=args.workers, backend=args.backend
        ).start()
        sweeps = SweepManager(manager)
        try:
            rec = sweeps.submit(SweepSpec(datasets=ds_ids, **spec_kwargs))
            print(f"analysis {rec.id}: {len(rec.cell_job_ids)} cells submitted")
            rec = sweeps.wait(rec.id, timeout=args.timeout)
            analysis_id, state, error = rec.id, rec.state, rec.error
            report = rec.report if state == "done" else None
        finally:
            sweeps.stop()
            manager.stop()

    if report is None:
        print(f"analysis {analysis_id} ended {state}: {error or ''}", file=sys.stderr)
        return 1

    cells = {cell["index"]: cell for cell in report["cells"]}
    frontier = set(report["frontier"]["cells"])
    rows = []
    for rank, index in enumerate(report["ranking"], start=1):
        cell = cells[index]
        rows.append(
            {
                "rank": rank,
                "cell": index,
                "solver": cell["solver"],
                "dataset": cell["dataset"][:12],
                "k": cell["k"],
                "eps": cell["eps"],
                "seed": cell["seed"],
                "ratio": "-" if cell["ratio"] is None else f"{cell['ratio']:.4f}",
                "vs": cell["reference_kind"] or "-",
                "rounds": cell["rounds"],
                "words": cell["words"],
                "oracle": cell["oracle_calls"],
                "front": "*" if index in frontier else "",
            }
        )
    counts = report["counts"]
    print(
        format_table(
            rows,
            title=f"analysis {analysis_id} — {len(report['cells'])} cells "
            f"({', '.join(f'{v} {k}' for k, v in sorted(counts.items()))})",
        )
    )
    print()
    print(report["ascii_frontier"])
    reco = report["recommendation"]
    if reco is not None:
        print(f"\nrecommendation: {reco['reason']}")
    if args.json_out:
        import json as _json

        with open(args.json_out, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote report JSON to {args.json_out}")
    return 0


#: record fields included in the ``repro stream`` report — the
#: deterministic subset (solution ids, objective, ladder state);
#: excludes wall-clock timings and other run-environment noise so the
#: JSON report is byte-identical across backends and service topologies
_STREAM_RECORD_KEYS = (
    "centers",
    "radius",
    "ids",
    "diversity",
    "tau",
    "coreset_value",
    "k",
    "epsilon",
)


def _stream_entry(version: int, ds: dict, payload: dict, warm: bool) -> dict:
    """One deterministic per-version row of the stream report."""
    record = payload["record"]
    return {
        "version": version,
        "dataset": ds["id"],
        "fingerprint": ds["fingerprint"],
        "n": ds["n"],
        "warm": warm,
        "record": {k: record[k] for k in _STREAM_RECORD_KEYS if k in record},
        "oracle": payload.get("oracle"),
        "warm_start": payload.get("warm_start"),
        "drift": payload.get("drift"),
    }


def _cmd_stream(args: argparse.Namespace) -> int:
    """``repro stream``: simulate an arrival stream — register a base
    batch, append delta batches one at a time, warm-start re-solve each
    chained version, and print the per-version drift table (see
    docs/streaming.md).

    In-process by default; ``--url`` drives a running service through
    ``POST /v1/datasets/<id>/append`` + ``warm_start`` jobs instead.
    For a fixed seed the ``--json-out`` report is byte-identical either
    way, across execution backends, and across worker crashes — the CI
    stream-smoke job diffs exactly that.
    """
    from repro.workloads.trajectories import trajectory_stream

    if args.appends < 1:
        print("error: --appends must be >= 1", file=sys.stderr)
        return 2
    batches = trajectory_stream(
        args.n,
        batches=args.appends + 1,
        rng=np.random.default_rng(args.dataset_seed),
    )
    spec_kwargs = {
        "algorithm": args.algorithm,
        "k": args.k,
        "eps": args.epsilon,
        "machines": args.machines,
        "seed": args.seed,
    }

    entries = []
    if args.url is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(args.url)
        ds = client.register_points(batches[0])
        for version in range(args.appends + 1):
            if version > 0:
                ds = client.append_dataset(ds["id"], batches[version])
            warm = version > 0
            job = client.submit(dataset=ds["id"], warm_start=warm, **spec_kwargs)
            job = client.wait(job["id"], timeout=args.timeout)
            if job["state"] != "done":
                print(
                    f"job {job['id']} ended {job['state']}: {job.get('error') or ''}",
                    file=sys.stderr,
                )
                return 1
            entries.append(_stream_entry(version, ds, job["result"], warm))
    else:
        from repro.service.datasets import DatasetRegistry
        from repro.service.jobs import JobManager
        from repro.service.spec import JobSpec
        from repro.service.store import open_stores

        stores = open_stores(args.state_dir)
        datasets = DatasetRegistry(stores.datasets)
        manager = JobManager(
            datasets, stores=stores, workers=args.workers, backend=args.backend
        ).start()
        try:
            ds = datasets.register_points(batches[0]).describe()
            for version in range(args.appends + 1):
                if version > 0:
                    ds = datasets.append(ds["id"], batches[version]).describe()
                warm = version > 0
                job = manager.submit(
                    JobSpec(dataset=ds["id"], warm_start=warm, **spec_kwargs)
                )
                job = manager.wait(job.id, timeout=args.timeout)
                if job.state.value != "done":
                    print(
                        f"job {job.id} ended {job.state.value}: {job.error or ''}",
                        file=sys.stderr,
                    )
                    return 1
                entries.append(_stream_entry(version, ds, job.result, warm))
        finally:
            manager.stop()

    rows = []
    for entry in entries:
        record = entry["record"]
        drift = entry["drift"] or {}
        objective = record.get("radius", record.get("diversity"))
        oracle = entry["oracle"] or {}
        rows.append(
            {
                "version": entry["version"],
                "dataset": entry["dataset"][:14],
                "n": entry["n"],
                "mode": "warm" if entry["warm"] else "cold",
                "objective": f"{objective:.4f}",
                "appended": drift.get("appended", "-"),
                "overlap": (
                    "-"
                    if drift.get("center_overlap") is None
                    else f"{drift['center_overlap']:.2f}"
                ),
                "drift": (
                    "-"
                    if drift.get("drift_ratio") is None
                    else f"{drift['drift_ratio']:.4f}"
                ),
                "oracle_evals": oracle.get("evaluations", "-"),
            }
        )
    print(
        format_table(
            rows,
            title=(
                f"stream — {args.algorithm}, k={args.k}, "
                f"{len(entries)} versions ({args.appends} appends)"
            ),
        )
    )

    if args.json_out:
        import json as _json

        report = {
            "algorithm": args.algorithm,
            "k": args.k,
            "epsilon": args.epsilon,
            "seed": args.seed,
            "dataset_seed": args.dataset_seed,
            "n": args.n,
            "appends": args.appends,
            "versions": entries,
        }
        with open(args.json_out, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote stream report JSON to {args.json_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "MPC k-center clustering and diversity maximization "
            "(reproduction of Haqi & Zarrabi-Zadeh, SPAA 2023)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("kcenter", help="run MPC k-center (Algorithm 5)")
    p.add_argument("--workload", default="gaussian", choices=available_workloads())
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--epsilon", type=float, default=0.1)
    _add_common(p)
    p.set_defaults(func=_cmd_kcenter)

    p = sub.add_parser("diversity", help="run MPC k-diversity (Algorithm 2)")
    p.add_argument("--workload", default="gaussian", choices=available_workloads())
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--epsilon", type=float, default=0.1)
    _add_common(p)
    p.set_defaults(func=_cmd_diversity)

    p = sub.add_parser("supplier", help="run MPC k-supplier (Algorithm 6)")
    p.add_argument("--customers", type=int, default=600)
    p.add_argument("--suppliers", type=int, default=200)
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument(
        "--layout", choices=["uniform", "colocated", "perimeter"], default="uniform"
    )
    _add_common(p)
    p.set_defaults(func=_cmd_supplier)

    p = sub.add_parser("mis", help="run the MPC k-bounded MIS (Algorithm 4)")
    p.add_argument("--workload", default="uniform", choices=available_workloads())
    p.add_argument("--n", type=int, default=500)
    p.add_argument("--tau", type=float, required=True)
    p.add_argument("--k", type=int, default=20)
    _add_common(p)
    p.set_defaults(func=_cmd_mis)

    p = sub.add_parser(
        "dominating", help="run the MPC dominating set (k-bounded MIS application)"
    )
    p.add_argument("--workload", default="uniform", choices=available_workloads())
    p.add_argument("--n", type=int, default=500)
    p.add_argument("--tau", type=float, required=True)
    _add_common(p)
    p.set_defaults(func=_cmd_dominating)

    p = sub.add_parser(
        "compare", help="head-to-head k-center table: paper vs all baselines"
    )
    p.add_argument("--workload", default="gaussian", choices=available_workloads())
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--epsilon", type=float, default=0.1)
    _add_common(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "trace", help="run an algorithm and print its communication breakdown"
    )
    p.add_argument(
        "--algorithm", choices=["kcenter", "diversity", "mis"], default="kcenter"
    )
    p.add_argument("--workload", default="gaussian", choices=available_workloads())
    p.add_argument("--n", type=int, default=500)
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--epsilon", type=float, default=0.2)
    p.add_argument("--tau", type=float, default=1.0, help="threshold (mis only)")
    _add_common(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "serve", help="run the clustering job service (HTTP/JSON API)"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8000, help="bind port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2, help="job worker threads")
    p.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="serial",
        help="execution backend each job's solver run uses",
    )
    p.add_argument(
        "--remote-workers",
        metavar="HOST:PORT,...",
        default=None,
        help="remote worker agent addresses for --backend remote jobs "
        "(comma-separated; default: the REPRO_REMOTE_WORKERS "
        "environment variable)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max queued jobs before submissions get HTTP 429",
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock budget (jobs may override)",
    )
    p.add_argument(
        "--cache-entries", type=int, default=1024, help="result cache capacity"
    )
    p.add_argument(
        "--max-history",
        type=int,
        default=1024,
        help="terminal jobs retained for GET /jobs (oldest evicted beyond this)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="default retry budget for crashed jobs (specs may override)",
    )
    p.add_argument(
        "--role",
        choices=["all", "frontend", "worker"],
        default="all",
        help="all: accept + execute (default); frontend: HTTP only, no "
        "workers; worker: no HTTP, drain the shared queue (both split "
        "roles require --state-dir)",
    )
    p.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable state directory (SQLite + dataset blobs); omit for "
        "volatile in-memory state; share one directory across frontend "
        "and worker processes to scale out",
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="worker lease on a running job; a worker silent this long is "
        "declared dead and its jobs are re-enqueued",
    )
    p.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection plan applied to the HTTP layer "
        "(service_error/service_drop/error_burst) and every solver run "
        "(worker_*/machine_fault); 'key=value,...' or a JSON object",
    )
    p.add_argument(
        "--log-format",
        choices=["json", "text"],
        default="text",
        help="structured-log format on stderr: one JSON object per line "
        "(with trace_id/span_id/job_id fields) or human-readable text",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "sweep",
        help="run an analysis sweep (a scored grid of solver runs) and "
        "print the ranked report with a recommendation",
    )
    p.add_argument(
        "--workload",
        action="append",
        choices=available_workloads(),
        default=None,
        help="workload to sweep over; repeat for a multi-dataset sweep "
        "(default: gaussian)",
    )
    p.add_argument("--n", type=int, default=500, help="points per workload")
    p.add_argument(
        "--dataset-seed", type=int, default=0, help="workload generation seed"
    )
    p.add_argument(
        "--solvers",
        nargs="+",
        default=["kcenter", "gonzalez", "malkomes"],
        metavar="SOLVER",
        help="solver axis (repro.api.SOLVERS names; ksupplier excluded)",
    )
    p.add_argument(
        "--ks", nargs="+", type=int, default=[4, 8], metavar="K", help="k axis"
    )
    p.add_argument(
        "--epsilons",
        nargs="+",
        type=float,
        default=[0.1],
        metavar="EPS",
        help="epsilon axis",
    )
    p.add_argument(
        "--partitions",
        nargs="+",
        choices=["random", "block", "skewed"],
        default=["random"],
        help="partitioner axis",
    )
    p.add_argument(
        "--trim-modes",
        nargs="+",
        choices=["random", "id", "paper"],
        default=["random"],
        help="trim tie-breaking axis",
    )
    p.add_argument(
        "--seeds", nargs="+", type=int, default=[0], metavar="SEED", help="seed axis"
    )
    p.add_argument("--machines", type=int, default=None, help="MPC machines per cell")
    p.add_argument(
        "--constants", choices=["practical", "paper"], default="practical"
    )
    p.add_argument(
        "--outliers",
        type=int,
        default=None,
        help="outlier budget z, applied to outlier-capable solvers only",
    )
    p.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="serial",
        help="execution backend for in-process cell runs",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="in-process worker threads"
    )
    p.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="submit to a running service (POST /v1/analyses) instead of "
        "running in-process; the report is byte-identical either way",
    )
    p.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable state directory for the in-process run (shares the "
        "result cache with a service using the same directory)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="overall sweep deadline",
    )
    p.add_argument("--name", default="", help="free-form sweep label")
    p.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the full ranked report as JSON",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "stream",
        help="simulate an arrival stream: append chained dataset versions "
        "and warm-start re-solve each one, reporting solution drift",
    )
    p.add_argument(
        "--algorithm", choices=["kcenter", "diversity"], default="kcenter"
    )
    p.add_argument(
        "--n", type=int, default=240, help="total points across all batches"
    )
    p.add_argument(
        "--appends",
        type=int,
        default=3,
        help="delta batches appended after the base batch",
    )
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0, help="solver seed")
    p.add_argument(
        "--dataset-seed",
        type=int,
        default=0,
        help="trajectory arrival-stream generation seed",
    )
    p.add_argument("--machines", type=int, default=None, help="MPC machines")
    p.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="serial",
        help="execution backend for in-process solver runs",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="in-process worker threads"
    )
    p.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="drive a running service (append + warm_start jobs over HTTP) "
        "instead of running in-process; the report is byte-identical "
        "either way",
    )
    p.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable state directory for the in-process run",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-job deadline",
    )
    p.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="write the deterministic per-version stream report as JSON",
    )
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser(
        "worker",
        help="run one remote compute agent for --backend remote drivers",
    )
    p.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="bind address (PORT 0 = ephemeral; the bound port is printed)",
    )
    p.add_argument(
        "--slots",
        type=int,
        default=None,
        help="concurrent chunk slots (default: REPRO_WORKERS env var, "
        "then the CPU count)",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser("workloads", help="list available workload names")
    p.set_defaults(func=_cmd_workloads)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (``repro`` console script)."""
    args = build_parser().parse_args(argv)
    if getattr(args, "metrics_out", None):
        # scope the dump to this invocation: same seed ⇒ identical
        # counter values, even when main() is called twice in-process
        from repro.api import metrics_reset

        metrics_reset()
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
