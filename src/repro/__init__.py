"""repro — reproduction of *Almost Optimal Massively Parallel Algorithms
for k-Center Clustering and Diversity Maximization* (Haqi &
Zarrabi-Zadeh, SPAA 2023).

Quickstart::

    import numpy as np
    from repro import solve_kcenter

    rng = np.random.default_rng(0)
    result = solve_kcenter(rng.normal(size=(1000, 2)), k=10,
                           eps=0.1, backend="process", seed=0)
    print(result.radius, result.stats["rounds"])

The facade (:mod:`repro.api`) assembles metric, partition, and
execution backend for you; for full control build the pieces by hand::

    from repro import EuclideanMetric, MPCCluster, mpc_kcenter

    metric = EuclideanMetric(rng.normal(size=(1000, 2)))
    cluster = MPCCluster(metric, num_machines=8, seed=0)
    result = mpc_kcenter(cluster, k=10, epsilon=0.1)

Public surface:

* the facade — :func:`solve_kcenter`, :func:`solve_diversity`,
  :func:`solve_ksupplier`, :func:`build_cluster`;
* metrics — :class:`EuclideanMetric`, :class:`ManhattanMetric`,
  :class:`ChebyshevMetric`, :class:`MinkowskiMetric`,
  :class:`HammingMetric`, :class:`AngularMetric`, :class:`MatrixMetric`,
  :class:`GraphShortestPathMetric`, wrappers :class:`CountingOracle`,
  :class:`CachedOracle`;
* the simulator — :class:`MPCCluster`, :class:`Limits`, partitioners,
  and the execution backends (:class:`SerialExecutor`,
  :class:`ThreadedExecutor`, :class:`ProcessExecutor`,
  :func:`get_executor`);
* observability — :class:`Observer`, :class:`ObserverHub` (as
  ``cluster.obs``), :class:`Recorder`, :class:`RunLog`, and the trace
  exporters in :mod:`repro.obs`;
* fault injection — :class:`FaultPlan` (deterministic, seeded chaos
  across executor, machine, and service layers; see
  :mod:`repro.faults` and ``docs/fault_tolerance.md``);
* the job service — :mod:`repro.service` (import it explicitly):
  ``JobManager``, ``DatasetRegistry``, ``ResultCache``,
  ``ServiceClient``, and the ``repro serve`` HTTP/JSON API;
* the paper's algorithms — :func:`mpc_kcenter`, :func:`mpc_diversity`,
  :func:`mpc_ksupplier`, :func:`mpc_k_bounded_mis`,
  :func:`mpc_degree_approximation`, :func:`gmm`, plus the two-round
  4-approximation side products;
* constants — :class:`TheoryConstants`.
"""

from repro._version import __version__
from repro.api import (
    SOLVERS,
    build_cluster,
    make_executor,
    make_metric,
    metrics_reset,
    metrics_snapshot,
    solve,
    solve_diversity,
    solve_kcenter,
    solve_ksupplier,
)
from repro.constants import DEFAULT_CONSTANTS, TheoryConstants
from repro.core import (
    ClusteringResult,
    CoresetResult,
    DiversityResult,
    DominatingSetResult,
    MISResult,
    SupplierResult,
    ThresholdGraphView,
    WarmStart,
    gmm,
    mpc_degree_approximation,
    mpc_diversity,
    mpc_diversity_coreset,
    mpc_dominating_set,
    mpc_k_bounded_mis,
    mpc_kcenter,
    mpc_kcenter_coreset,
    mpc_ksupplier,
    neighborhood_independence,
    trim,
)
from repro.exceptions import (
    CommunicationLimitExceeded,
    ConvergenceError,
    FaultError,
    InfeasibleInstanceError,
    InvalidSolutionError,
    MachineFault,
    MemoryLimitExceeded,
    MPCError,
    ReproError,
    SolutionError,
    UnknownPointError,
)
from repro.faults import FaultPlan
from repro.metric import (
    AngularMetric,
    CachedOracle,
    ChebyshevMetric,
    CountingOracle,
    EditDistanceMetric,
    EuclideanMetric,
    GraphShortestPathMetric,
    HammingMetric,
    HaversineMetric,
    ManhattanMetric,
    MatrixMetric,
    Metric,
    MinkowskiMetric,
    PointSet,
)
from repro.mpc import (
    BACKENDS,
    ExecutionBackend,
    Limits,
    MPCCluster,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    adversarial_partition,
    block_partition,
    get_executor,
    random_partition,
    skewed_partition,
)
from repro.obs import (
    MetricsObserver,
    MetricsRegistry,
    Observer,
    ObserverHub,
    Recorder,
    RunLog,
)

__all__ = [
    "__version__",
    # facade
    "solve",
    "SOLVERS",
    "solve_kcenter",
    "solve_diversity",
    "solve_ksupplier",
    "build_cluster",
    "make_metric",
    "make_executor",
    "metrics_snapshot",
    "metrics_reset",
    # constants
    "TheoryConstants",
    "DEFAULT_CONSTANTS",
    # metrics
    "Metric",
    "PointSet",
    "EuclideanMetric",
    "MinkowskiMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "HammingMetric",
    "HaversineMetric",
    "AngularMetric",
    "EditDistanceMetric",
    "MatrixMetric",
    "GraphShortestPathMetric",
    "CountingOracle",
    "CachedOracle",
    # simulator
    "MPCCluster",
    "Limits",
    # execution backends
    "BACKENDS",
    "ExecutionBackend",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "get_executor",
    # observability
    "Observer",
    "ObserverHub",
    "Recorder",
    "RunLog",
    "MetricsObserver",
    "MetricsRegistry",
    "random_partition",
    "block_partition",
    "skewed_partition",
    "adversarial_partition",
    # algorithms
    "gmm",
    "trim",
    "ThresholdGraphView",
    "mpc_degree_approximation",
    "mpc_k_bounded_mis",
    "mpc_kcenter",
    "mpc_kcenter_coreset",
    "mpc_diversity",
    "mpc_diversity_coreset",
    "mpc_ksupplier",
    "mpc_dominating_set",
    "neighborhood_independence",
    "WarmStart",
    # results
    "DominatingSetResult",
    "MISResult",
    "CoresetResult",
    "ClusteringResult",
    "DiversityResult",
    "SupplierResult",
    # fault injection
    "FaultPlan",
    "FaultError",
    "MachineFault",
    # errors
    "ReproError",
    "MPCError",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "UnknownPointError",
    "SolutionError",
    "InvalidSolutionError",
    "InfeasibleInstanceError",
    "ConvergenceError",
]
