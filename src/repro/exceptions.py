"""Error taxonomy for the ``repro`` library.

The hierarchy mirrors the three layers of the system:

* :class:`MPCError` — violations of the massively-parallel-computation
  model enforced by the simulator (memory caps, communication caps,
  touching points a machine never received).
* :class:`SolutionError` — an algorithm produced an output that fails
  its own contract (e.g. a "k-bounded MIS" that is neither maximal nor
  of size ``k``).
* :class:`ConvergenceError` — a randomized routine exceeded its round
  budget without terminating (should not happen w.h.p.; surfacing it
  beats silent livelock).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MPCError(ReproError):
    """Base class for violations of the MPC model."""


class MemoryLimitExceeded(MPCError):
    """A machine's local store grew past its configured word budget."""

    def __init__(self, machine_id: int, used: int, limit: int) -> None:
        self.machine_id = machine_id
        self.used = used
        self.limit = limit
        super().__init__(
            f"machine {machine_id} uses {used} words of local memory, "
            f"exceeding its limit of {limit} words"
        )


class CommunicationLimitExceeded(MPCError):
    """A machine sent or received more words in one round than allowed."""

    def __init__(self, machine_id: int, round_no: int, used: int, limit: int) -> None:
        self.machine_id = machine_id
        self.round_no = round_no
        self.used = used
        self.limit = limit
        super().__init__(
            f"machine {machine_id} moved {used} words in round {round_no}, "
            f"exceeding its per-round limit of {limit} words"
        )


class UnknownPointError(MPCError):
    """Strict mode: a machine evaluated a distance involving a point it
    neither stores locally nor has received in a message."""

    def __init__(self, machine_id: int, point_id: int) -> None:
        self.machine_id = machine_id
        self.point_id = point_id
        super().__init__(
            f"machine {machine_id} touched point {point_id} without "
            f"holding or having received it (strict known-point mode)"
        )


class PartitionError(MPCError):
    """The input could not be partitioned as requested."""


class SolutionError(ReproError):
    """An algorithm's output violates its declared contract."""


class InvalidSolutionError(SolutionError):
    """A produced solution fails validation (wrong size, not independent,
    not maximal, radius/diversity contract broken, ...)."""


class InfeasibleInstanceError(SolutionError):
    """The instance admits no feasible solution (e.g. ``k`` larger than
    the number of distinct points for diversity maximization)."""


class FaultError(ReproError):
    """Base class for injected-fault errors (see :mod:`repro.faults`)."""


class MachineFault(FaultError):
    """A transient per-machine fault injected at task entry.

    Raised *before* the machine's local computation touches any state,
    so a retry of the same task reproduces the undisturbed run exactly.
    The cluster retries these up to
    :data:`repro.faults.MACHINE_FAULT_RETRIES` times; one that
    out-persists the retry budget propagates to the caller.
    """

    def __init__(self, machine_id: int, round_no: int, attempt: int) -> None:
        self.machine_id = machine_id
        self.round_no = round_no
        self.attempt = attempt
        super().__init__(
            f"injected transient fault on machine {machine_id} "
            f"(round {round_no}, attempt {attempt})"
        )


class ConvergenceError(ReproError):
    """A randomized routine failed to terminate within its round budget."""

    def __init__(self, algorithm: str, rounds: int) -> None:
        self.algorithm = algorithm
        self.rounds = rounds
        super().__init__(
            f"{algorithm} did not terminate within {rounds} rounds; "
            f"this is a <1/n probability event under the paper's analysis — "
            f"re-run with a different seed or raise the budget"
        )
