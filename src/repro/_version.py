"""Single-sourced package version.

``pyproject.toml`` is the source of truth.  In a source checkout
(``PYTHONPATH=src``) the file sits two directories above this module and
is parsed directly; in an installed distribution it is gone, so the
version is read from the installed metadata instead.  Both paths yield
the same string because the metadata *is* built from ``pyproject.toml``.
"""

from __future__ import annotations

import re
from pathlib import Path

_FALLBACK = "0.0.0+unknown"


def _from_pyproject() -> str | None:
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        return None
    try:
        import tomllib

        return tomllib.loads(text)["project"]["version"]
    except Exception:
        # tomllib is 3.11+; the project-table version line is regular
        # enough for a regex on 3.10
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
        return match.group(1) if match else None


def _from_metadata() -> str | None:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return None


def get_version() -> str:
    """Resolve the package version (checkout first, then metadata)."""
    return _from_pyproject() or _from_metadata() or _FALLBACK


__version__ = get_version()
