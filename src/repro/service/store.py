"""Pluggable service state: store protocols and the in-memory backends.

PR 3's service kept its state in plain dictionaries inside
:class:`~repro.service.jobs.JobManager`, ``DatasetRegistry`` and
``ResultCache`` — a restart lost everything and a single process capped
throughput.  This module extracts that state behind small
protocols so the rest of the service never touches a dict directly:

* :class:`JobStore`   — the job table: records, atomic state
  transitions (claim / finish / cancel), lease bookkeeping, orphan
  recovery, listing with pagination, and bounded terminal history;
* :class:`WorkQueue`  — the bounded FIFO of queued job ids that worker
  processes drain;
* :class:`DatasetStore` — dataset descriptors plus their point blobs,
  content-addressed by the existing fingerprints;
* :class:`ResultStore` — the ``cache_key → (payload, run_log)``
  mapping (the in-memory implementation is
  :class:`~repro.service.cache.ResultCache`, unchanged);
* :class:`AnalysisStore` — the analysis-sweep table (jobs-of-jobs, see
  :mod:`repro.sweeps`): records, listing with pagination, and the
  atomic report finalization.

Two implementations exist for each: the in-memory ones here (exactly
the PR-3 semantics, now behind the protocol) and the SQLite/file-backed
ones in :mod:`repro.service.sqlite_store`.  :func:`open_stores` picks a
backend: ``open_stores()`` is volatile memory, ``open_stores(path)``
is a durable state directory shared by any number of frontend and
worker processes.

Concurrency contract (both backends): every method is thread-safe, and
the compare-and-set transitions (:meth:`JobStore.claim`,
:meth:`JobStore.finish`, :meth:`JobStore.recover_orphans`) are atomic —
two workers racing for one job see exactly one winner.  Records carry a
monotonically increasing ``version`` so readers can tell stale
snapshots from fresh ones.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity; resubmit later."""


class UnknownJobError(KeyError):
    """No job with the requested id."""


class UnknownAnalysisError(KeyError):
    """No analysis with the requested id."""


#: job lifecycle states, as stored (mirrors repro.service.jobs.JobState)
TERMINAL_STATES = ("done", "failed", "cancelled")

#: analysis lifecycle states — an analysis is "running" from the moment
#: its record exists (every cell job is submitted before the record is
#: created, so there is no partially-submitted persisted state)
ANALYSIS_STATES = ("running", "done", "failed")

#: analysis states that no sweeper will touch again
ANALYSIS_TERMINAL_STATES = ("done", "failed")


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


@dataclass
class JobRecord:
    """The persistable form of one job — plain data, no threading state.

    This is what travels through a :class:`JobStore`; the live
    :class:`~repro.service.jobs.Job` handle (with its cancel/done
    events) is a per-process view over it.  ``version`` increases on
    every store write, so two snapshots of the same job are ordered.
    """

    id: str
    spec: dict
    state: str = "queued"
    created_at: float = 0.0
    queued_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    cached: bool = False
    attempt: int = 0
    attempts: List[dict] = field(default_factory=list)
    trace_id: Optional[str] = None
    #: W3C traceparent of the job's trace context, so a worker in
    #: another process can continue the submitting request's trace
    traceparent: Optional[str] = None
    cancel_requested: bool = False
    #: lease owner while running (``host:pid/worker-i``)
    worker: Optional[str] = None
    #: wall-clock lease expiry; a running job whose lease lapsed is an
    #: orphan (its worker died) and is re-enqueued by the sweeper
    lease_expires_at: Optional[float] = None
    #: recorded run log of the producing run (pickled by durable stores)
    run_log: Optional[object] = None
    #: store write counter; readers apply a record only if newer
    version: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def numeric_id(self) -> int:
        """Submission-order sort key (``job-000042`` → 42)."""
        return int(self.id.rsplit("-", 1)[1])

    def describe(self, include_result: bool = True) -> dict:
        """JSON-safe status record for the API (one shape for live
        handles and store records — ``Job.describe`` delegates here)."""
        out = {
            "id": self.id,
            "state": self.state,
            "spec": dict(self.spec),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "attempt": self.attempt,
            "trace_id": self.trace_id,
        }
        if self.attempts:
            out["attempts"] = [dict(a) for a in self.attempts]
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


@dataclass
class AnalysisRecord:
    """The persistable form of one analysis sweep (a job-of-jobs).

    ``spec`` is the canonical :class:`~repro.sweeps.SweepSpec` dict and
    ``cell_job_ids`` the grid's job ids **in expansion order** — the
    scorer reads cell results back in this order, which is what makes a
    re-finalized report byte-identical.  The ``report`` (ranked cells,
    recommendation, Pareto frontier) is attached atomically by
    :meth:`AnalysisStore.finalize` when every cell is terminal.
    """

    id: str
    spec: dict
    state: str = "running"
    created_at: float = 0.0
    finished_at: Optional[float] = None
    cell_job_ids: List[str] = field(default_factory=list)
    report: Optional[dict] = None
    error: Optional[str] = None
    trace_id: Optional[str] = None
    #: W3C traceparent of the sweep's root context; every cell job's
    #: trace is a child of it, so one trace id spans the whole fan-out
    traceparent: Optional[str] = None
    #: store write counter; readers apply a record only if newer
    version: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in ANALYSIS_TERMINAL_STATES

    @property
    def numeric_id(self) -> int:
        """Submission-order sort key (``an-000042`` → 42)."""
        return int(self.id.rsplit("-", 1)[1])

    def describe(self, include_report: bool = False) -> dict:
        """JSON-safe status record for the API."""
        out = {
            "id": self.id,
            "state": self.state,
            "spec": dict(self.spec),
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "cells": len(self.cell_job_ids),
            "cell_job_ids": list(self.cell_job_ids),
            "trace_id": self.trace_id,
        }
        if self.error is not None:
            out["error"] = self.error
        if include_report and self.report is not None:
            out["report"] = self.report
        return out


@dataclass
class DatasetRecord:
    """The persistable form of one registered dataset (no live metric)."""

    id: str
    fingerprint: str
    kind: str
    params: dict
    n: int
    metric_name: str
    created_at: float = 0.0

    def describe(self) -> dict:
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "n": self.n,
            "metric": self.metric_name,
            "params": dict(self.params),
        }


# ---------------------------------------------------------------------------
# protocols
# ---------------------------------------------------------------------------


@runtime_checkable
class JobStore(Protocol):
    """Durable (or volatile) job table with atomic transitions."""

    def next_job_id(self) -> str: ...

    def create(self, record: JobRecord) -> JobRecord: ...

    def get(self, job_id: str) -> JobRecord: ...

    def save(self, record: JobRecord) -> JobRecord: ...

    def delete(self, job_id: str) -> None: ...

    def list(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]: ...

    def count_by_state(self) -> Dict[str, int]: ...

    def claim(
        self, job_id: str, worker: str, lease_expires_at: float
    ) -> Optional[JobRecord]: ...

    def heartbeat(
        self, job_id: str, worker: str, lease_expires_at: float
    ) -> Optional[JobRecord]: ...

    def finish(self, record: JobRecord, worker: str) -> Optional[JobRecord]: ...

    def set_cancel_requested(self, job_id: str) -> JobRecord: ...

    def recover_orphans(
        self, now: float, max_requeues: int = 5
    ) -> List[JobRecord]: ...

    def prune_terminal(self, max_history: int) -> List[str]: ...


@runtime_checkable
class AnalysisStore(Protocol):
    """Durable (or volatile) analysis table.

    Analyses have no claim/lease machinery of their own — the heavy
    lifting is done by the cell *jobs*, which already carry leases and
    orphan recovery.  The only race to arbitrate is finalization (two
    sweepers observing "all cells terminal" at once), which
    :meth:`finalize` resolves with a compare-and-set on
    ``state == 'running'``: exactly one writer wins, and since reports
    are deterministic the loser's report was byte-identical anyway.
    """

    def next_analysis_id(self) -> str: ...

    def create(self, record: AnalysisRecord) -> AnalysisRecord: ...

    def get(self, analysis_id: str) -> AnalysisRecord: ...

    def save(self, record: AnalysisRecord) -> AnalysisRecord: ...

    def delete(self, analysis_id: str) -> None: ...

    def list(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[AnalysisRecord], Optional[str]]: ...

    def count_by_state(self) -> Dict[str, int]: ...

    def finalize(self, record: AnalysisRecord) -> Optional[AnalysisRecord]: ...


@runtime_checkable
class WorkQueue(Protocol):
    """Bounded FIFO of queued job ids, shared by every worker."""

    limit: int

    def push(self, job_id: str) -> None: ...

    def pop(self, timeout: float = 0.1) -> Optional[str]: ...

    def depth(self) -> int: ...

    def __contains__(self, job_id: object) -> bool: ...


@runtime_checkable
class DatasetStore(Protocol):
    """Dataset descriptors plus content-addressed point blobs."""

    def put(self, record: DatasetRecord, points: Optional[np.ndarray]) -> DatasetRecord: ...

    def get(self, ds_id: str) -> Optional[DatasetRecord]: ...

    def load_points(self, fingerprint: str) -> Optional[np.ndarray]: ...

    def list(self) -> List[DatasetRecord]: ...

    def find_fingerprint(self, fingerprint: str) -> Optional[DatasetRecord]: ...

    def __len__(self) -> int: ...

    def __contains__(self, ds_id: object) -> bool: ...


@runtime_checkable
class ResultStore(Protocol):
    """``cache_key → (payload, run_log)`` with hit/miss accounting."""

    def get(self, key) -> Optional[Tuple[dict, object]]: ...

    def put(self, key, payload: dict, run_log=None) -> None: ...

    def stats(self) -> dict: ...

    def __len__(self) -> int: ...

    def __contains__(self, key: object) -> bool: ...

    def clear(self) -> None: ...


# ---------------------------------------------------------------------------
# in-memory implementations
# ---------------------------------------------------------------------------


def _orphan_note(record: JobRecord, now: float) -> dict:
    """The ``attempts[]`` entry an orphan requeue leaves behind —
    the same shape crash retries write, so ``attempts`` reads as one
    unified recovery history."""
    return {
        "attempt": record.attempt,
        "error": f"orphaned: worker lease expired ({record.worker or 'unknown'})",
        "failed_at": now,
        "backoff_s": 0.0,
    }


class InMemoryJobStore:
    """Dict-backed :class:`JobStore` — PR-3 semantics behind the protocol.

    State dies with the process; orphan recovery still works within a
    process (a record whose lease lapsed is recoverable), which is what
    the backend-parity contract tests exercise.
    """

    backend = "memory"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._ids = itertools.count(1)

    def next_job_id(self) -> str:
        return f"job-{next(self._ids):06d}"

    def create(self, record: JobRecord) -> JobRecord:
        with self._lock:
            record.version = 1
            self._records[record.id] = replace(
                record, attempts=list(record.attempts), spec=dict(record.spec)
            )
            return self._snapshot(record.id)

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            if job_id not in self._records:
                raise UnknownJobError(job_id)
            return self._snapshot(job_id)

    def save(self, record: JobRecord) -> JobRecord:
        with self._lock:
            current = self._records.get(record.id)
            if current is None:
                raise UnknownJobError(record.id)
            record.version = current.version + 1
            self._records[record.id] = replace(
                record, attempts=list(record.attempts), spec=dict(record.spec)
            )
            return self._snapshot(record.id)

    def delete(self, job_id: str) -> None:
        with self._lock:
            self._records.pop(job_id, None)

    def list(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]:
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.numeric_id)
        if state is not None:
            records = [r for r in records if r.state == state]
        if cursor is not None:
            after = int(cursor.rsplit("-", 1)[1])
            records = [r for r in records if r.numeric_id > after]
        next_cursor = None
        if limit is not None and len(records) > limit:
            records = records[:limit]
            next_cursor = records[-1].id
        return [replace(r, attempts=list(r.attempts)) for r in records], next_cursor

    def count_by_state(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for rec in self._records.values():
                out[rec.state] = out.get(rec.state, 0) + 1
            return out

    def claim(
        self, job_id: str, worker: str, lease_expires_at: float
    ) -> Optional[JobRecord]:
        with self._lock:
            rec = self._records.get(job_id)
            if rec is None or rec.state != "queued" or rec.cancel_requested:
                return None
            rec.state = "running"
            rec.worker = worker
            rec.lease_expires_at = lease_expires_at
            rec.started_at = time.time()
            rec.version += 1
            return self._snapshot(job_id)

    def heartbeat(
        self, job_id: str, worker: str, lease_expires_at: float
    ) -> Optional[JobRecord]:
        with self._lock:
            rec = self._records.get(job_id)
            if rec is None or rec.state != "running" or rec.worker != worker:
                return None
            rec.lease_expires_at = lease_expires_at
            rec.version += 1
            return self._snapshot(job_id)

    def finish(self, record: JobRecord, worker: str) -> Optional[JobRecord]:
        with self._lock:
            current = self._records.get(record.id)
            if current is None or current.state != "running" or current.worker != worker:
                return None
            record.worker = None
            record.lease_expires_at = None
            record.version = current.version + 1
            self._records[record.id] = replace(
                record, attempts=list(record.attempts), spec=dict(record.spec)
            )
            return self._snapshot(record.id)

    def set_cancel_requested(self, job_id: str) -> JobRecord:
        with self._lock:
            rec = self._records.get(job_id)
            if rec is None:
                raise UnknownJobError(job_id)
            if not rec.cancel_requested:
                rec.cancel_requested = True
                rec.version += 1
            return self._snapshot(job_id)

    def recover_orphans(self, now: float, max_requeues: int = 5) -> List[JobRecord]:
        recovered: List[JobRecord] = []
        with self._lock:
            for rec in self._records.values():
                if rec.state != "running":
                    continue
                if rec.lease_expires_at is None or rec.lease_expires_at >= now:
                    continue
                rec.attempts.append(_orphan_note(rec, now))
                if rec.cancel_requested:
                    rec.state = "cancelled"
                    rec.finished_at = now
                elif rec.attempt + 1 > max_requeues:
                    rec.state = "failed"
                    rec.error = (
                        f"orphaned {rec.attempt + 1} times "
                        f"(requeue budget {max_requeues} exhausted)"
                    )
                    rec.finished_at = now
                else:
                    rec.state = "queued"
                    rec.attempt += 1
                    rec.queued_at = now
                rec.worker = None
                rec.lease_expires_at = None
                rec.started_at = None if rec.state == "queued" else rec.started_at
                rec.version += 1
                recovered.append(self._snapshot(rec.id))
        return recovered

    def prune_terminal(self, max_history: int) -> List[str]:
        with self._lock:
            terminal = [
                r.id
                for r in sorted(self._records.values(), key=lambda r: r.numeric_id)
                if r.terminal
            ]
            excess = len(terminal) - max_history
            pruned = terminal[:excess] if excess > 0 else []
            for jid in pruned:
                del self._records[jid]
            return pruned

    def _snapshot(self, job_id: str) -> JobRecord:
        rec = self._records[job_id]
        return replace(rec, attempts=list(rec.attempts), spec=dict(rec.spec))


class InMemoryAnalysisStore:
    """Dict-backed :class:`AnalysisStore`."""

    backend = "memory"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, AnalysisRecord] = {}
        self._ids = itertools.count(1)

    def next_analysis_id(self) -> str:
        return f"an-{next(self._ids):06d}"

    def create(self, record: AnalysisRecord) -> AnalysisRecord:
        with self._lock:
            record.version = 1
            self._records[record.id] = self._copy(record)
            return self._snapshot(record.id)

    def get(self, analysis_id: str) -> AnalysisRecord:
        with self._lock:
            if analysis_id not in self._records:
                raise UnknownAnalysisError(analysis_id)
            return self._snapshot(analysis_id)

    def save(self, record: AnalysisRecord) -> AnalysisRecord:
        with self._lock:
            current = self._records.get(record.id)
            if current is None:
                raise UnknownAnalysisError(record.id)
            record.version = current.version + 1
            self._records[record.id] = self._copy(record)
            return self._snapshot(record.id)

    def delete(self, analysis_id: str) -> None:
        with self._lock:
            self._records.pop(analysis_id, None)

    def list(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[AnalysisRecord], Optional[str]]:
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.numeric_id)
            records = [self._copy(r) for r in records]
        if state is not None:
            records = [r for r in records if r.state == state]
        if cursor is not None:
            after = int(cursor.rsplit("-", 1)[1])
            records = [r for r in records if r.numeric_id > after]
        next_cursor = None
        if limit is not None and len(records) > limit:
            records = records[:limit]
            next_cursor = records[-1].id
        return records, next_cursor

    def count_by_state(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for rec in self._records.values():
                out[rec.state] = out.get(rec.state, 0) + 1
            return out

    def finalize(self, record: AnalysisRecord) -> Optional[AnalysisRecord]:
        with self._lock:
            current = self._records.get(record.id)
            if current is None or current.state != "running":
                return None
            record.version = current.version + 1
            self._records[record.id] = self._copy(record)
            return self._snapshot(record.id)

    def _copy(self, record: AnalysisRecord) -> AnalysisRecord:
        return replace(
            record,
            spec=dict(record.spec),
            cell_job_ids=list(record.cell_job_ids),
        )

    def _snapshot(self, analysis_id: str) -> AnalysisRecord:
        return self._copy(self._records[analysis_id])


class InMemoryWorkQueue:
    """:class:`queue.Queue`-backed bounded FIFO (the PR-3 queue)."""

    backend = "memory"

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._queue: "queue.Queue[str]" = queue.Queue(maxsize=limit)

    def push(self, job_id: str) -> None:
        try:
            self._queue.put_nowait(job_id)
        except queue.Full:
            raise QueueFullError(
                f"job queue full ({self.limit} queued); retry later"
            ) from None

    def pop(self, timeout: float = 0.1) -> Optional[str]:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def depth(self) -> int:
        return self._queue.qsize()

    def __contains__(self, job_id: object) -> bool:
        with self._queue.mutex:
            return job_id in self._queue.queue


class InMemoryDatasetStore:
    """Dict-backed :class:`DatasetStore`; point arrays held by reference."""

    backend = "memory"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, DatasetRecord] = {}
        self._points: Dict[str, np.ndarray] = {}

    def put(self, record: DatasetRecord, points: Optional[np.ndarray]) -> DatasetRecord:
        with self._lock:
            existing = self._records.get(record.id)
            if existing is not None:
                return existing
            self._records[record.id] = record
            if points is not None:
                self._points[record.fingerprint] = np.asarray(points, dtype=np.float64)
            return record

    def get(self, ds_id: str) -> Optional[DatasetRecord]:
        with self._lock:
            return self._records.get(ds_id)

    def load_points(self, fingerprint: str) -> Optional[np.ndarray]:
        with self._lock:
            return self._points.get(fingerprint)

    def list(self) -> List[DatasetRecord]:
        with self._lock:
            return list(self._records.values())

    def find_fingerprint(self, fingerprint: str) -> Optional[DatasetRecord]:
        with self._lock:
            for rec in self._records.values():
                if rec.fingerprint == fingerprint:
                    return rec
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, ds_id: object) -> bool:
        with self._lock:
            return ds_id in self._records


# ---------------------------------------------------------------------------
# backend factory
# ---------------------------------------------------------------------------


@dataclass
class ServiceStores:
    """One bundle of the stores a service instance runs on."""

    jobs: JobStore
    work_queue: WorkQueue
    datasets: DatasetStore
    results: ResultStore
    analyses: AnalysisStore
    #: ``"memory"`` or ``"sqlite"``
    backend: str
    #: the shared state directory for durable backends, else ``None``
    state_dir: Optional[str] = None

    def describe(self) -> dict:
        return {
            "backend": self.backend,
            "state_dir": self.state_dir,
            "queue_limit": self.work_queue.limit,
        }


def open_stores(
    state_dir: Optional[str] = None,
    *,
    queue_limit: int = 64,
    cache_entries: int = 1024,
) -> ServiceStores:
    """Open a store bundle: volatile when ``state_dir`` is ``None``,
    SQLite/file-backed (WAL, safe for concurrent frontend and worker
    processes) when a directory path is given.

    Any number of processes may open the same directory; they share one
    job table, one work queue, one dataset store, and one result store.
    """
    if state_dir is None:
        from repro.service.cache import ResultCache

        return ServiceStores(
            jobs=InMemoryJobStore(),
            work_queue=InMemoryWorkQueue(limit=queue_limit),
            datasets=InMemoryDatasetStore(),
            results=ResultCache(max_entries=cache_entries),
            analyses=InMemoryAnalysisStore(),
            backend="memory",
        )
    from repro.service.sqlite_store import (
        SqliteAnalysisStore,
        SqliteDatasetStore,
        SqliteJobStore,
        SqliteResultStore,
        SqliteWorkQueue,
        prepare_state_dir,
    )

    db_path, blob_dir = prepare_state_dir(state_dir)
    return ServiceStores(
        jobs=SqliteJobStore(db_path),
        work_queue=SqliteWorkQueue(db_path, limit=queue_limit),
        datasets=SqliteDatasetStore(db_path, blob_dir),
        results=SqliteResultStore(db_path, max_entries=cache_entries),
        analyses=SqliteAnalysisStore(db_path),
        backend="sqlite",
        state_dir=str(state_dir),
    )


def ensure_queued_jobs_enqueued(
    jobs: JobStore, work_queue: WorkQueue, *, older_than_s: float = 0.0,
    now: Optional[float] = None,
) -> List[str]:
    """Re-push queued job records missing from the work queue.

    Covers two loss windows: a process that died between persisting a
    record and pushing its id, and a worker that popped an id and died
    before claiming the job.  With ``older_than_s > 0`` only records
    that have sat queued at least that long are considered, so the
    sweep never races a submission that is about to push.
    """
    now = time.time() if now is None else now
    repushed: List[str] = []
    queued, _ = jobs.list(state="queued")
    for rec in queued:
        if now - rec.queued_at < older_than_s:
            continue
        if rec.id in work_queue:
            continue
        try:
            work_queue.push(rec.id)
        except QueueFullError:
            break
        repushed.append(rec.id)
    return repushed


def iterate_jobs(jobs: JobStore, state: Optional[str] = None,
                 page_size: int = 256) -> Iterable[JobRecord]:
    """Cursor-following iterator over every record (oldest first)."""
    cursor: Optional[str] = None
    while True:
        page, cursor = jobs.list(state=state, limit=page_size, cursor=cursor)
        yield from page
        if cursor is None:
            return
