"""Execute one job spec through the solver facade.

The runner is the bridge between the queueing layer and
:mod:`repro.api`: it assembles the cluster exactly the way a direct
``solve_*`` call would (same seed, partition, and machine count — so a
service result is bit-identical to the equivalent library call), wraps
the metric in a :class:`~repro.metric.oracle.CountingOracle`, attaches a
per-job :class:`~repro.obs.Recorder`, and dispatches by algorithm name.

Cancellation and timeouts piggyback on the observability layer: a
:class:`_JobControl` observer checks the cancel event and the deadline
at every MPC round barrier and raises :class:`JobCancelled` /
:class:`JobTimeout` to unwind the solver.  Granularity is one round —
a job is interruptible wherever the simulated cluster synchronizes,
which for these algorithms is every few hundred milliseconds of local
work at most.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import threading

import numpy as np

from repro.api import SOLVERS, build_cluster
from repro.constants import TheoryConstants
from repro.core.warm import WarmStart
from repro.metric.oracle import CountingOracle
from repro.obs import Observer, Recorder, RunLog
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.tracing import TraceContext, current_trace, use_trace
from repro.service.datasets import Dataset
from repro.service.spec import JobSpec


class JobCancelled(Exception):
    """The job's cancel event was set while it was running."""


class JobTimeout(Exception):
    """The job exceeded its wall-clock budget."""


class _JobControl(Observer):
    """Observer that aborts a run at round barriers."""

    wants_messages = False  # keep the hub's per-message fast path active

    def __init__(self, cancel_event: Optional[threading.Event],
                 deadline: Optional[float]) -> None:
        self.cancel_event = cancel_event
        self.deadline = deadline

    def _check(self) -> None:
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise JobCancelled()
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise JobTimeout()

    def on_round_start(self, round_no: int) -> None:
        self._check()

    def on_round_end(self, record) -> None:
        self._check()


def drift_report(
    ids,
    objective: float,
    *,
    parent_centers,
    parent_objective: float,
    appended: int,
) -> dict:
    """Quantify how far a child solution drifted from its parent's.

    All fields are pure functions of the two solutions (no wall-clock,
    no job ids), so the report is bit-identical wherever the same
    chain is re-solved:

    * ``appended`` — points added since the parent version;
    * ``center_overlap`` — fraction of the parent's centers retained
      in the child solution;
    * ``objective_delta`` — child objective minus parent objective
      (positive = radius grew / diversity rose);
    * ``drift_ratio`` — child objective over parent objective
      (``None`` when the parent objective is 0).
    """
    ids = np.asarray(ids, dtype=np.int64)
    parent_centers = np.asarray(parent_centers, dtype=np.int64)
    shared = np.intersect1d(ids, parent_centers).size
    overlap = float(shared) / float(parent_centers.size) if parent_centers.size else 0.0
    return {
        "appended": int(appended),
        "center_overlap": overlap,
        "objective": float(objective),
        "objective_delta": float(objective) - float(parent_objective),
        "drift_ratio": (
            float(objective) / float(parent_objective)
            if parent_objective not in (0, 0.0)
            else None
        ),
    }


def execute_job(
    spec: JobSpec,
    dataset: Dataset,
    *,
    backend: str = "serial",
    remote_workers=None,
    cancel_event: Optional[threading.Event] = None,
    job_id: Optional[str] = None,
    faults=None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[TraceContext] = None,
    warm: Optional[dict] = None,
) -> Tuple[dict, RunLog]:
    """Run one job; returns ``(payload, run_log)``.

    ``warm`` (for ``spec.warm_start`` jobs; the manager resolves it
    from the parent version's cached result) is a dict with the parent
    ``dataset``/``fingerprint``/``base_n``/``centers``/``objective``;
    the solver then reuses the parent's centers as the initial GMM
    state (:class:`repro.core.WarmStart`) and the payload gains
    ``warm_start`` and ``drift`` sections.  Everything in those
    sections derives from solver output, so warm payloads stay
    bit-identical across backends and kill/restart recovery.

    The payload is JSON-safe: the solver's result record
    (:meth:`to_dict`), the cluster's MPC accounting summary, the
    per-phase breakdown from the recorded run log, and — when a fault
    plan was active — a ``recovery`` section with the injection and
    recovery counts.

    ``backend`` is the manager's default; a spec that pins
    ``backend=`` overrides it per job.  ``remote_workers`` carries the
    remote worker-agent addresses handed to
    :class:`~repro.mpc.remote.RemoteExecutor` when the effective
    backend is ``'remote'`` (other backends ignore it).

    When ``metrics`` is given (the manager passes its own registry), a
    :class:`~repro.obs.metrics.MetricsObserver` streams the run's
    rounds, span durations, oracle deltas, and fault events into it —
    this is what ``GET /metrics`` aggregates across jobs.

    ``trace`` is the request's :class:`~repro.obs.tracing.TraceContext`
    (the manager passes the job's); it falls back to the ambient
    context, then to a deterministic seed-derived root — every executed
    job is traced, and a directly-invoked runner traces reproducibly.
    """
    ctx = trace if trace is not None else current_trace()
    if ctx is None:
        ctx = TraceContext.from_seed(spec.seed, name="run")
    backend = spec.backend if spec.backend is not None else backend
    oracle = CountingOracle(dataset.metric)
    cluster = build_cluster(
        metric=oracle,
        machines=spec.machines,
        seed=spec.seed,
        partition=spec.partition,
        backend=backend,
        workers=remote_workers,
        faults=faults,
        trace=ctx,
    )
    recorder = Recorder.attach(cluster, capture_messages=False)
    recorder.log.meta.update(
        {
            "job": job_id,
            "algorithm": spec.algorithm,
            "dataset": dataset.id,
            "fingerprint": dataset.fingerprint,
            "k": spec.k,
            "eps": spec.eps,
            "seed": spec.seed,
            "backend": backend,
        }
    )
    if cluster.faults is not None:
        recorder.log.meta["faults"] = cluster.faults.describe()
    deadline = (
        time.monotonic() + spec.timeout_s if spec.timeout_s is not None else None
    )
    control = cluster.obs.add(_JobControl(cancel_event, deadline))
    if metrics is not None:
        cluster.obs.add(MetricsObserver(metrics))
        # same family names and help as repro.api._observed_solve, so the
        # service registry renders identically to the process-global one
        metrics.counter(
            "repro_solver_runs_total", "facade solver calls started",
            labels=("algorithm",),
        ).labels(spec.algorithm).inc()

    constants = (
        TheoryConstants.paper() if spec.constants == "paper"
        else TheoryConstants.practical()
    )
    kwargs = dict(
        k=spec.k,
        eps=spec.eps,
        constants=constants,
        trim_mode=spec.trim_mode,
        cluster=cluster,
    )
    if spec.algorithm == "ksupplier":
        kwargs["customers"] = list(spec.customers)
        kwargs["suppliers"] = list(spec.suppliers)
    if spec.outliers is not None:
        kwargs["outliers"] = spec.outliers
    if warm is not None:
        kwargs["warm_start"] = WarmStart(
            base_n=int(warm["base_n"]),
            centers=np.asarray(warm["centers"], dtype=np.int64),
            objective=float(warm["objective"]),
        )

    t0 = time.perf_counter()
    try:
        with use_trace(ctx):
            result = SOLVERS[spec.algorithm](**kwargs)
    finally:
        cluster.obs.remove(control)
        cluster.executor.shutdown()
    if metrics is not None:
        metrics.histogram(
            "repro_solver_latency_seconds",
            "wall-clock per completed facade solver call", labels=("algorithm",),
        ).labels(spec.algorithm).observe(time.perf_counter() - t0)

    payload = {
        "algorithm": spec.algorithm,
        "dataset": dataset.id,
        "fingerprint": dataset.fingerprint,
        "record": result.to_dict(),
        "mpc_stats": cluster.stats.summary(),
        "oracle": {
            "calls": int(oracle.calls),
            "evaluations": int(oracle.evaluations),
        },
        "phases": recorder.log.phase_summary(),
    }
    if warm is not None:
        ids = result.centers if spec.algorithm == "kcenter" else result.ids
        objective = (
            result.radius if spec.algorithm == "kcenter" else result.diversity
        )
        payload["warm_start"] = {
            "parent": {
                "dataset": warm["dataset"],
                "fingerprint": warm["fingerprint"],
                "n": int(warm["base_n"]),
                "objective": float(warm["objective"]),
            }
        }
        payload["drift"] = drift_report(
            ids, float(objective),
            parent_centers=warm["centers"],
            parent_objective=float(warm["objective"]),
            appended=dataset.n - int(warm["base_n"]),
        )
    if cluster.faults is not None or recorder.log.faults:
        recovery = {"fault_summary": recorder.log.fault_summary()}
        stats_fn = getattr(cluster.executor, "recovery_stats", None)
        if stats_fn is not None:
            recovery["executor"] = stats_fn()
        payload["recovery"] = recovery
    pool_fn = getattr(cluster.executor, "pool_status", None)
    if pool_fn is not None:
        # remote backend: record the pool's end-of-run shape (surviving
        # workers, per-worker loss reasons, any degradation) even on
        # fault-free runs — agents can die without an injection plan
        payload["remote_pool"] = pool_fn()
        if "recovery" not in payload:
            stats_fn = getattr(cluster.executor, "recovery_stats", None)
            if stats_fn is not None:
                payload["recovery"] = {"executor": stats_fn()}
    return payload, recorder.log
