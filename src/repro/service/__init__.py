"""repro.service — the clustering job service.

Turns the one-shot solver facade (:mod:`repro.api`) into a long-running
service: datasets are registered once and content-fingerprinted, jobs
are queued and executed by a worker pool, results are cached so repeat
submissions are O(1) lookups, and everything is reachable over a
stdlib-only HTTP/JSON API.  The shape follows the classic
frontend → queue → workers → result-store pipeline of production
clustering services.

Layers (each its own module):

* :mod:`repro.service.datasets` — :class:`DatasetRegistry`; a dataset
  is a named workload or uploaded points, identified by the SHA-256 of
  its canonical point bytes;
* :mod:`repro.service.spec` — :class:`JobSpec`, the validated,
  hashable description of one solver run (its :meth:`~JobSpec.cache_key`
  deliberately excludes the execution backend: PR-2's determinism
  guarantee makes results backend-invariant);
* :mod:`repro.service.cache` — :class:`ResultCache`, fingerprint-keyed
  with hit/miss counters;
* :mod:`repro.service.runner` — executes one job through
  :func:`repro.api.solve` with a per-job :class:`~repro.obs.Recorder`
  and round-granular cancellation/timeout;
* :mod:`repro.service.jobs` — :class:`JobManager`: bounded FIFO queue,
  worker pool, job lifecycle ``queued → running → done|failed|cancelled``,
  and a :class:`RetryPolicy` that re-enqueues crashed jobs with
  exponential backoff (see ``docs/fault_tolerance.md``);
* :mod:`repro.service.store` — the pluggable state layer:
  ``JobStore`` / ``WorkQueue`` / ``DatasetStore`` / ``ResultStore``
  protocols with in-memory and SQLite/file backends
  (:func:`~repro.service.store.open_stores`); a durable state
  directory is what lets N worker processes and M frontends form one
  service (see ``docs/persistence.md``);
* :mod:`repro.service.http` — the versioned HTTP/JSON API
  (``POST /v1/datasets``, ``POST /v1/jobs``, ``GET /v1/jobs/<id>``,
  ``DELETE /v1/jobs/<id>``, ``GET /v1/jobs/<id>/trace``,
  ``GET /v1/healthz``, ``GET /v1/stats``, plus the ``/v1/analyses``
  sweep routes backed by :mod:`repro.sweeps`) on a threading
  :mod:`http.server`, with uniform error envelopes and deprecated
  unversioned aliases;
* :mod:`repro.service.client` — :class:`ServiceClient`, the in-process
  Python client the CLI smoke tests and notebooks use.

Quickstart (in-process)::

    from repro.service import JobManager, DatasetRegistry, JobSpec

    registry = DatasetRegistry()
    ds = registry.register_points(points)
    manager = JobManager(registry, workers=2)
    manager.start()
    job = manager.submit(JobSpec(algorithm="kcenter", dataset=ds.id, k=8))
    manager.wait(job.id)
    job.result["record"]["radius"]

Over HTTP: ``repro serve --port 8000`` then
:class:`~repro.service.client.ServiceClient`\\ ``("http://localhost:8000")``.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.datasets import (
    Dataset,
    DatasetRegistry,
    MetricMismatchError,
    NotAppendableError,
    UnknownDatasetError,
)
from repro.service.http import serve
from repro.service.jobs import (
    Job,
    JobManager,
    JobState,
    QueueFullError,
    RetryPolicy,
    UnknownJobError,
)
from repro.service.spec import JobSpec
from repro.service.runner import JobCancelled, JobTimeout
from repro.service.store import (
    AnalysisRecord,
    ServiceStores,
    UnknownAnalysisError,
    open_stores,
)

__all__ = [
    "AnalysisRecord",
    "Dataset",
    "DatasetRegistry",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobSpec",
    "JobState",
    "JobTimeout",
    "MetricMismatchError",
    "NotAppendableError",
    "QueueFullError",
    "ResultCache",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceStores",
    "UnknownAnalysisError",
    "UnknownDatasetError",
    "UnknownJobError",
    "open_stores",
    "serve",
]
