"""Dataset registry: register once, fingerprint, reuse across jobs.

A dataset is a *named workload* (built deterministically from the
:mod:`repro.workloads.registry` with a seed), *uploaded points* (raw
coordinates plus a metric name), or an *append version* (a parent
dataset plus a batch of new points, see :meth:`DatasetRegistry.append`).
Registration materializes the metric once and computes the content
fingerprint — the SHA-256 of the metric's distance-function identity
plus the canonical point bytes (see
:func:`repro.workloads.registry.fingerprint_metric`) — so two
registrations of bit-identical data under the same metric collapse to
the same dataset id, while the same points under *different* metrics
(euclidean vs manhattan) stay distinct, and the result cache can treat
"same fingerprint" as "same input".

Every registered dataset *version* is immutable — appending never
mutates the parent, it mints a new chained version whose fingerprint is
derived from ``(parent fingerprint, delta digest, metric)``, so the
chain is content-addressed exactly like flat registrations: the same
parent grown by the same bytes is the same child, and the result cache
can never cross-serve a parent result for a child (or vice versa).
Metrics are immutable (point arrays are read-only and kernels are
pure), so one registered dataset is safely shared by concurrent jobs;
per-job mutable state (RNG streams, counting wrappers) lives on the
cluster each job builds for itself.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import make_metric
from repro.metric.base import Metric
from repro.service.store import DatasetRecord, DatasetStore, InMemoryDatasetStore
from repro.workloads.registry import (
    available_workloads,
    fingerprint_metric,
    fingerprint_points,
    make_workload,
)


class UnknownDatasetError(KeyError):
    """No dataset with the requested id (or fingerprint) is registered."""


class NotAppendableError(ValueError):
    """The parent dataset kind does not support appends (workloads
    rebuild from their generator params and oracle-only metrics have no
    canonical coordinates; register the coordinates as points first)."""


class MetricMismatchError(ValueError):
    """An append named a metric different from the parent's — chained
    versions must share one metric or their fingerprints (and cached
    results) would silently disagree."""


@dataclass
class Dataset:
    """One registered, fingerprinted clustering input."""

    id: str
    fingerprint: str
    metric: Metric
    #: ``'workload'``, ``'points'``, or ``'append'``
    kind: str
    #: registration parameters (workload name/n/seed, or metric name;
    #: append versions add parent/parent_fingerprint/delta_fingerprint/
    #: base_n/depth)
    params: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.metric.n

    @property
    def parent(self) -> Optional[str]:
        """Parent version's dataset id (``None`` for non-append datasets)."""
        return self.params.get("parent")

    @property
    def base_n(self) -> int:
        """Points inherited from the parent version (0 for roots)."""
        return int(self.params.get("base_n", 0))

    def describe(self) -> dict:
        """JSON-safe summary (no point data)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "n": self.n,
            "metric": type(self.metric).__name__,
            "params": dict(self.params),
        }


class DatasetRegistry:
    """Thread-safe dataset registry keyed by content, over a pluggable
    :class:`~repro.service.store.DatasetStore`.

    Ids are derived from the fingerprint (``ds-<first 12 hex>``), so
    registration is idempotent: submitting the same bytes twice returns
    the same :class:`Dataset` object.  With no ``store`` argument the
    backing store is in-memory (the PR-3 behaviour); with a durable
    store, descriptors and point blobs persist across restarts and are
    visible to every process sharing the state directory — ``get``
    *rehydrates* a dataset another process registered (rebuilding the
    workload deterministically from its params, or loading the
    content-addressed ``.npy`` blob), caching the materialized
    :class:`Dataset` locally so repeated lookups return the same object.
    """

    def __init__(self, store: Optional[DatasetStore] = None) -> None:
        self._lock = threading.Lock()
        self._store: DatasetStore = store if store is not None else InMemoryDatasetStore()
        #: locally materialized Dataset objects (with their live metric)
        self._by_id: Dict[str, Dataset] = {}

    @property
    def store(self) -> DatasetStore:
        return self._store

    # -- registration -------------------------------------------------------

    def register_points(self, points, metric: str = "euclidean") -> Dataset:
        """Register uploaded coordinates under a named metric."""
        arr = np.asarray(points, dtype=np.float64)
        resolved = make_metric(arr, metric)
        return self._admit(
            resolved,
            kind="points",
            params={"metric": str(metric).lower()},
            points=arr,
        )

    def register_workload(self, name: str, n: int, seed: int = 0) -> Dataset:
        """Register a named workload instance (built deterministically)."""
        if name not in available_workloads():
            raise ValueError(
                f"unknown workload {name!r}; available: {available_workloads()}"
            )
        inst = make_workload(name, int(n), seed=int(seed))
        return self._admit(
            inst.metric,
            kind="workload",
            params={"workload": name, "n": int(n), "seed": int(seed)},
        )

    def append(self, ds_id: str, points, metric: Optional[str] = None) -> Dataset:
        """Grow a dataset: mint a new chained version with ``points``
        appended after the parent's.

        The parent is untouched; the child is a full, self-contained
        dataset (parent coordinates + delta, in order) whose fingerprint
        is the SHA-256 of ``(parent fingerprint, delta digest, metric)``
        — content-addressed, so the same parent grown by the same bytes
        is the same child and the operation is idempotent.  Ids
        ``< parent.n`` in the child are exactly the parent's points,
        which is what lets warm-start re-solves reuse the parent's
        centers (see :mod:`repro.core.warm`).

        Raises :class:`NotAppendableError` for workload/oracle-only
        parents, :class:`MetricMismatchError` if ``metric`` names a
        different metric than the parent's, and :class:`ValueError` for
        shape problems (empty delta, dimension mismatch).
        """
        parent = self.get(ds_id)
        if parent.kind not in ("points", "append"):
            raise NotAppendableError(
                f"dataset {parent.id} (kind={parent.kind!r}) is not appendable; "
                "register its coordinates as points first"
            )
        parent_metric = str(parent.params["metric"]).lower()
        if metric is not None and str(metric).lower() != parent_metric:
            raise MetricMismatchError(
                f"append metric {str(metric).lower()!r} does not match parent "
                f"{parent.id} metric {parent_metric!r}"
            )
        delta = np.asarray(points, dtype=np.float64)
        if delta.ndim == 1:
            delta = delta.reshape(1, -1) if delta.size else delta.reshape(0, 0)
        if delta.ndim != 2 or delta.shape[0] == 0:
            raise ValueError("append requires a non-empty (m, d) batch of points")
        parent_pts = self._store.load_points(parent.fingerprint)
        if parent_pts is None:
            raise UnknownDatasetError(
                f"{parent.id}: point blob {parent.fingerprint[:12]}… missing "
                "from the dataset store"
            )
        if delta.shape[1] != parent_pts.shape[1]:
            raise ValueError(
                f"append dimension mismatch: parent {parent.id} has "
                f"d={parent_pts.shape[1]}, delta has d={delta.shape[1]}"
            )
        combined = np.vstack([parent_pts, delta])
        delta_fp = fingerprint_points(delta)
        fp = hashlib.sha256(
            b"append\x00"
            + parent.fingerprint.encode()
            + b"\x00"
            + delta_fp.encode()
            + b"\x00"
            + parent_metric.encode()
        ).hexdigest()
        return self._admit(
            make_metric(combined, parent_metric),
            kind="append",
            params={
                "metric": parent_metric,
                "parent": parent.id,
                "parent_fingerprint": parent.fingerprint,
                "delta_fingerprint": delta_fp,
                "base_n": int(parent.n),
                "depth": int(parent.params.get("depth", 0)) + 1,
            },
            points=combined,
            fingerprint=fp,
        )

    def chain(self, ds_id: str) -> List[Dataset]:
        """The version chain of ``ds_id``, root first (ends at ``ds_id``)."""
        out: List[Dataset] = []
        ds = self.get(ds_id)
        while True:
            out.append(ds)
            if ds.parent is None:
                break
            ds = self.get(ds.parent)
        out.reverse()
        return out

    def _admit(
        self,
        metric: Metric,
        *,
        kind: str,
        params: dict,
        points: Optional[np.ndarray] = None,
        fingerprint: Optional[str] = None,
    ) -> Dataset:
        fp = fingerprint if fingerprint is not None else fingerprint_metric(metric)
        if fp is None:
            # oracle-only metric: no canonical bytes — key by the
            # registration parameters instead (still deterministic)
            import json

            fp = hashlib.sha256(
                json.dumps({"kind": kind, **params}, sort_keys=True).encode()
            ).hexdigest()
        ds_id = f"ds-{fp[:12]}"
        with self._lock:
            existing = self._by_id.get(ds_id)
            if existing is not None:
                return existing
            # workloads rebuild deterministically from their params, so
            # only uploaded/appended coordinates need a point blob
            self._store.put(
                DatasetRecord(
                    id=ds_id,
                    fingerprint=fp,
                    kind=kind,
                    params=dict(params),
                    n=metric.n,
                    metric_name=type(metric).__name__,
                    created_at=time.time(),
                ),
                points if kind in ("points", "append") else None,
            )
            ds = Dataset(id=ds_id, fingerprint=fp, metric=metric, kind=kind, params=params)
            self._by_id[ds_id] = ds
            return ds

    # -- lookup -------------------------------------------------------------

    def get(self, ds_id: str) -> Dataset:
        """Dataset by id; raises :class:`UnknownDatasetError`.

        Datasets registered by *another* process on a shared store are
        rehydrated on first access and cached locally.
        """
        with self._lock:
            ds = self._by_id.get(ds_id)
        if ds is not None:
            return ds
        record = self._store.get(ds_id)
        if record is None:
            raise UnknownDatasetError(ds_id)
        ds = self._materialize(record)
        with self._lock:
            # another thread may have materialized concurrently — keep
            # exactly one live Dataset per id
            return self._by_id.setdefault(ds_id, ds)

    def _materialize(self, record: DatasetRecord) -> Dataset:
        """Rebuild a live :class:`Dataset` from its stored record."""
        if record.kind == "workload":
            inst = make_workload(
                record.params["workload"],
                int(record.params["n"]),
                seed=int(record.params["seed"]),
            )
            metric = inst.metric
        else:
            points = self._store.load_points(record.fingerprint)
            if points is None:
                raise UnknownDatasetError(
                    f"{record.id}: point blob {record.fingerprint[:12]}… missing "
                    "from the dataset store"
                )
            metric = make_metric(points, record.params["metric"])
        return Dataset(
            id=record.id,
            fingerprint=record.fingerprint,
            metric=metric,
            kind=record.kind,
            params=dict(record.params),
        )

    def __contains__(self, ds_id: object) -> bool:
        with self._lock:
            if ds_id in self._by_id:
                return True
        return ds_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def list(self) -> List[dict]:
        """JSON-safe summaries, in registration order (store-wide: a
        shared durable store lists every process's registrations)."""
        return [rec.describe() for rec in self._store.list()]

    def find_fingerprint(self, fingerprint: str) -> Optional[Dataset]:
        with self._lock:
            for ds in self._by_id.values():
                if ds.fingerprint == fingerprint:
                    return ds
        record = self._store.find_fingerprint(fingerprint)
        if record is None:
            return None
        try:
            return self.get(record.id)
        except UnknownDatasetError:
            return None
