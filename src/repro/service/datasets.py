"""Dataset registry: register once, fingerprint, reuse across jobs.

A dataset is either a *named workload* (built deterministically from the
:mod:`repro.workloads.registry` with a seed) or *uploaded points* (raw
coordinates plus a metric name).  Registration materializes the metric
once and computes the content fingerprint — the SHA-256 of the metric's
distance-function identity plus the canonical point bytes (see
:func:`repro.workloads.registry.fingerprint_metric`) — so two
registrations of bit-identical data under the same metric collapse to
the same dataset id, while the same points under *different* metrics
(euclidean vs manhattan) stay distinct, and the result cache can treat
"same fingerprint" as "same input".

Metrics are immutable (point arrays are read-only and kernels are
pure), so one registered dataset is safely shared by concurrent jobs;
per-job mutable state (RNG streams, counting wrappers) lives on the
cluster each job builds for itself.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import make_metric
from repro.metric.base import Metric
from repro.service.store import DatasetRecord, DatasetStore, InMemoryDatasetStore
from repro.workloads.registry import (
    available_workloads,
    fingerprint_metric,
    make_workload,
)


class UnknownDatasetError(KeyError):
    """No dataset with the requested id (or fingerprint) is registered."""


@dataclass
class Dataset:
    """One registered, fingerprinted clustering input."""

    id: str
    fingerprint: str
    metric: Metric
    #: ``'workload'`` or ``'points'``
    kind: str
    #: registration parameters (workload name/n/seed, or metric name)
    params: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.metric.n

    def describe(self) -> dict:
        """JSON-safe summary (no point data)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "n": self.n,
            "metric": type(self.metric).__name__,
            "params": dict(self.params),
        }


class DatasetRegistry:
    """Thread-safe dataset registry keyed by content, over a pluggable
    :class:`~repro.service.store.DatasetStore`.

    Ids are derived from the fingerprint (``ds-<first 12 hex>``), so
    registration is idempotent: submitting the same bytes twice returns
    the same :class:`Dataset` object.  With no ``store`` argument the
    backing store is in-memory (the PR-3 behaviour); with a durable
    store, descriptors and point blobs persist across restarts and are
    visible to every process sharing the state directory — ``get``
    *rehydrates* a dataset another process registered (rebuilding the
    workload deterministically from its params, or loading the
    content-addressed ``.npy`` blob), caching the materialized
    :class:`Dataset` locally so repeated lookups return the same object.
    """

    def __init__(self, store: Optional[DatasetStore] = None) -> None:
        self._lock = threading.Lock()
        self._store: DatasetStore = store if store is not None else InMemoryDatasetStore()
        #: locally materialized Dataset objects (with their live metric)
        self._by_id: Dict[str, Dataset] = {}

    @property
    def store(self) -> DatasetStore:
        return self._store

    # -- registration -------------------------------------------------------

    def register_points(self, points, metric: str = "euclidean") -> Dataset:
        """Register uploaded coordinates under a named metric."""
        arr = np.asarray(points, dtype=np.float64)
        resolved = make_metric(arr, metric)
        return self._admit(
            resolved,
            kind="points",
            params={"metric": str(metric).lower()},
            points=arr,
        )

    def register_workload(self, name: str, n: int, seed: int = 0) -> Dataset:
        """Register a named workload instance (built deterministically)."""
        if name not in available_workloads():
            raise ValueError(
                f"unknown workload {name!r}; available: {available_workloads()}"
            )
        inst = make_workload(name, int(n), seed=int(seed))
        return self._admit(
            inst.metric,
            kind="workload",
            params={"workload": name, "n": int(n), "seed": int(seed)},
        )

    def _admit(
        self,
        metric: Metric,
        *,
        kind: str,
        params: dict,
        points: Optional[np.ndarray] = None,
    ) -> Dataset:
        fp = fingerprint_metric(metric)
        if fp is None:
            # oracle-only metric: no canonical bytes — key by the
            # registration parameters instead (still deterministic)
            import hashlib
            import json

            fp = hashlib.sha256(
                json.dumps({"kind": kind, **params}, sort_keys=True).encode()
            ).hexdigest()
        ds_id = f"ds-{fp[:12]}"
        with self._lock:
            existing = self._by_id.get(ds_id)
            if existing is not None:
                return existing
            # workloads rebuild deterministically from their params, so
            # only uploaded coordinates need a point blob
            self._store.put(
                DatasetRecord(
                    id=ds_id,
                    fingerprint=fp,
                    kind=kind,
                    params=dict(params),
                    n=metric.n,
                    metric_name=type(metric).__name__,
                    created_at=time.time(),
                ),
                points if kind == "points" else None,
            )
            ds = Dataset(id=ds_id, fingerprint=fp, metric=metric, kind=kind, params=params)
            self._by_id[ds_id] = ds
            return ds

    # -- lookup -------------------------------------------------------------

    def get(self, ds_id: str) -> Dataset:
        """Dataset by id; raises :class:`UnknownDatasetError`.

        Datasets registered by *another* process on a shared store are
        rehydrated on first access and cached locally.
        """
        with self._lock:
            ds = self._by_id.get(ds_id)
        if ds is not None:
            return ds
        record = self._store.get(ds_id)
        if record is None:
            raise UnknownDatasetError(ds_id)
        ds = self._materialize(record)
        with self._lock:
            # another thread may have materialized concurrently — keep
            # exactly one live Dataset per id
            return self._by_id.setdefault(ds_id, ds)

    def _materialize(self, record: DatasetRecord) -> Dataset:
        """Rebuild a live :class:`Dataset` from its stored record."""
        if record.kind == "workload":
            inst = make_workload(
                record.params["workload"],
                int(record.params["n"]),
                seed=int(record.params["seed"]),
            )
            metric = inst.metric
        else:
            points = self._store.load_points(record.fingerprint)
            if points is None:
                raise UnknownDatasetError(
                    f"{record.id}: point blob {record.fingerprint[:12]}… missing "
                    "from the dataset store"
                )
            metric = make_metric(points, record.params["metric"])
        return Dataset(
            id=record.id,
            fingerprint=record.fingerprint,
            metric=metric,
            kind=record.kind,
            params=dict(record.params),
        )

    def __contains__(self, ds_id: object) -> bool:
        with self._lock:
            if ds_id in self._by_id:
                return True
        return ds_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def list(self) -> List[dict]:
        """JSON-safe summaries, in registration order (store-wide: a
        shared durable store lists every process's registrations)."""
        return [rec.describe() for rec in self._store.list()]

    def find_fingerprint(self, fingerprint: str) -> Optional[Dataset]:
        with self._lock:
            for ds in self._by_id.values():
                if ds.fingerprint == fingerprint:
                    return ds
        record = self._store.find_fingerprint(fingerprint)
        if record is None:
            return None
        try:
            return self.get(record.id)
        except UnknownDatasetError:
            return None
