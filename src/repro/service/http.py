"""Stdlib-only HTTP/JSON API over the job manager.

No framework, no new runtime dependency: a
:class:`http.server.ThreadingHTTPServer` whose handler parses JSON
bodies and dispatches on ``(method, path)``.  The API is versioned —
every route lives under ``/v1``:

========  ==============================  ========================================
method    path                            meaning
========  ==============================  ========================================
POST      ``/v1/datasets``                register a workload or uploaded points
GET       ``/v1/datasets``                list registered datasets
GET       ``/v1/datasets/<id>``           one dataset's summary
POST      ``/v1/datasets/<id>/append``    grow a dataset: mint a chained version
GET       ``/v1/datasets/<id>/chain``     the version chain, root first
POST      ``/v1/jobs``                    submit a job (``429`` when queue is full)
GET       ``/v1/jobs``                    list jobs (``?state=&limit=&cursor=``)
GET       ``/v1/jobs/<id>``               job status + result when done
DELETE    ``/v1/jobs/<id>``               cancel (queued: now; running: next round)
GET       ``/v1/jobs/<id>/trace``         the run's trace (``?format=chrome|jsonl``)
POST      ``/v1/analyses``                submit an analysis sweep (a grid of jobs)
GET       ``/v1/analyses``                list analyses (``?state=&limit=&cursor=``)
GET       ``/v1/analyses/<id>``           analysis status + cell job ids
GET       ``/v1/analyses/<id>/report``    the ranked report (``409`` until done)
GET       ``/v1/healthz``                 liveness + version + role
GET       ``/v1/stats``                   queue depth, cache ratio, per-algo counts
GET       ``/v1/metrics``                 Prometheus text (see docs/metrics.md)
========  ==============================  ========================================

The legacy unversioned paths (``/jobs``, …) still answer as deprecated
aliases of the same handlers; their first use of each path logs a
deprecation warning in the access log, and responses carry a
``Deprecation`` header.  ``GET /v1/jobs`` paginates: ``?limit=`` caps
the page and the response's ``next_cursor`` (the last job id of the
page) feeds the next request's ``?cursor=``; ordering is stable by
submit time.

Every 4xx/5xx body is the uniform envelope
``{"error": {"code", "message", "request_id"}}`` — ``code`` is
machine-readable (``invalid_request``, ``unknown_dataset``,
``unknown_job``, ``no_route``, ``conflict``, ``metric_mismatch``,
``not_appendable``, ``payload_too_large``, ``queue_full``,
``injected_fault``, ``unavailable``, ``internal``) and
is what :class:`~repro.service.client.ServiceClient` keys its retry
decisions off; ``request_id`` is the trace id echoed in
``X-Request-Id``.  Build and start one with :func:`serve`; tests pass
``port=0`` for an ephemeral port and drive the client against
``server.url``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro._version import __version__
from repro.faults import FaultPlan
from repro.obs.export import trace_payload
from repro.obs.logging import get_logger
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.obs.tracing import TraceContext, use_trace
from repro.service.datasets import (
    DatasetRegistry,
    MetricMismatchError,
    NotAppendableError,
    UnknownDatasetError,
)
from repro.service.jobs import JobManager, JobState, QueueFullError, RetryPolicy, UnknownJobError
from repro.service.spec import JobSpec
from repro.service.store import ANALYSIS_STATES, UnknownAnalysisError, open_stores
from repro.sweeps import AnalysisNotReady, SweepManager, SweepSpec

#: request body cap (64 MiB ≈ 4M points × 2 dims as JSON) — a service
#: guard, not a scaling claim; bulk ingestion is a later PR's shard API
MAX_BODY_BYTES = 64 * 1024 * 1024

#: the current (and only) API version segment
API_VERSION = "v1"

#: page-size ceiling for ``GET /v1/jobs``
MAX_PAGE_LIMIT = 1000

#: default machine-readable error code per status, for errors raised
#: without an explicit code
_STATUS_CODES = {
    400: "invalid_request",
    404: "not_found",
    409: "conflict",
    413: "payload_too_large",
    429: "queue_full",
    500: "internal",
    503: "unavailable",
}

_log = get_logger("repro.service.http")


class ApiError(Exception):
    """HTTP-visible failure: ``(status, message, code)``.

    ``code`` is the machine-readable identifier carried in the error
    envelope (defaulted from the status when not given) — clients
    branch on it, never on the human-facing message text.
    """

    def __init__(self, status: int, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code if code is not None else _STATUS_CODES.get(status, "error")


class ClusteringServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the service state.

    When a fault plan with an active service layer is installed, the
    server injects synthetic ``429``/``503`` responses (with
    ``Retry-After``) and dropped connections, deterministically per
    request number — ``/healthz`` is exempt so liveness probes stay
    honest.  Injections are counted for ``/stats`` and the
    ``degraded`` health status.
    """

    daemon_threads = True

    def __init__(self, address, handler, manager: JobManager, faults=None,
                 sweeps: Optional[SweepManager] = None) -> None:
        super().__init__(address, handler)
        self.manager = manager
        self.sweeps = sweeps if sweeps is not None else SweepManager(manager)
        #: wall stamp for display; interval math (uptime, health
        #: windows) uses the monotonic twin below
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self.faults: Optional[FaultPlan] = FaultPlan.from_spec(faults)
        self._request_counter = itertools.count()
        self._fault_lock = threading.Lock()
        self.faults_injected = 0
        self.last_fault_at: Optional[float] = None
        self._last_fault_mono: Optional[float] = None
        #: legacy (unversioned) paths already warned about — one
        #: deprecation line per path, not one per request
        self._legacy_warned: set = set()
        self._legacy_lock = threading.Lock()

    def warn_legacy_once(self, method: str, path: str) -> bool:
        """True exactly once per ``(method, path)`` legacy access."""
        key = (method, path)
        with self._legacy_lock:
            if key in self._legacy_warned:
                return False
            self._legacy_warned.add(key)
            return True

    def next_request_no(self) -> int:
        return next(self._request_counter)

    def uptime_s(self) -> float:
        """Seconds since construction, on the monotonic clock — a wall
        reset cannot make uptime jump or go negative."""
        return time.monotonic() - self._started_mono

    def record_injection(self) -> None:
        with self._fault_lock:
            self.faults_injected += 1
            self.last_fault_at = time.time()
            self._last_fault_mono = time.monotonic()

    def recent_fault_activity(self, window_s: float = 60.0) -> bool:
        with self._fault_lock:
            last = self._last_fault_mono
        return last is not None and (time.monotonic() - last) <= window_s

    def sync_metrics(self) -> MetricsRegistry:
        """Mirror manager + HTTP-layer tallies into the metrics registry
        (called right before every scrape; see
        :meth:`~repro.service.jobs.JobManager.sync_metrics`)."""
        registry = self.manager.sync_metrics()
        self.sweeps.sync_metrics()
        registry.counter(
            "repro_service_faults_injected_total",
            "synthetic HTTP faults injected by the active plan",
        ).set_total(self.faults_injected)
        return registry

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_service(self, wait: bool = True) -> None:
        """Stop accepting requests, then stop the worker pool."""
        self.shutdown()
        self.server_close()
        self.sweeps.stop(wait=wait)
        self.manager.stop(wait=wait)


class _Handler(BaseHTTPRequestHandler):
    server: ClusteringServiceServer
    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    #: this request's trace context: the parsed ``traceparent`` child,
    #: or a freshly minted root (set at the top of ``_dispatch``)
    trace_ctx: Optional[TraceContext] = None
    #: False when this request came in on a legacy unversioned path
    api_versioned: bool = True

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the structured access log is written by _dispatch

    def _trace_headers(self) -> None:
        """Echo the request's identity on every response: the trace id
        doubles as the server-assigned request id, so a client error
        message is directly greppable in the server's log."""
        ctx = self.trace_ctx
        if ctx is not None:
            self.send_header("X-Request-Id", ctx.trace_id)
            self.send_header("traceparent", ctx.to_traceparent())
        if not self.api_versioned:
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f'</{API_VERSION}{urlparse(self.path).path}>; rel="successor-version"'
            )

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._trace_headers()
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _error_envelope(self, status: int, message: str, code: Optional[str]) -> dict:
        """The uniform error body every 4xx/5xx carries."""
        return {
            "error": {
                "code": code if code is not None else _STATUS_CODES.get(status, "error"),
                "message": message,
                "request_id": (
                    self.trace_ctx.trace_id if self.trace_ctx is not None else None
                ),
            }
        }

    def _send_error(self, status: int, message: str, code: Optional[str] = None) -> None:
        self._send_json(status, self._error_envelope(status, message, code))

    def _send_text(self, status: int, content_type: str, text: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self._trace_headers()
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(400, "a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ApiError(400, "the JSON body must be an object")
        return payload

    def _route(self) -> Tuple[str, list, dict]:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        return parsed.path, parts, query

    def _inject_fault(self, parts: list) -> bool:
        """Consult the service fault plan; returns True when this
        request was consumed by an injected fault."""
        plan = self.server.faults
        # /healthz and /metrics are exempt: liveness probes and scrapes
        # must stay honest even mid-storm
        if plan is None or not plan.service_active or parts in (["healthz"], ["metrics"]):
            return False
        fault = plan.service_fault(self.server.next_request_no())
        if fault is None:
            return False
        kind, status = fault
        self.server.record_injection()
        if kind == "drop":
            # vanish mid-flight: close without writing a byte, like a
            # crashed proxy — the client sees a torn connection
            self.close_connection = True
            return True
        payload = self._error_envelope(
            status, f"injected fault: synthetic {status}", "injected_fault"
        )
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Retry-After", f"{plan.retry_after_s:g}")
        self.send_header("Content-Length", str(len(body)))
        self._trace_headers()
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        return True

    def _dispatch(self, method: str) -> None:
        # parse the W3C traceparent (if any) and mint this request's
        # context: a child of the caller's span, or a fresh root —
        # either way every response carries X-Request-Id/traceparent
        incoming = TraceContext.from_traceparent(self.headers.get("traceparent"))
        self.trace_ctx = (
            incoming.child("http") if incoming is not None
            else TraceContext.generate()
        )
        self._status: Optional[int] = None
        self.api_versioned = True
        t0 = time.monotonic()
        try:
            with use_trace(self.trace_ctx):
                self._dispatch_traced(method)
        finally:
            extra = {"method": method, "path": self.path,
                     "status": self._status,
                     "duration_ms": round((time.monotonic() - t0) * 1e3, 3),
                     "trace_id": self.trace_ctx.trace_id,
                     "span_id": self.trace_ctx.span_id}
            if not self.api_versioned:
                extra["deprecated"] = True
            _log.info("http request", extra=extra)

    def _dispatch_traced(self, method: str) -> None:
        try:
            raw_path, parts, query = self._route()
            if parts and parts[0] == API_VERSION:
                parts = parts[1:]
            elif parts:
                # legacy unversioned alias: same handlers, but flagged —
                # the response gets a Deprecation header and the first
                # access of each path logs a warning in the access log
                self.api_versioned = False
                if self.server.warn_legacy_once(method, raw_path):
                    _log.warning(
                        "deprecated unversioned path; use the /v1 prefix",
                        extra={"method": method, "path": raw_path,
                               "successor": f"/{API_VERSION}{raw_path}"},
                    )
            if self._inject_fault(parts):
                return
            handler = self._resolve(method, parts)
            handler(parts, query)
        except ApiError as exc:
            self._send_error(exc.status, exc.message, exc.code)
        except UnknownDatasetError as exc:
            self._send_error(404, f"unknown dataset: {exc.args[0]}", "unknown_dataset")
        except MetricMismatchError as exc:
            self._send_error(409, str(exc), "metric_mismatch")
        except NotAppendableError as exc:
            self._send_error(409, str(exc), "not_appendable")
        except UnknownJobError as exc:
            self._send_error(404, f"unknown job: {exc.args[0]}", "unknown_job")
        except UnknownAnalysisError as exc:
            self._send_error(
                404, f"unknown analysis: {exc.args[0]}", "unknown_analysis"
            )
        except AnalysisNotReady as exc:
            self._send_error(409, str(exc), "conflict")
        except QueueFullError as exc:
            self._send_error(429, str(exc), "queue_full")
        except ValueError as exc:
            self._send_error(400, str(exc), "invalid_request")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_error(500, f"internal error: {exc!r}", "internal")

    def _resolve(self, method: str, parts: list):
        if method == "GET":
            if parts == ["healthz"]:
                return self._get_healthz
            if parts == ["stats"]:
                return self._get_stats
            if parts == ["metrics"]:
                return self._get_metrics
            if parts == ["datasets"]:
                return self._get_datasets
            if len(parts) == 2 and parts[0] == "datasets":
                return self._get_dataset
            if len(parts) == 3 and parts[0] == "datasets" and parts[2] == "chain":
                return self._get_dataset_chain
            if parts == ["jobs"]:
                return self._get_jobs
            if len(parts) == 2 and parts[0] == "jobs":
                return self._get_job
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                return self._get_trace
            if parts == ["analyses"]:
                return self._get_analyses
            if len(parts) == 2 and parts[0] == "analyses":
                return self._get_analysis
            if len(parts) == 3 and parts[0] == "analyses" and parts[2] == "report":
                return self._get_analysis_report
        elif method == "POST":
            if parts == ["datasets"]:
                return self._post_datasets
            if len(parts) == 3 and parts[0] == "datasets" and parts[2] == "append":
                return self._post_dataset_append
            if parts == ["jobs"]:
                return self._post_jobs
            if parts == ["analyses"]:
                return self._post_analyses
        elif method == "DELETE":
            if len(parts) == 2 and parts[0] == "jobs":
                return self._delete_job
        raise ApiError(404, f"no route for {method} /{'/'.join(parts)}", "no_route")

    # -- HTTP verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- routes -------------------------------------------------------------

    def _get_healthz(self, parts, query) -> None:
        manager = self.server.manager
        mstats = manager.stats()
        degraded_because = []
        if manager.recent_retry_activity():
            degraded_because.append("job retries in the last 60s")
        if manager.recent_orphan_activity():
            degraded_because.append("orphaned jobs recovered in the last 60s")
        if self.server.recent_fault_activity():
            degraded_because.append("injected service faults in the last 60s")
        stuck = mstats.get("stuck_workers", [])
        if stuck:
            degraded_because.append(f"stuck worker(s): {', '.join(stuck)}")
        remote = manager.remote_status()
        pool = (remote or {}).get("pool")
        if pool is not None:
            if pool.get("fallback_reason"):
                degraded_because.append(
                    f"remote pool degraded: {pool['fallback_reason']}"
                )
            elif pool.get("alive", 0) < pool.get("configured", 0):
                dead = {
                    label: w.get("reason")
                    for label, w in pool.get("workers", {}).items()
                    if not w.get("alive")
                }
                degraded_because.append(
                    "remote workers lost: "
                    + ", ".join(f"{lbl} ({why})" for lbl, why in dead.items())
                )
        payload = {
            "status": "degraded" if degraded_because else "ok",
            "version": __version__,
            "api_version": API_VERSION,
            "uptime_s": self.server.uptime_s(),
            "role": manager.role,
            "workers": manager.workers,
            "backend": manager.backend,
            "store": manager.stores.backend,
            "queue_limit": manager.queue_limit,
            "faults_injected": self.server.faults_injected,
            "retries": mstats["retry"]["retries_total"],
            "orphans_recovered": mstats["orphans"]["orphaned_total"],
        }
        if remote is not None:
            payload["remote"] = remote
        if degraded_because:
            payload["degraded_because"] = degraded_because
        self._send_json(200, payload)

    def _get_stats(self, parts, query) -> None:
        server = self.server
        stats = server.manager.stats()
        stats["datasets"] = len(server.manager.datasets)
        stats["analyses"] = server.sweeps.stats()
        stats["uptime_s"] = server.uptime_s()
        stats["started_at"] = server.started_at
        stats["service_faults"] = {
            "injected_total": server.faults_injected,
            "last_fault_at": server.last_fault_at,
            "plan": server.faults.describe() if server.faults is not None else None,
        }
        stats["metrics"] = server.sync_metrics().snapshot()
        self._send_json(200, stats)

    def _get_metrics(self, parts, query) -> None:
        """Prometheus text exposition of the manager's metrics registry."""
        registry = self.server.sync_metrics()
        self._send_text(200, PROMETHEUS_CONTENT_TYPE, registry.render_prometheus())

    def _post_datasets(self, parts, query) -> None:
        body = self._read_json()
        registry = self.server.manager.datasets
        if "workload" in body:
            extra = set(body) - {"workload", "n", "seed"}
            if extra:
                raise ApiError(400, f"unknown dataset field(s): {sorted(extra)}")
            if "n" not in body:
                raise ApiError(400, "workload datasets need 'n'")
            ds = registry.register_workload(
                body["workload"], body["n"], seed=body.get("seed", 0)
            )
        elif "points" in body:
            extra = set(body) - {"points", "metric"}
            if extra:
                raise ApiError(400, f"unknown dataset field(s): {sorted(extra)}")
            ds = registry.register_points(
                body["points"], metric=body.get("metric", "euclidean")
            )
        else:
            raise ApiError(
                400,
                "a dataset body needs either 'workload' (+ 'n', optional "
                "'seed') or 'points' (+ optional 'metric')",
            )
        self._send_json(201, ds.describe())

    def _post_dataset_append(self, parts, query) -> None:
        """Grow dataset ``parts[1]`` with a batch of points → a new
        chained version (201).  Appending the same bytes twice returns
        the same child — content addressing makes the route idempotent."""
        body = self._read_json()
        extra = set(body) - {"points", "metric"}
        if extra:
            raise ApiError(400, f"unknown append field(s): {sorted(extra)}")
        if "points" not in body:
            raise ApiError(400, "an append body needs 'points' (+ optional 'metric')")
        registry = self.server.manager.datasets
        ds = registry.append(parts[1], body["points"], metric=body.get("metric"))
        self.server.manager.metrics.counter(
            "repro_datasets_appended_total", "dataset append versions minted over HTTP"
        ).inc()
        self._send_json(201, ds.describe())

    def _get_dataset_chain(self, parts, query) -> None:
        chain = self.server.manager.datasets.chain(parts[1])
        self._send_json(200, {"chain": [ds.describe() for ds in chain]})

    def _get_datasets(self, parts, query) -> None:
        self._send_json(200, {"datasets": self.server.manager.datasets.list()})

    def _get_dataset(self, parts, query) -> None:
        self._send_json(200, self.server.manager.datasets.get(parts[1]).describe())

    def _post_jobs(self, parts, query) -> None:
        body = self._read_json()
        spec = JobSpec.from_dict(body)
        job = self.server.manager.submit(spec, trace=self.trace_ctx)
        self._send_json(202, job.describe(include_result=job.cached))

    def _page_params(self, query, id_prefix: str) -> Tuple[Optional[int], Optional[str]]:
        """Validate the shared ``?limit=&cursor=`` pagination params."""
        limit: Optional[int] = None
        if "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError:
                raise ApiError(400, f"limit must be an integer, got {query['limit']!r}") from None
            if not 1 <= limit <= MAX_PAGE_LIMIT:
                raise ApiError(400, f"limit must be in [1, {MAX_PAGE_LIMIT}], got {limit}")
        cursor = query.get("cursor")
        if cursor is not None and not (
            cursor.startswith(id_prefix) and cursor.rsplit("-", 1)[1].isdigit()
        ):
            raise ApiError(400, f"malformed cursor {cursor!r}; pass the last page's next_cursor")
        return limit, cursor

    def _get_jobs(self, parts, query) -> None:
        state: Optional[JobState] = None
        if "state" in query:
            try:
                state = JobState(query["state"])
            except ValueError:
                raise ApiError(
                    400,
                    f"unknown state {query['state']!r}; expected one of "
                    f"{', '.join(s.value for s in JobState)}",
                ) from None
        limit, cursor = self._page_params(query, "job-")
        records, next_cursor = self.server.manager.list_records(
            state, limit=limit, cursor=cursor
        )
        payload = {"jobs": [rec.describe(include_result=False) for rec in records]}
        if next_cursor is not None:
            payload["next_cursor"] = next_cursor
        self._send_json(200, payload)

    def _get_job(self, parts, query) -> None:
        job = self.server.manager.get(parts[1])
        self._send_json(200, job.describe())

    def _delete_job(self, parts, query) -> None:
        job = self.server.manager.get(parts[1])
        if job.state.terminal and not job.cancel_event.is_set():
            raise ApiError(409, f"job {job.id} already {job.state.value}")
        job = self.server.manager.cancel(job.id)
        self._send_json(200, job.describe(include_result=False))

    def _get_trace(self, parts, query) -> None:
        job = self.server.manager.get(parts[1])
        if job.run_log is None:
            raise ApiError(
                409,
                f"job {job.id} has no trace (state: {job.state.value}); "
                "traces appear when a job completes",
            )
        fmt = query.get("format", "chrome")
        annotations = [
            {"name": "job",
             "args": {"job_id": job.id,
                      "trace_id": job.trace.trace_id if job.trace else None,
                      "state": job.state.value}},
        ]
        if job.cached:
            # the served log is the *producing* run's; mark the hit so
            # the trace says why its ids differ from this job's
            annotations.append(
                {"name": "cache_hit",
                 "args": {"job_id": job.id,
                          "trace_id": job.trace.trace_id if job.trace else None}}
            )
        try:
            content_type, body = trace_payload(job.run_log, fmt,
                                               annotations=annotations)
        except ValueError as exc:
            raise ApiError(400, str(exc)) from None
        self._send_text(200, content_type, body)

    def _post_analyses(self, parts, query) -> None:
        body = self._read_json()
        spec = SweepSpec.from_dict(body)
        record = self.server.sweeps.submit(spec, trace=self.trace_ctx)
        self._send_json(202, record.describe())

    def _get_analyses(self, parts, query) -> None:
        state = query.get("state")
        if state is not None and state not in ANALYSIS_STATES:
            raise ApiError(
                400,
                f"unknown state {state!r}; expected one of "
                f"{', '.join(ANALYSIS_STATES)}",
            )
        limit, cursor = self._page_params(query, "an-")
        records, next_cursor = self.server.sweeps.list_records(
            state, limit=limit, cursor=cursor
        )
        payload = {"analyses": [rec.describe() for rec in records]}
        if next_cursor is not None:
            payload["next_cursor"] = next_cursor
        self._send_json(200, payload)

    def _get_analysis(self, parts, query) -> None:
        self._send_json(200, self.server.sweeps.get(parts[1]).describe())

    def _get_analysis_report(self, parts, query) -> None:
        self._send_json(200, self.server.sweeps.report(parts[1]))


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    workers: int = 2,
    backend: str = "serial",
    remote_workers=None,
    queue_limit: int = 64,
    default_timeout_s: Optional[float] = None,
    cache_entries: int = 1024,
    max_history: int = 1024,
    max_retries: int = 0,
    state_dir: Optional[str] = None,
    role: str = "all",
    lease_s: float = 15.0,
    faults=None,
    manager: Optional[JobManager] = None,
    start: bool = True,
) -> ClusteringServiceServer:
    """Build (and by default start) the clustering job service.

    Returns the server; the caller owns the accept loop::

        server = serve(port=0)           # ephemeral port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown_service()

    With no ``state_dir`` the service is a self-contained process on
    volatile in-memory stores.  With one, all state (jobs, queue,
    datasets, results) lives in SQLite + blob files under that
    directory, restarts resume where they stopped, and any number of
    processes sharing the directory form one service — typically one
    ``role='frontend'`` HTTP process plus N ``repro serve --role
    worker`` processes (see ``docs/persistence.md``).  ``lease_s``
    bounds how long a dead worker's running job stays unnoticed.

    Pass a prebuilt ``manager`` to share registries across servers, or
    ``start=False`` to wire the worker pool up manually.  One ``faults``
    plan drives every layer: its service rates are injected by the HTTP
    front-end, its executor/machine rates ride into each solver run via
    the manager.  ``max_retries`` sets the default
    :class:`~repro.service.jobs.RetryPolicy` budget for crashed jobs.
    """
    plan = FaultPlan.from_spec(faults)
    if manager is None:
        stores = open_stores(
            state_dir, queue_limit=queue_limit, cache_entries=cache_entries
        )
        manager = JobManager(
            DatasetRegistry(stores.datasets),
            stores=stores,
            role=role,
            lease_s=lease_s,
            workers=workers,
            backend=backend,
            remote_workers=remote_workers,
            queue_limit=queue_limit,
            default_timeout_s=default_timeout_s,
            max_history=max_history,
            retry_policy=RetryPolicy(max_retries=max_retries),
            faults=plan,
        )
    server = ClusteringServiceServer((host, port), _Handler, manager, faults=plan)
    if start:
        manager.start()
        server.sweeps.start()
    return server


def serve_forever(server: ClusteringServiceServer) -> None:
    """Run the accept loop until interrupted; then shut down cleanly."""
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown_service()


def run_in_thread(server: ClusteringServiceServer) -> threading.Thread:
    """Start the accept loop on a daemon thread (tests, notebooks)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return thread
