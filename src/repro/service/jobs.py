"""Async job manager: durable job table + shared work queue + worker pool.

The :class:`JobManager` is the service's scheduling core and is fully
usable without HTTP (the API layer in :mod:`repro.service.http` is a
thin JSON shim over it):

* **admission** — :meth:`submit` validates the spec against the dataset
  registry, consults the result cache (a hit completes the job
  instantly, without touching the queue), and otherwise persists a
  record in the :class:`~repro.service.store.JobStore` and pushes its id
  onto the shared :class:`~repro.service.store.WorkQueue`.  When the
  bounded queue is full it raises :class:`QueueFullError` — callers
  apply back-pressure (HTTP maps it to ``429``) instead of buffering
  unboundedly;
* **execution** — worker threads pop job ids FIFO, *claim* them with an
  atomic ``queued → running`` compare-and-set in the store (two workers
  racing for one id see exactly one winner — the CAS is what makes N
  worker processes on one state directory safe), and run them through
  :func:`repro.service.runner.execute_job`;
* **lifecycle** — ``queued → running → done | failed | cancelled``.
  Cancelling a queued job marks it immediately; cancelling a running
  job sets a ``cancel_requested`` flag in the store — the owning
  worker's heartbeat picks it up (even from another process) and its
  round-barrier observer unwinds the run.  Timeouts travel the same
  path and land in ``failed``;
* **retry** — a :class:`RetryPolicy` (manager default, overridable per
  job via ``spec.max_retries``) re-enqueues crashed jobs with
  exponential backoff and deterministic jitter.  Cancellations and
  timeouts are *not* retried — they are decisions, not faults;
* **orphan recovery** — every running job carries a worker lease,
  renewed by a heartbeat thread.  A worker that dies (SIGKILL, power
  loss) stops renewing; the sweeper detects the expired lease and
  re-enqueues the job through the same requeue path the retry machinery
  uses, recording the recovery on the job's ``attempts[]``, in the
  orphan counters (``/stats``, ``/metrics``) and as service-layer
  :class:`~repro.obs.events.FaultEvent`\\ s.  Because solver runs are
  deterministic, the re-run's result is bit-identical to what the lost
  worker would have produced.

State lives behind the pluggable stores from
:mod:`repro.service.store` — in-memory by default (exactly the old
single-process behaviour), SQLite/file-backed when the service is
started on a ``--state-dir``.  A manager can then run as one of three
**roles**: ``all`` (accept + execute, the default), ``frontend``
(accept and enqueue only, no worker threads), or ``worker`` (drain the
shared queue, no HTTP) — N workers and M frontends sharing one state
directory form one horizontal service.
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.faults import FaultPlan
from repro.obs.events import FaultEvent
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import RunLog
from repro.obs.tracing import TraceContext, use_trace
from repro.service.cache import ResultCache
from repro.service.datasets import DatasetRegistry
from repro.service.runner import JobCancelled, JobTimeout, execute_job
from repro.service.spec import JobSpec
from repro.service.store import (
    JobRecord,
    QueueFullError,
    ServiceStores,
    UnknownJobError,
    ensure_queued_jobs_enqueued,
)

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "QueueFullError",
    "RetryPolicy",
    "UnknownJobError",
    "ROLES",
]

_log = get_logger("repro.service.jobs")

#: manager roles: accept+execute / accept only / execute only
ROLES = ("all", "frontend", "worker")


@dataclass(frozen=True)
class RetryPolicy:
    """How the manager retries crashed jobs.

    The default budget is 0 — retry is opt-in, because a
    deterministically-failing job would just fail slower.  Backoff is
    exponential with a small *deterministic* jitter (hashed from the
    job id and attempt number, so reruns of a chaos suite sleep the
    same amounts).
    """

    #: re-runs after the first failed attempt (0 = fail immediately)
    max_retries: int = 0
    #: initial backoff before the first retry, seconds
    backoff_s: float = 0.25
    #: multiplier applied per subsequent retry
    factor: float = 2.0
    #: backoff ceiling, seconds
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), seconds.

        Jitter is ±25%, derived from ``(key, attempt)`` with BLAKE2b —
        a pure function, so a replayed run backs off identically.
        """
        base = min(self.backoff_s * self.factor ** (attempt - 1), self.max_backoff_s)
        digest = hashlib.blake2b(
            repr((key, attempt)).encode(), digest_size=8
        ).digest()
        jitter = 0.75 + 0.5 * (int.from_bytes(digest, "big") / 2**64)
        return min(base * jitter, self.max_backoff_s)

    def to_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "factor": self.factor,
            "max_backoff_s": self.max_backoff_s,
        }


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted unit of work — the live, per-process view.

    The durable twin is :class:`~repro.service.store.JobRecord`; a Job
    adds the process-local machinery (cancel/done events, the parsed
    spec and trace context) and tracks which store ``version`` it
    mirrors, so reads refresh it from the store only when the record
    actually moved.
    """

    id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    #: when the job (re-)entered the queue — startup recovery uses it
    #: to spot records stranded outside the work queue
    queued_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: JSON-safe result payload (set when state == DONE)
    result: Optional[dict] = None
    #: error message / traceback (set when state == FAILED)
    error: Optional[str] = None
    #: True when the result came from the cache, not a solver run
    cached: bool = False
    #: the recorded run log (also set for cache hits: the producing run's)
    run_log: Optional[RunLog] = None
    #: the request's distributed-trace context (assigned at submit; the
    #: HTTP layer passes the incoming request's, so one trace id links
    #: the client call, the job, and the solver run)
    trace: Optional[TraceContext] = None
    #: 0-based index of the current/last execution attempt
    attempt: int = 0
    #: one record per recovered attempt (crash retries and orphan
    #: requeues alike): ``{"attempt", "error", "failed_at", "backoff_s"}``
    attempts: List[dict] = field(default_factory=list)
    #: store version this view reflects (see JobRecord.version)
    version: int = 0
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done_event: threading.Event = field(default_factory=threading.Event)

    def describe(self, include_result: bool = True) -> dict:
        """JSON-safe status record for the API."""
        out = {
            "id": self.id,
            "state": self.state.value,
            "spec": self.spec.to_dict(),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "attempt": self.attempt,
            "trace_id": self.trace.trace_id if self.trace is not None else None,
        }
        if self.attempts:
            out["attempts"] = [dict(a) for a in self.attempts]
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


def default_worker_id() -> str:
    """``host:pid`` — unique per worker process on a shared state dir."""
    return f"{socket.gethostname()}:{os.getpid()}"


class JobManager:
    """Store-backed job table + shared work queue + worker pool.

    Parameters
    ----------
    datasets:
        The registry job specs resolve their ``dataset`` ids against.
    cache:
        Result cache override.  Defaults to the store bundle's result
        store (durable bundles share one cache across processes).
    stores:
        The :class:`~repro.service.store.ServiceStores` bundle to run
        on.  Omitted → a fresh in-memory bundle (single-process
        behaviour).  Pass the same durable bundle (or one opened on the
        same state dir) to several managers/processes to scale out.
    role:
        ``all`` (default) accepts and executes; ``frontend`` accepts
        and enqueues but runs no workers; ``worker`` executes but is
        not meant to take submissions.  Every role runs the orphan
        sweeper — any surviving process can recover a dead worker's
        jobs.
    worker_id:
        Lease-owner name for this manager's workers (default
        ``host:pid``).
    lease_s:
        Worker lease duration.  Heartbeats renew at ``lease_s / 3``; a
        running job whose lease is this stale is declared orphaned.
    orphan_requeue_budget:
        How many times an orphaned job may be re-enqueued before it is
        failed for good (independent of the crash-retry budget — losing
        a worker is not the job's fault).
    workers:
        Worker thread count (ignored for ``role='frontend'``).
    backend:
        Execution backend name handed to every solver run
        (``serial``/``thread``/``process``/``remote``); a job spec that
        pins ``backend=`` overrides it per job.
    remote_workers:
        Remote worker-agent addresses (``'host:port,host:port'`` or a
        list) handed to the ``remote`` backend; ignored by the local
        backends.  Defaults to the ``REPRO_REMOTE_WORKERS`` environment
        variable via :class:`~repro.mpc.remote.RemoteExecutor`.
    queue_limit:
        Maximum number of *queued* (not yet running) jobs; submissions
        beyond it raise :class:`QueueFullError`.  Ignored when
        ``stores`` is passed (the bundle's queue carries its own bound).
    default_timeout_s:
        Per-job wall-clock budget applied when the spec carries none.
    max_history:
        Maximum number of *terminal* jobs retained for ``GET /jobs``;
        beyond it the oldest terminal jobs (and their result payloads
        and run logs) are evicted.  Queued and running jobs never are.
    retry_policy:
        Default :class:`RetryPolicy` for crashed jobs; a job spec's
        ``max_retries`` overrides the budget (backoff shape stays the
        policy's).  Defaults to no retries.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or spec) applied to
        every solver run — the chaos path for the executor and machine
        layers.  Service-layer faults live in the HTTP front-end.
    stop_timeout_s:
        Per-thread join budget in :meth:`stop`; workers that miss it
        are reported as stuck instead of silently discarded.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` this manager
        feeds (a fresh one per manager when omitted, so two servers in
        one process never mix counters).  Solver-level metrics stream
        in live via a per-job observer; the manager's own tallies are
        mirrored in at every :meth:`sync_metrics` call — which the
        HTTP layer makes before serving ``GET /metrics`` or the
        ``metrics`` block of ``GET /stats``.
    """

    def __init__(
        self,
        datasets: DatasetRegistry,
        cache: Optional[ResultCache] = None,
        *,
        stores: Optional[ServiceStores] = None,
        role: str = "all",
        worker_id: Optional[str] = None,
        lease_s: float = 15.0,
        orphan_requeue_budget: int = 5,
        workers: int = 2,
        backend: str = "serial",
        remote_workers=None,
        queue_limit: int = 64,
        default_timeout_s: Optional[float] = None,
        max_history: int = 1024,
        retry_policy: Optional[RetryPolicy] = None,
        faults=None,
        stop_timeout_s: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if role not in ROLES:
            raise ValueError(f"unknown role {role!r}; expected one of {ROLES}")
        if role != "frontend" and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_history < 1:
            raise ValueError(f"max_history must be >= 1, got {max_history}")
        if stop_timeout_s <= 0:
            raise ValueError(f"stop_timeout_s must be > 0, got {stop_timeout_s}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        if orphan_requeue_budget < 0:
            raise ValueError(
                f"orphan_requeue_budget must be >= 0, got {orphan_requeue_budget}"
            )
        self.datasets = datasets
        self.role = role
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.lease_s = float(lease_s)
        self.orphan_requeue_budget = int(orphan_requeue_budget)
        if stores is None:
            from repro.service.store import (
                InMemoryAnalysisStore,
                InMemoryJobStore,
                InMemoryWorkQueue,
            )

            stores = ServiceStores(
                jobs=InMemoryJobStore(),
                work_queue=InMemoryWorkQueue(limit=queue_limit),
                datasets=datasets.store,
                results=cache if cache is not None else ResultCache(),
                analyses=InMemoryAnalysisStore(),
                backend="memory",
            )
        self.stores = stores
        self._store = stores.jobs
        self._wq = stores.work_queue
        self.cache = cache if cache is not None else stores.results
        self.backend = backend
        self.remote_workers = remote_workers
        #: last-seen remote pool shape + summed dispatch/recovery
        #: counters across this manager's remote-backend jobs (under
        #: ``_lock``); surfaced by /healthz and /v1/stats
        self._remote_pool: Optional[dict] = None
        self._remote_totals: Dict[str, int] = {}
        self.queue_limit = self._wq.limit
        self.workers = 0 if role == "frontend" else workers
        self.default_timeout_s = default_timeout_s
        self.max_history = max_history
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.faults = FaultPlan.from_spec(faults)
        self.stop_timeout_s = float(stop_timeout_s)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._job_latency = self.metrics.histogram(
            "repro_job_latency_seconds",
            "started-to-terminal wall-clock per executed (non-cached) job",
            labels=("algorithm",),
        )

        #: live per-process handles (the store holds the durable truth)
        self._jobs: Dict[str, Job] = {}
        #: jobs this manager currently holds a lease on
        self._leases: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._aux_threads: List[threading.Thread] = []
        self._stuck_threads: List[threading.Thread] = []
        self._retry_timers: List[threading.Timer] = []
        self._stop = threading.Event()
        self._resume = threading.Event()
        self._resume.set()
        self._started = False
        # counters (under _lock; per-manager admission/recovery tallies)
        self._submitted = 0
        self._rejected = 0
        self._by_algorithm: Dict[str, int] = {}
        self._retries = 0
        self._jobs_recovered = 0
        self._jobs_exhausted = 0
        self._orphaned = 0
        self._orphans_requeued = 0
        self._orphans_exhausted = 0
        #: recent service-layer fault events (worker_lost / orphan_requeue)
        self.fault_events: "deque[FaultEvent]" = deque(maxlen=256)
        #: wall stamps, for display in stats()
        self._last_retry_at: Optional[float] = None
        self._last_recovery_at: Optional[float] = None
        #: monotonic stamps, for interval math (immune to clock jumps)
        self._last_retry_mono: Optional[float] = None
        self._last_recovery_mono: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "JobManager":
        """Spawn the worker pool, heartbeat, and orphan sweeper
        (idempotent); returns ``self``.

        On a durable store this first runs a startup recovery pass:
        RUNNING jobs with expired leases (their worker died with the
        previous process) are re-enqueued, and queued records stranded
        outside the work queue are re-pushed — which is how a restart
        on the same state directory resumes exactly where it stopped.
        """
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        recovered = self.recover_now(startup=True)
        if recovered["orphaned"] or recovered["stranded_requeued"]:
            _log.info(
                "startup recovery",
                extra={"worker_id": self.worker_id, **recovered},
            )
        if self.role in ("all", "worker"):
            for i in range(self.workers):
                t = threading.Thread(
                    target=self._worker_loop, name=f"repro-job-worker-{i}", daemon=True
                )
                t.start()
                self._threads.append(t)
            hb = threading.Thread(
                target=self._heartbeat_loop, name="repro-job-heartbeat", daemon=True
            )
            hb.start()
            self._aux_threads.append(hb)
        sweeper = threading.Thread(
            target=self._sweep_loop, name="repro-orphan-sweeper", daemon=True
        )
        sweeper.start()
        self._aux_threads.append(sweeper)
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop the pool.  Queued jobs stay queued in the store (drained
        on restart); the running job, if any, finishes first.

        With ``wait=True``, each worker gets :attr:`stop_timeout_s` to
        join.  Workers that miss the deadline are *not* silently
        discarded: a :class:`RuntimeWarning` names them and they stay
        visible as ``stuck_workers`` in :meth:`stats` until they
        actually exit.  Pending retry timers are cancelled; their jobs
        stay ``queued`` in the store and re-enter via startup recovery.
        """
        self._stop.set()
        self._resume.set()
        with self._lock:
            timers, self._retry_timers = self._retry_timers, []
        for timer in timers:
            timer.cancel()
        stuck: List[threading.Thread] = []
        if wait:
            for t in self._threads:
                t.join(timeout=self.stop_timeout_s)
                if t.is_alive():
                    stuck.append(t)
            if stuck:
                warnings.warn(
                    f"JobManager.stop(): {len(stuck)} worker(s) still alive "
                    f"after {self.stop_timeout_s}s: "
                    f"{', '.join(t.name for t in stuck)} — the running job "
                    "is not round-barrier-interruptible; it will finish (or "
                    "leak) in the background",
                    RuntimeWarning,
                    stacklevel=2,
                )
            for t in self._aux_threads:
                t.join(timeout=self.stop_timeout_s)
        with self._lock:
            # forget clean exits; remember the stragglers for stats()
            self._stuck_threads = [
                t for t in self._stuck_threads + stuck if t.is_alive()
            ]
        self._threads = []
        self._aux_threads = []
        self._started = False

    def pause(self) -> None:
        """Stop popping new jobs (running jobs finish).  For drains,
        admission-control tests, and maintenance windows."""
        self._resume.clear()

    def resume(self) -> None:
        self._resume.set()

    # -- record <-> handle plumbing -----------------------------------------

    def _record_from_job(self, job: Job) -> JobRecord:
        return JobRecord(
            id=job.id,
            spec=job.spec.to_dict(),
            state=job.state.value,
            created_at=job.created_at,
            queued_at=job.queued_at or job.created_at,
            started_at=job.started_at,
            finished_at=job.finished_at,
            result=job.result,
            error=job.error,
            cached=job.cached,
            attempt=job.attempt,
            attempts=[dict(a) for a in job.attempts],
            trace_id=job.trace.trace_id if job.trace is not None else None,
            traceparent=job.trace.to_traceparent() if job.trace is not None else None,
            cancel_requested=job.cancel_event.is_set(),
            run_log=job.run_log,
            version=job.version,
        )

    def _job_from_record(self, rec: JobRecord) -> Job:
        job = Job(
            id=rec.id,
            spec=JobSpec.from_dict(rec.spec),
            state=JobState(rec.state),
            created_at=rec.created_at,
            queued_at=rec.queued_at,
            started_at=rec.started_at,
            finished_at=rec.finished_at,
            result=rec.result,
            error=rec.error,
            cached=rec.cached,
            run_log=rec.run_log,
            trace=TraceContext.from_traceparent(rec.traceparent),
            attempt=rec.attempt,
            attempts=[dict(a) for a in rec.attempts],
            version=rec.version,
        )
        if rec.cancel_requested:
            job.cancel_event.set()
        if job.state.terminal:
            job.done_event.set()
        return job

    def _apply_record_locked(self, job: Job, rec: JobRecord) -> None:
        """Refresh a live handle from a store snapshot (caller holds
        ``_lock``).  Versions make this monotone: a stale snapshot
        (raced by a concurrent writer) is simply ignored."""
        if rec.version <= job.version:
            if rec.cancel_requested:
                job.cancel_event.set()
            return
        job.state = JobState(rec.state)
        job.created_at = rec.created_at
        job.queued_at = rec.queued_at
        job.started_at = rec.started_at
        job.finished_at = rec.finished_at
        job.result = rec.result
        job.error = rec.error
        job.cached = rec.cached
        job.attempt = rec.attempt
        job.attempts = [dict(a) for a in rec.attempts]
        if rec.run_log is not None:
            job.run_log = rec.run_log
        job.version = rec.version
        if rec.cancel_requested:
            job.cancel_event.set()
        if job.state.terminal:
            job.done_event.set()

    def _adopt_record(self, rec: JobRecord) -> Job:
        """Get-or-create the live handle for a store record."""
        with self._lock:
            job = self._jobs.get(rec.id)
            if job is None:
                job = self._job_from_record(rec)
                self._jobs[rec.id] = job
            else:
                self._apply_record_locked(job, rec)
            return job

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec, trace: Optional[TraceContext] = None) -> Job:
        """Admit a job: cache hit → instantly ``done``; else persist and
        enqueue.

        ``trace`` is the submitting request's context (the HTTP layer
        passes the parsed/minted ``traceparent``); the job becomes a
        child of it, so the whole solver run shares the request's trace
        id.  A fresh root is minted when omitted.

        Raises :class:`UnknownDatasetError` for an unregistered dataset,
        :class:`ValueError` for invalid parameters, and
        :class:`QueueFullError` when the queue is at capacity.
        """
        dataset = self.datasets.get(spec.dataset)
        if spec.k > dataset.n:
            raise ValueError(
                f"k={spec.k} exceeds dataset size n={dataset.n} ({dataset.id})"
            )
        if spec.warm_start and dataset.parent is None:
            raise ValueError(
                f"warm_start requires an append-chained dataset version; "
                f"{dataset.id} (kind={dataset.kind!r}) has no parent"
            )
        if spec.timeout_s is None and self.default_timeout_s is not None:
            spec.timeout_s = float(self.default_timeout_s)
        base = trace if trace is not None else TraceContext.generate()

        now = time.time()
        job = Job(
            id=self._store.next_job_id(),
            spec=spec,
            trace=base.child("job"),
            created_at=now,
            queued_at=now,
        )
        with self._lock:
            self._submitted += 1
            self._by_algorithm[spec.algorithm] = (
                self._by_algorithm.get(spec.algorithm, 0) + 1
            )

        hit = self.cache.get(spec.cache_key(dataset.fingerprint))
        if hit is not None:
            payload, run_log = hit
            job.result, job.run_log = payload, run_log
            job.cached = True
            job.state = JobState.DONE
            job.finished_at = time.time()
            created = self._store.create(self._record_from_job(job))
            with self._lock:
                job.version = created.version
                self._jobs[job.id] = job
                self._prune_history_locked()
            job.done_event.set()
            _log.info(
                "job served from cache",
                extra={"job_id": job.id, "trace_id": job.trace.trace_id,
                       "algorithm": spec.algorithm},
            )
            return job

        created = self._store.create(self._record_from_job(job))
        with self._lock:
            job.version = created.version
            self._jobs[job.id] = job
        try:
            self._wq.push(job.id)
        except QueueFullError:
            with self._lock:
                self._rejected += 1
                self._jobs.pop(job.id, None)
            self._store.delete(job.id)
            _log.warning(
                "job rejected: queue full",
                extra={"trace_id": base.trace_id, "algorithm": spec.algorithm,
                       "queue_limit": self.queue_limit},
            )
            raise
        _log.info(
            "job queued",
            extra={"job_id": job.id, "trace_id": job.trace.trace_id,
                   "algorithm": spec.algorithm, "dataset": spec.dataset},
        )
        return job

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The live handle for ``job_id``, refreshed from the store.

        Jobs submitted by *another* process on a shared store get a
        local handle built from their record on first access.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None and job.state.terminal:
            return job  # terminal records never move again
        try:
            rec = self._store.get(job_id)
        except UnknownJobError:
            if job is not None:
                with self._lock:
                    self._jobs.pop(job_id, None)
            raise
        return self._adopt_record(rec)

    def list_jobs(self, state: Optional[JobState] = None) -> List[Job]:
        records, _ = self._store.list(
            state=state.value if state is not None else None
        )
        return [self._adopt_record(rec) for rec in records]

    def list_records(
        self,
        state: Optional[JobState] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]:
        """Paginated store records for the HTTP list endpoint (stable
        submit-time ordering; ``cursor`` is the last-seen job id)."""
        return self._store.list(
            state=state.value if state is not None else None,
            limit=limit,
            cursor=cursor,
        )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state.

        Works across processes: when another worker on the shared store
        finishes the job, the local poll observes the terminal record.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        job = self.get(job_id)
        while True:
            if job.state.terminal:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.state.value} after {timeout}s"
                )
            job.done_event.wait(0.05)
            job = self.get(job_id)

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; returns the job.

        Queued jobs flip to ``cancelled`` right away (claims check the
        flag atomically, so a worker can never start one); running jobs
        are unwound at their next round barrier — the owning worker
        learns about the request via its local event (same process) or
        its next heartbeat (remote worker).  Terminal jobs are returned
        unchanged.
        """
        job = self.get(job_id)
        if job.state.terminal:
            return job
        rec = self._store.set_cancel_requested(job_id)
        job.cancel_event.set()
        if rec.state == JobState.QUEUED.value:
            # with cancel_requested set no claim can succeed, so this
            # write is race-free: the job goes terminal here
            rec.state = JobState.CANCELLED.value
            rec.finished_at = time.time()
            rec = self._store.save(rec)
            with self._lock:
                self._apply_record_locked(job, rec)
                self._prune_history_locked()
        else:
            with self._lock:
                self._apply_record_locked(job, rec)
        return job

    def stats(self) -> dict:
        """Operational counters for ``GET /stats``.

        The ``*_total`` keys share names with their ``repro_*``
        Prometheus counterparts on ``GET /metrics`` (one naming scheme,
        two surfaces — see ``docs/metrics.md``), and
        :meth:`sync_metrics` mirrors exactly these values into the
        registry, so the two endpoints can never disagree.

        Queue depth and per-state counts come from the shared store, so
        on a durable bundle they are fleet-wide; the admission and
        recovery tallies are this manager's own.
        """
        by_state: Dict[str, int] = {s.value: 0 for s in JobState}
        by_state.update(self._store.count_by_state())
        queue_depth = self._wq.depth()
        remote = self.remote_status()
        with self._lock:
            self._stuck_threads = [t for t in self._stuck_threads if t.is_alive()]
            out = {
                "queue_depth": queue_depth,
                "queue_limit": self.queue_limit,
                "max_history": self.max_history,
                "workers": self.workers,
                "backend": self.backend,
                "role": self.role,
                "worker_id": self.worker_id,
                "paused": not self._resume.is_set(),
                "store": {
                    "backend": self.stores.backend,
                    "state_dir": self.stores.state_dir,
                },
                "jobs_submitted_total": self._submitted,
                "jobs_rejected_total": self._rejected,
                "jobs_by_state": by_state,
                "jobs_by_algorithm": dict(self._by_algorithm),
                "cache": self.cache.stats(),
                "stuck_workers": [t.name for t in self._stuck_threads],
                "retry": {
                    "policy": self.retry_policy.to_dict(),
                    "retries_total": self._retries,
                    "jobs_recovered_total": self._jobs_recovered,
                    "jobs_exhausted_total": self._jobs_exhausted,
                    "last_retry_at": self._last_retry_at,
                },
                "orphans": {
                    "lease_s": self.lease_s,
                    "requeue_budget": self.orphan_requeue_budget,
                    "orphaned_total": self._orphaned,
                    "requeued_total": self._orphans_requeued,
                    "exhausted_total": self._orphans_exhausted,
                    "last_recovery_at": self._last_recovery_at,
                    "recent_events": [
                        e.to_dict() for e in list(self.fault_events)[-8:]
                    ],
                },
            }
            if remote is not None:
                out["remote"] = remote
            if self.faults is not None:
                out["faults"] = self.faults.describe()
            return out

    def sync_metrics(self) -> MetricsRegistry:
        """Mirror the manager's authoritative tallies into the registry.

        The queue/cache/retry counters live as plain ints under the
        manager's lock (they are consulted on admission paths where a
        registry lookup would be waste); this projects them into the
        metric families right before a scrape, guaranteeing ``/stats``
        and ``/metrics`` agree.  Returns the registry for chaining.
        """
        stats = self.stats()
        m = self.metrics
        m.counter(
            "repro_jobs_submitted_total", "jobs admitted (cache hits included)"
        ).set_total(stats["jobs_submitted_total"])
        m.counter(
            "repro_jobs_rejected_total", "submissions refused by the bounded queue"
        ).set_total(stats["jobs_rejected_total"])
        retry = stats["retry"]
        m.counter(
            "repro_job_retries_total", "crashed-job retries scheduled"
        ).set_total(retry["retries_total"])
        m.counter(
            "repro_jobs_recovered_total", "jobs that succeeded after >=1 retry"
        ).set_total(retry["jobs_recovered_total"])
        m.counter(
            "repro_jobs_exhausted_total", "jobs that failed with their retry budget spent"
        ).set_total(retry["jobs_exhausted_total"])
        orphans = stats["orphans"]
        m.counter(
            "repro_jobs_orphaned_total",
            "running jobs whose worker lease expired (worker lost)",
        ).set_total(orphans["orphaned_total"])
        m.counter(
            "repro_jobs_orphan_requeued_total",
            "orphaned jobs re-enqueued for another worker",
        ).set_total(orphans["requeued_total"])
        m.counter(
            "repro_jobs_orphan_exhausted_total",
            "orphaned jobs failed with the requeue budget spent",
        ).set_total(orphans["exhausted_total"])
        cache = stats["cache"]
        m.counter("repro_cache_hits_total", "result-cache hits").set_total(
            cache["hits_total"]
        )
        m.counter("repro_cache_misses_total", "result-cache misses").set_total(
            cache["misses_total"]
        )
        m.gauge("repro_cache_hit_ratio", "hits / (hits + misses)").set(
            cache["hit_ratio"]
        )
        m.gauge("repro_cache_entries", "live result-cache entries").set(
            cache["entries"]
        )
        m.gauge("repro_queue_depth", "jobs waiting in the bounded queue").set(
            stats["queue_depth"]
        )
        return m

    def recent_retry_activity(self, window_s: float = 60.0) -> bool:
        """True when a retry fired within the last ``window_s`` seconds
        (the health endpoint's "degraded" signal).

        Interval math is done on :func:`time.monotonic` stamps — a
        wall-clock jump (NTP step, manual reset) can neither flip the
        service to degraded nor mask real retry activity.  The wall
        stamp in :meth:`stats` remains display-only.
        """
        with self._lock:
            last = self._last_retry_mono
        return last is not None and (time.monotonic() - last) <= window_s

    def recent_orphan_activity(self, window_s: float = 60.0) -> bool:
        """True when an orphan was recovered within ``window_s`` seconds
        (a worker died recently — the health endpoint reports degraded)."""
        with self._lock:
            last = self._last_recovery_mono
        return last is not None and (time.monotonic() - last) <= window_s

    # -- worker pool --------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            self._resume.wait(timeout=0.1)
            if not self._resume.is_set():
                continue
            job_id = self._wq.pop(timeout=0.1)
            if job_id is None:
                continue
            try:
                self._execute(job_id)
            except Exception:  # pragma: no cover - defensive: keep the pool alive
                _log.warning(
                    "worker loop error",
                    extra={"job_id": job_id,
                           "reason": traceback.format_exc().strip().splitlines()[-1]},
                )

    def _execute(self, job_id: str) -> None:
        """Claim a popped id and run it; losing the claim is normal
        (another worker won the race, or the job was cancelled)."""
        rec = self._store.claim(job_id, self.worker_id, time.time() + self.lease_s)
        if rec is None:
            self._finalize_unclaimed(job_id)
            return
        job = self._adopt_record(rec)
        with self._lock:
            self._leases[job_id] = job
        try:
            self._run_job(job)
        finally:
            with self._lock:
                self._leases.pop(job_id, None)

    def _finalize_unclaimed(self, job_id: str) -> None:
        """A popped id we could not claim: if it is a queued record with
        a pending cancel request, take it terminal here (claims refuse
        it, so without this it would sit queued forever)."""
        try:
            rec = self._store.get(job_id)
        except UnknownJobError:
            return
        if rec.state == JobState.QUEUED.value and rec.cancel_requested:
            rec.state = JobState.CANCELLED.value
            rec.finished_at = time.time()
            rec = self._store.save(rec)
            job = self._adopt_record(rec)
            job.done_event.set()

    def _prune_history_locked(self) -> None:
        """Evict the oldest terminal jobs beyond ``max_history``.

        Caller holds ``_lock``.  The store prunes in submission order;
        queued and running jobs are never touched.
        """
        for jid in self._store.prune_terminal(self.max_history):
            self._jobs.pop(jid, None)

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        _log.info(
            "job running",
            extra={"job_id": job.id,
                   "trace_id": job.trace.trace_id if job.trace else None,
                   "algorithm": spec.algorithm, "attempt": job.attempt,
                   "worker_id": self.worker_id},
        )
        try:
            dataset = self.datasets.get(spec.dataset)
            with use_trace(job.trace):
                warm = (
                    self._resolve_warm(spec, dataset, cancel_event=job.cancel_event)
                    if spec.warm_start
                    else None
                )
                payload, run_log = execute_job(
                    spec,
                    dataset,
                    backend=self.backend,
                    remote_workers=self.remote_workers,
                    cancel_event=job.cancel_event,
                    job_id=job.id,
                    faults=self.faults,
                    metrics=self.metrics,
                    trace=job.trace,
                    warm=warm,
                )
        except JobCancelled:
            state, error, produced = JobState.CANCELLED, None, None
        except JobTimeout:
            state = JobState.FAILED
            error = f"timed out after {spec.timeout_s}s (round-barrier check)"
            produced = None
        except Exception:
            # crashes (unlike cancellations and timeouts, which are
            # decisions) are retryable: re-enqueue with backoff while
            # the budget lasts, terminal FAILED only after exhaustion
            error = traceback.format_exc()
            if self._schedule_retry(job, error):
                return
            state, produced = JobState.FAILED, None
        else:
            state, error, produced = JobState.DONE, None, (payload, run_log)
            self._note_remote(payload)
            self._note_warm(payload)
            self.cache.put(spec.cache_key(dataset.fingerprint), payload, run_log)
        self._commit_terminal(job, state, error, produced)

    def _resolve_warm(
        self,
        spec: JobSpec,
        dataset,
        cancel_event: Optional[threading.Event] = None,
    ) -> dict:
        """Resolve the parent version's solution for a warm-start job.

        The parent result is looked up under its own cache key (a
        warm-start spec if the parent is itself a chained version, a
        cold one at the chain root) and computed on the spot on a miss
        — recursing to the root if nothing along the chain is cached.
        Each ancestor result lands in the cache under its own key, so
        the warm job's payload (and its own oracle ledger, which covers
        only its own run) is path-independent: identical whether the
        chain was solved version-by-version or materialized here in one
        go after a restart on a cold cache.
        """
        parent = self.datasets.get(dataset.parent)
        parent_spec = JobSpec(
            algorithm=spec.algorithm,
            dataset=parent.id,
            k=spec.k,
            eps=spec.eps,
            machines=spec.machines,
            seed=spec.seed,
            partition=spec.partition,
            trim_mode=spec.trim_mode,
            constants=spec.constants,
            warm_start=parent.parent is not None,
        )
        key = parent_spec.cache_key(parent.fingerprint)
        hit = self.cache.get(key)
        if hit is not None:
            payload = hit[0]
        else:
            warm = (
                self._resolve_warm(parent_spec, parent, cancel_event=cancel_event)
                if parent_spec.warm_start
                else None
            )
            payload, run_log = execute_job(
                parent_spec,
                parent,
                backend=self.backend,
                remote_workers=self.remote_workers,
                cancel_event=cancel_event,
                faults=self.faults,
                metrics=self.metrics,
                warm=warm,
            )
            self.cache.put(key, payload, run_log)
        record = payload["record"]
        if spec.algorithm == "kcenter":
            centers, objective = record["centers"], record["radius"]
        else:
            centers, objective = record["ids"], record["diversity"]
        return {
            "dataset": parent.id,
            "fingerprint": parent.fingerprint,
            "base_n": int(parent.n),
            "centers": centers,
            "objective": float(objective),
        }

    def _note_warm(self, payload: dict) -> None:
        """Stream one finished warm-start job into the metrics registry."""
        drift = payload.get("drift")
        if drift is None:
            return
        self.metrics.counter(
            "repro_warm_start_jobs_total", "warm-start re-solve jobs completed"
        ).inc()
        ratio = drift.get("drift_ratio")
        if ratio is not None:
            self.metrics.histogram(
                "repro_warm_start_drift_ratio",
                "child/parent objective ratio per warm-start job",
                buckets=(0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0),
            ).observe(float(ratio))

    def _note_remote(self, payload: dict) -> None:
        """Fold one remote-backend job's pool shape and dispatch/recovery
        counters into the manager tallies behind ``remote_status()``."""
        pool = payload.get("remote_pool")
        if pool is None:
            return
        stats = (payload.get("recovery") or {}).get("executor") or {}
        with self._lock:
            self._remote_pool = pool
            for key, value in stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                if key == "effective_workers":
                    self._remote_totals[key] = int(value)
                else:
                    self._remote_totals[key] = (
                        self._remote_totals.get(key, 0) + int(value)
                    )

    def remote_status(self) -> Optional[dict]:
        """Remote-pool view for ``/healthz`` and ``/v1/stats``: the
        last finished remote job's :meth:`~repro.mpc.remote.RemoteExecutor.
        pool_status` plus counters summed across this manager's remote
        jobs.  ``None`` until a remote-backend job has run (and always
        ``None`` on purely local managers)."""
        with self._lock:
            if self._remote_pool is None:
                if self.backend != "remote":
                    return None
                return {
                    "pool": None,
                    "totals": {},
                    "workers": self.remote_workers,
                }
            return {
                "pool": dict(self._remote_pool),
                "totals": dict(self._remote_totals),
                "workers": self.remote_workers,
            }

    def _commit_terminal(
        self,
        job: Job,
        state: JobState,
        error: Optional[str],
        produced: Optional[tuple],
    ) -> None:
        """CAS the claimed job to its terminal state in the store.

        Losing the CAS means the sweeper declared us dead mid-run and
        re-enqueued the job; the result is discarded — harmless, because
        the re-run is bit-identical by the determinism guarantee.
        """
        rec = self._record_from_job(job)
        rec.state = state.value
        rec.error = error
        rec.finished_at = time.time()
        if produced is not None:
            rec.result, rec.run_log = produced
        finished = self._store.finish(rec, self.worker_id)
        if finished is None:
            _log.warning(
                "job finish lost its lease (declared orphaned mid-run); "
                "result discarded — the requeued run is bit-identical",
                extra={"job_id": job.id, "worker_id": self.worker_id},
            )
            try:
                current = self._store.get(job.id)
            except UnknownJobError:
                return
            with self._lock:
                self._apply_record_locked(job, current)
            return
        with self._lock:
            self._apply_record_locked(job, finished)
            if produced is not None and job.attempt > 0:
                self._jobs_recovered += 1
            self._prune_history_locked()
        if job.started_at is not None and job.finished_at is not None:
            self._job_latency.labels(job.spec.algorithm).observe(
                job.finished_at - job.started_at
            )
        _log.info(
            f"job {state.value}",
            extra={"job_id": job.id,
                   "trace_id": job.trace.trace_id if job.trace else None,
                   "algorithm": job.spec.algorithm, "attempt": job.attempt,
                   **({"reason": error.strip().splitlines()[-1]}
                      if error else {})},
        )
        job.done_event.set()

    # -- heartbeat + orphan recovery ----------------------------------------

    def _heartbeat_loop(self) -> None:
        """Renew the lease on every job this manager is running, and
        pick up cross-process cancel requests."""
        interval = max(0.2, self.lease_s / 3.0)
        while not self._stop.wait(interval):
            with self._lock:
                held = list(self._leases.items())
            for job_id, job in held:
                rec = self._store.heartbeat(
                    job_id, self.worker_id, time.time() + self.lease_s
                )
                if rec is None:
                    continue  # lease lost (sweeper took it) — CAS at finish decides
                if rec.cancel_requested and not job.cancel_event.is_set():
                    job.cancel_event.set()

    def _sweep_loop(self) -> None:
        interval = max(0.5, self.lease_s / 3.0)
        while not self._stop.wait(interval):
            try:
                self.recover_now()
            except Exception:  # pragma: no cover - defensive: keep sweeping
                _log.warning(
                    "orphan sweep failed",
                    extra={"reason": traceback.format_exc().strip().splitlines()[-1]},
                )

    def recover_now(self, startup: bool = False) -> dict:
        """One orphan-recovery pass (the sweeper calls this; tests may
        call it directly to avoid waiting out the interval).

        Expired-lease RUNNING jobs are re-enqueued (or failed once the
        orphan budget is spent), and queued records missing from the
        work queue — a process died between persisting and pushing, or
        a retry timer died with its process — are re-pushed.  Returns
        ``{"orphaned", "requeued", "stranded_requeued"}`` counts.
        """
        now = time.time()
        recovered = self._store.recover_orphans(now, self.orphan_requeue_budget)
        requeued = 0
        for rec in recovered:
            detail = rec.attempts[-1]["error"] if rec.attempts else "lease expired"
            events = [FaultEvent(
                layer="service", kind="worker_lost", injected=False,
                target=rec.id, attempt=rec.attempt, detail=detail, time=now,
            )]
            if rec.state == JobState.QUEUED.value:
                try:
                    self._wq.push(rec.id)
                    pushed = True
                except QueueFullError:
                    pushed = False  # the stranded sweep below retries later
                requeued += 1 if pushed else 0
                events.append(FaultEvent(
                    layer="service", kind="orphan_requeue", injected=False,
                    target=rec.id, attempt=rec.attempt,
                    detail=f"re-enqueued (attempt {rec.attempt})", time=now,
                ))
            with self._lock:
                self._orphaned += 1
                if rec.state == JobState.QUEUED.value:
                    self._orphans_requeued += 1
                elif rec.state == JobState.FAILED.value:
                    self._orphans_exhausted += 1
                self.fault_events.extend(events)
                self._last_recovery_at = now
                self._last_recovery_mono = time.monotonic()
                job = self._jobs.get(rec.id)
                if job is not None:
                    self._apply_record_locked(job, rec)
            _log.warning(
                "orphaned job recovered",
                extra={"job_id": rec.id, "state": rec.state,
                       "attempt": rec.attempt, "detail": detail},
            )
        # a submission pushes right after persisting, so outside startup
        # only records queued for a while are considered stranded
        stranded = ensure_queued_jobs_enqueued(
            self._store, self._wq,
            older_than_s=0.0 if startup else max(5.0, self.lease_s),
            now=now,
        )
        return {
            "orphaned": len(recovered),
            "requeued": requeued,
            "stranded_requeued": len(stranded),
        }

    # -- retry --------------------------------------------------------------

    def _retry_budget(self, job: Job) -> int:
        """Effective retry budget: the spec's override, else the policy's."""
        if job.spec.max_retries is not None:
            return job.spec.max_retries
        return self.retry_policy.max_retries

    def _schedule_retry(self, job: Job, error: str) -> bool:
        """Re-enqueue a crashed job after backoff if its budget allows.

        Returns True when a retry was scheduled (the job goes back to
        ``queued``; the caller must NOT mark it terminal).
        """
        if job.cancel_event.is_set() or self._stop.is_set():
            return False
        budget = self._retry_budget(job)
        if job.attempt >= budget:
            if budget > 0:
                with self._lock:
                    self._jobs_exhausted += 1
            return False
        delay = self.retry_policy.delay(job.attempt + 1, key=job.id)
        summary = error.strip().splitlines()[-1] if error.strip() else "unknown error"
        now = time.time()
        rec = self._record_from_job(job)
        rec.attempts.append(
            {
                "attempt": job.attempt,
                "error": summary,
                "failed_at": now,
                "backoff_s": round(delay, 4),
            }
        )
        rec.attempt = job.attempt + 1
        rec.state = JobState.QUEUED.value
        rec.started_at = None
        rec.queued_at = now
        requeued = self._store.finish(rec, self.worker_id)
        if requeued is None:
            # lease lost mid-crash: the sweeper owns this job's recovery
            return True
        with self._lock:
            self._apply_record_locked(job, requeued)
            self._retries += 1
            self._last_retry_at = now
            self._last_retry_mono = time.monotonic()
            timer = threading.Timer(delay, self._requeue, args=(job,))
            timer.daemon = True
            self._retry_timers.append(timer)
        _log.warning(
            "job crashed; retry scheduled",
            extra={"job_id": job.id,
                   "trace_id": job.trace.trace_id if job.trace else None,
                   "attempt": job.attempt, "backoff_s": round(delay, 4),
                   "reason": summary},
        )
        timer.start()
        return True

    def _requeue(self, job: Job) -> None:
        """Timer callback: push a retried job's id back on the queue."""
        with self._lock:
            self._retry_timers = [
                t for t in self._retry_timers if t.is_alive()
            ]
        try:
            rec = self._store.get(job.id)
        except UnknownJobError:
            return
        if rec.state != JobState.QUEUED.value or rec.cancel_requested:
            return  # cancelled (or recovered elsewhere) while backing off
        try:
            self._wq.push(job.id)
        except QueueFullError:
            last = job.attempts[-1]["error"] if job.attempts else "unknown error"
            rec.state = JobState.FAILED.value
            rec.error = f"retry abandoned (queue full) after: {last}"
            rec.finished_at = time.time()
            try:
                rec = self._store.save(rec)
            except UnknownJobError:  # pragma: no cover - pruned mid-flight
                return
            with self._lock:
                self._apply_record_locked(job, rec)
                self._prune_history_locked()
            job.done_event.set()
